//! Quickstart: the COVID-19 running example of the paper's Figure 1.
//!
//! Three small tables about COVID-19 cases disagree on surface forms
//! ("Berlinn" vs "Berlin", "Germany" vs "DE", "Barcelona" vs "barcelona").
//! Regular Full Disjunction integrates only tuples with *equal* values and
//! leaves nine fragments; Fuzzy Full Disjunction resolves the inconsistencies
//! first and produces the five fully-merged tuples of Figure 1 (right).
//!
//! Run with `cargo run --example quickstart`.

use datalake_fuzzy_fd::core::{regular_full_disjunction, FuzzyFdConfig, FuzzyFullDisjunction};
use datalake_fuzzy_fd::schema_match::align_by_headers;
use datalake_fuzzy_fd::table::{print, TableBuilder};

fn main() {
    let t1 = TableBuilder::new("T1", ["City", "Country"])
        .row(["Berlinn", "Germany"])
        .row(["Toronto", "Canada"])
        .row(["Barcelona", "Spain"])
        .row(["New Delhi", "India"])
        .build()
        .expect("T1");
    let t2 = TableBuilder::new("T2", ["Country", "City", "Vac. Rate (1+ dose)"])
        .row(["CA", "Toronto", "83%"])
        .row(["US", "Boston", "62%"])
        .row(["DE", "Berlin", "63%"])
        .row(["ES", "Barcelona", "82%"])
        .build()
        .expect("T2");
    let t3 = TableBuilder::new("T3", ["City", "Total Cases", "Death Rate (per 100k)"])
        .row(["Berlin", "1.4M", "147"])
        .row(["barcelona", "2.68M", "275"])
        .row(["Boston", "263K", "335"])
        .build()
        .expect("T3");

    println!("== Input tables ==");
    for table in [&t1, &t2, &t3] {
        println!("{}:\n{}", table.name(), print::render(table));
    }

    let tables = vec![t1, t2, t3];
    let alignment = align_by_headers(&tables);

    // Regular (equi-join) Full Disjunction — the ALITE baseline.
    let regular = regular_full_disjunction(&tables, &alignment);
    println!("== FD(T1, T2, T3): equi-join Full Disjunction ({} tuples) ==", regular.len());
    println!("{}", print::render(&regular.to_table("FD", true).expect("render")));

    // Fuzzy Full Disjunction with the default configuration (θ = 0.7, Mistral tier).
    let fuzzy = FuzzyFullDisjunction::new(FuzzyFdConfig::default());
    let outcome = fuzzy.integrate(&tables, &alignment).expect("fuzzy FD");
    println!("== Fuzzy FD(T1, T2, T3): fuzzy Full Disjunction ({} tuples) ==", outcome.table.len());
    println!("{}", print::render(&outcome.table.to_table("FuzzyFD", true).expect("render")));

    let report = &outcome.report;
    println!(
        "Fuzzy FD matched {} value groups across {} aligned column sets and rewrote {} cells \
         (matching {:.1?} + FD {:.1?}).",
        report.matched_groups,
        report.aligned_sets,
        report.rewritten_cells,
        report.matching_time,
        report.fd_time
    );
}
