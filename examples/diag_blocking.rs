//! Compares the candidate-space policies of the fuzzy value matcher on one
//! Auto-Join-style integration set: the exhaustive dense matrix, the default
//! exact sub-threshold channel, surface keys only, and SimHash banding.
//!
//! Run with `cargo run --release --example diag_blocking`.

use datalake_fuzzy_fd::benchdata::{generate_autojoin_benchmark, AutoJoinConfig};
use datalake_fuzzy_fd::core::{
    match_column_values_with_stats, BlockingPolicy, FuzzyFdConfig, KeyedBlockingConfig,
    SemanticBlocking,
};
use datalake_fuzzy_fd::table::Value;
use std::time::Instant;

const REPS: u32 = 30;

fn main() {
    let config =
        AutoJoinConfig { num_sets: 1, values_per_column: 150, ..AutoJoinConfig::default() };
    let set = generate_autojoin_benchmark(config).remove(0);
    let columns: Vec<Vec<Value>> = set
        .columns
        .iter()
        .map(|col| col.iter().map(|s| Value::text(s.clone())).collect())
        .collect();
    let embedder = FuzzyFdConfig::default().model.build();

    let t = Instant::now();
    let mut exhaustive = Vec::new();
    for _ in 0..REPS {
        exhaustive = match_column_values_with_stats(
            &columns,
            embedder.as_ref(),
            FuzzyFdConfig::with_blocking(BlockingPolicy::Exhaustive),
        )
        .0;
    }
    println!("exhaustive      {:>12?}", t.elapsed() / REPS);

    let keyed = |semantic| {
        FuzzyFdConfig::with_blocking(BlockingPolicy::Keyed(KeyedBlockingConfig {
            semantic,
            min_blocked_pairs: 0,
            ..KeyedBlockingConfig::default()
        }))
    };
    for (label, cfg) in [
        ("exact (default)", FuzzyFdConfig::default().force_blocking()),
        ("exact, no slack", keyed(SemanticBlocking::ExactBelow { slack: 0.0 })),
        ("surface only   ", keyed(SemanticBlocking::Off)),
        ("simhash 8x8    ", keyed(SemanticBlocking::simhash_default())),
    ] {
        let t = Instant::now();
        let mut groups = Vec::new();
        let mut stats = Default::default();
        for _ in 0..REPS {
            (groups, stats) = match_column_values_with_stats(&columns, embedder.as_ref(), cfg);
        }
        let diff = exhaustive.iter().filter(|g| !groups.contains(g)).count();
        println!(
            "{label} {:>12?}  groups-vs-exhaustive-diff={diff}  pruned={:.1}%  {stats:?}",
            t.elapsed() / REPS,
            100.0 * stats.pruned_fraction(),
        );
    }
}
