//! Compares the exact sub-threshold sweep with the escalated ANN tier on
//! lake-scale folds of growing size: wall clock, scored pairs, splitting
//! activity and gold-pair recall, plus the Auto-Join equivalence canary.
//!
//! Run with `cargo run --release --example diag_escalation`.

use datalake_fuzzy_fd::benchdata::{
    generate_autojoin_benchmark, generate_escalation_fold, AutoJoinConfig, EscalationFoldConfig,
};
use datalake_fuzzy_fd::core::{
    match_column_values_with_stats, BlockingPolicy, EscalationPolicy, FuzzyFdConfig,
    KeyedBlockingConfig, ValueGroup,
};
use datalake_fuzzy_fd::embed::EmbeddingCache;
use datalake_fuzzy_fd::table::Value;
use std::time::Instant;

fn to_value_columns(columns: &[Vec<String>]) -> Vec<Vec<Value>> {
    columns.iter().map(|col| col.iter().map(|s| Value::text(s.clone())).collect()).collect()
}

fn config_with(escalation: EscalationPolicy) -> FuzzyFdConfig {
    FuzzyFdConfig::with_blocking(BlockingPolicy::Keyed(KeyedBlockingConfig {
        escalation,
        ..KeyedBlockingConfig::default()
    }))
}

fn main() {
    // Equivalence canary: forced escalation on the Auto-Join 150-value set
    // must reproduce the exact channel's groups.
    let autojoin =
        AutoJoinConfig { num_sets: 1, values_per_column: 150, ..AutoJoinConfig::default() };
    let set = generate_autojoin_benchmark(autojoin).remove(0);
    let columns = to_value_columns(&set.columns);
    let embedder = EmbeddingCache::new(FuzzyFdConfig::default().model.build());
    let (exact, exact_stats) =
        match_column_values_with_stats(&columns, &embedder, config_with(EscalationPolicy::never()));
    let forced = EscalationPolicy { min_fold_pairs: 0, ..EscalationPolicy::default() };
    let (escalated, stats) =
        match_column_values_with_stats(&columns, &embedder, config_with(forced));
    println!(
        "autojoin-150: groups {} (exact {} — {}), scored {} vs {}",
        escalated.len(),
        exact.len(),
        if escalated == exact { "identical" } else { "DIFFERENT" },
        stats.scored_pairs,
        exact_stats.scored_pairs,
    );

    // Scale sweep: where the quadratic sweep loses to the escalated tier.
    for entities in [1_050usize, 2_100, 4_200] {
        let fold = generate_escalation_fold(EscalationFoldConfig {
            entities,
            ..EscalationFoldConfig::default()
        });
        let columns = to_value_columns(&fold.columns);
        let embedder = EmbeddingCache::new(FuzzyFdConfig::default().model.build());
        let recovered = |groups: &[ValueGroup]| {
            fold.gold
                .iter()
                .filter(|(base, variant)| {
                    groups.iter().any(|g| {
                        g.members.iter().any(|(_, v)| v.render() == *base)
                            && g.members.iter().any(|(_, v)| v.render() == *variant)
                    })
                })
                .count()
        };
        for (name, escalation) in
            [("exact", EscalationPolicy::never()), ("ann", EscalationPolicy::default())]
        {
            let config = config_with(escalation);
            let _ = match_column_values_with_stats(&columns, &embedder, config); // warm cache
            let t = Instant::now();
            let (groups, stats) = match_column_values_with_stats(&columns, &embedder, config);
            println!(
                "{entities:>5} {name:<5} {:>10?}  scored={:<9} splits={} severed={:<6} \
                 gold={}/{}",
                t.elapsed(),
                stats.scored_pairs,
                stats.split_components,
                stats.severed_pairs,
                recovered(&groups),
                fold.gold.len(),
            );
            // Phase attribution of the planning + solving wall clock.
            let named = stats.phase.named();
            let line: Vec<String> = named.iter().map(|(n, d)| format!("{n}={d:.1?}")).collect();
            println!("            phases: {}", line.join(" "));
            println!(
                "            kernel: cand={} int8={} skipped={} rescored={}",
                stats.candidate_pairs,
                stats.kernel.int8_scored,
                stats.kernel.skipped,
                stats.kernel.rescored,
            );
        }
    }
}
