//! Open-data integration: discover column alignment automatically, match
//! values fuzzily, and evaluate the matches against gold labels.
//!
//! The scenario mirrors the paper's motivation: several open-data portals
//! publish tables about the same universities, but headers are unreliable and
//! values use different conventions (abbreviations, acronyms, typos).  The
//! example generates such an integration set with the Auto-Join-style
//! generator, runs the full automatic pipeline (schema matching → fuzzy value
//! matching → Full Disjunction) and reports value-matching precision/recall
//! against the generator's gold standard.
//!
//! Run with `cargo run --example open_data_integration`.

use datalake_fuzzy_fd::benchdata::{generate_autojoin_benchmark, AutoJoinConfig};
use datalake_fuzzy_fd::core::{match_column_values, FuzzyFdConfig, FuzzyFullDisjunction};
use datalake_fuzzy_fd::embed::{EmbeddingModel, ALL_MODELS};
use datalake_fuzzy_fd::metrics::PairSet;
use datalake_fuzzy_fd::table::{print, Value};

fn main() {
    // One integration set (~150 values per aligned column) from the
    // Auto-Join-style benchmark.
    let config = AutoJoinConfig { num_sets: 3, values_per_column: 60, ..AutoJoinConfig::default() };
    let set = generate_autojoin_benchmark(config).remove(2);
    println!(
        "Integration set `{}` ({} aligned columns, {} values total)",
        set.id,
        set.columns.len(),
        set.total_values()
    );

    // 1. Evaluate value matching for every embedding model (a mini Table 1).
    println!("\n== Value matching quality by embedding model ==");
    for model in ALL_MODELS {
        let embedder = model.build();
        let columns: Vec<Vec<Value>> = set
            .columns
            .iter()
            .map(|col| col.iter().map(|s| Value::text(s.clone())).collect())
            .collect();
        let groups = match_column_values(
            &columns,
            embedder.as_ref(),
            FuzzyFdConfig { model, ..FuzzyFdConfig::default() },
        );
        let mut predicted = PairSet::new();
        for group in &groups {
            for ((ca, va), (cb, vb)) in group.cross_column_pairs() {
                predicted.insert((ca, va.render().to_string()), (cb, vb.render().to_string()));
            }
        }
        let scores = predicted.confusion_against(&set.gold).scores();
        println!(
            "  {:<9} precision {:.2}  recall {:.2}  F1 {:.2}",
            model.name(),
            scores.precision,
            scores.recall,
            scores.f1
        );
    }

    // 2. Run the fully automatic integration pipeline (no headers needed).
    let tables = set.tables();
    let fuzzy = FuzzyFullDisjunction::new(FuzzyFdConfig::with_model(EmbeddingModel::Mistral));
    let outcome = fuzzy.integrate_auto(&tables).expect("integration");
    println!(
        "\n== Integrated table (automatic alignment, fuzzy FD): {} tuples from {} input rows ==",
        outcome.table.len(),
        tables.iter().map(|t| t.num_rows()).sum::<usize>()
    );
    let rendered = outcome.table.to_table("integrated", true).expect("render");
    println!("{}", print::render_with_limit(&rendered, 36, 12));
    println!(
        "value groups: {} total, {} with an actual fuzzy match, {} cells rewritten",
        outcome.report.value_groups, outcome.report.matched_groups, outcome.report.rewritten_cells
    );
}
