//! Runs the sharded integration server on a local port.
//!
//! ```text
//! cargo run --release --example serve -- --port 7070 --shards 2
//! ```
//!
//! Pass `--store-dir <path>` to run durably: every acknowledged ingest
//! is write-ahead logged under the directory before the `202`, and a
//! restart over the same directory replays the log and serves the same
//! `/query` bytes (`docs/OPERATIONS.md` has the recovery runbook).
//!
//! Then talk to it with any HTTP client (worked examples in
//! `docs/PROTOCOL.md`, operational guidance in `docs/OPERATIONS.md`):
//!
//! ```text
//! curl http://127.0.0.1:7070/health
//! curl -X POST http://127.0.0.1:7070/ingest -d '{"group":"covid","table":{...}}'
//! curl 'http://127.0.0.1:7070/query?group=covid&view=table'
//! curl http://127.0.0.1:7070/stats
//! ```
//!
//! The process serves until killed (Ctrl-C); shutdown-with-drain is
//! exercised by the integration tests, which own their server handles.

use std::net::SocketAddr;

use datalake_fuzzy_fd::serve::{DurabilityPolicy, LakeServer, ServePolicy};

fn main() {
    let mut port: u16 = 7070;
    let mut policy = ServePolicy::default();
    let mut store_dir: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut take = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} requires a value"))
                .parse::<usize>()
                .unwrap_or_else(|err| panic!("unparseable {what}: {err}"))
        };
        match flag.as_str() {
            "--port" => port = take("--port") as u16,
            "--shards" => policy.shards = take("--shards"),
            "--queue-depth" => policy.queue_depth = take("--queue-depth"),
            "--readers" => policy.readers = take("--readers"),
            "--store-dir" => {
                store_dir =
                    Some(args.next().unwrap_or_else(|| panic!("--store-dir requires a value")))
            }
            other => {
                eprintln!(
                    "unknown flag {other}; known: --port --shards --queue-depth --readers --store-dir"
                );
                std::process::exit(2);
            }
        }
    }
    if let Err(error) = policy.validate() {
        eprintln!("invalid serve policy: {error}");
        std::process::exit(2);
    }

    let addr: SocketAddr = format!("127.0.0.1:{port}").parse().expect("loopback address");
    let started = match &store_dir {
        Some(dir) => LakeServer::start_durable_on(policy, DurabilityPolicy::at(dir), addr),
        None => LakeServer::start_on(policy, addr),
    };
    let server = match started {
        Ok(server) => server,
        Err(error) => {
            eprintln!("failed to start server: {error}");
            std::process::exit(1);
        }
    };
    println!("lake-serve listening on http://{}", server.addr());
    match &store_dir {
        Some(dir) => println!(
            "  shards={} queue_depth={} readers={} store_dir={dir}",
            policy.shards, policy.queue_depth, policy.readers
        ),
        None => println!(
            "  shards={} queue_depth={} readers={}",
            policy.shards, policy.queue_depth, policy.readers
        ),
    }
    println!("routes: POST /ingest  GET /query  GET /health  GET /stats");
    server.wait();
}
