//! Movie catalogue integration: an IMDB-shaped, key-joinable workload.
//!
//! Six tables (`title_basics`, `title_ratings`, `title_akas`, `title_crew`,
//! `title_principals`, `name_basics`) are integrated with regular Full
//! Disjunction and with Fuzzy Full Disjunction.  Because the data joins on
//! exact keys, the interesting question is *efficiency*: the fuzzy matching
//! step must not add noticeable overhead even though it scans every aligned
//! column for fuzzy matches — this is the scenario behind the paper's
//! Figure 3.
//!
//! Run with `cargo run --release --example movie_catalog`.

use std::time::Instant;

use datalake_fuzzy_fd::benchdata::{generate_imdb_benchmark, ImdbConfig};
use datalake_fuzzy_fd::core::{regular_full_disjunction, FuzzyFdConfig, FuzzyFullDisjunction};
use datalake_fuzzy_fd::schema_match::align_by_headers;
use datalake_fuzzy_fd::table::print;

fn main() {
    let config = ImdbConfig { total_tuples: 4_000, seed: 0x1_4DB };
    let tables = generate_imdb_benchmark(config);
    let input_tuples: usize = tables.iter().map(|t| t.num_rows()).sum();
    println!("Generated an IMDB-style catalogue with {input_tuples} tuples across 6 tables:");
    for table in &tables {
        println!(
            "  {:<18} {:>6} rows × {} columns",
            table.name(),
            table.num_rows(),
            table.num_columns()
        );
    }

    let alignment = align_by_headers(&tables);
    println!(
        "\nColumn alignment: {} aligned sets ({} spanning multiple tables)",
        alignment.len(),
        alignment.multi_table_groups().count()
    );

    // Regular FD.
    let start = Instant::now();
    let regular = regular_full_disjunction(&tables, &alignment);
    let regular_time = start.elapsed();
    println!(
        "\nRegular FD (ALITE):  {:>6} integrated tuples in {:.3?}",
        regular.len(),
        regular_time
    );

    // Fuzzy FD.
    let fuzzy = FuzzyFullDisjunction::new(FuzzyFdConfig::default());
    let start = Instant::now();
    let outcome = fuzzy.integrate(&tables, &alignment).expect("fuzzy FD");
    let fuzzy_time = start.elapsed();
    println!(
        "Fuzzy FD:            {:>6} integrated tuples in {:.3?} (value matching {:.3?}, FD {:.3?})",
        outcome.table.len(),
        fuzzy_time,
        outcome.report.matching_time,
        outcome.report.fd_time
    );
    let overhead = fuzzy_time.as_secs_f64() / regular_time.as_secs_f64().max(1e-9) - 1.0;
    println!(
        "Fuzzy overhead: {:+.1}% (the paper's Figure 3 shows near-identical curves)",
        overhead * 100.0
    );

    // Show a sample of the integrated catalogue.
    let rendered = outcome.table.to_table("catalogue", false).expect("render");
    println!(
        "\nSample of the integrated catalogue:\n{}",
        print::render_with_limit(&rendered, 28, 8)
    );

    // FD guarantees every input tuple is represented.
    let stats = outcome.report.fd_stats;
    println!(
        "FD statistics: {} input tuples → {} output tuples across {} join components (largest {}).",
        stats.input_tuples, stats.output_tuples, stats.components, stats.largest_component
    );
}
