//! Entity resolution over integrated tables — the downstream task of §3.2.
//!
//! Person records are scattered over three sources (`contacts`, `employment`,
//! `census`) whose join attribute is written inconsistently (nicknames,
//! typos, reordered tokens).  The example integrates the sources with regular
//! FD and with Fuzzy FD, runs the same entity matcher over both integrated
//! tables, and compares pairwise precision / recall / F1 against the gold
//! entity labels — demonstrating that better integration directly improves
//! the downstream task.
//!
//! Run with `cargo run --release --example entity_resolution`.

use datalake_fuzzy_fd::benchdata::{generate_em_benchmark, EmBenchmarkConfig};
use datalake_fuzzy_fd::core::{regular_full_disjunction, FuzzyFdConfig, FuzzyFullDisjunction};
use datalake_fuzzy_fd::em::{match_entities, EmOptions};
use datalake_fuzzy_fd::schema_match::align_by_headers;

fn main() {
    let config = EmBenchmarkConfig::default();
    let benchmark = generate_em_benchmark(config);
    println!(
        "Generated {} entities ({} of them confusable twins) across {} source tables; {} gold pairs.",
        benchmark.num_entities,
        benchmark.num_entities - config.num_entities,
        benchmark.tables.len(),
        benchmark.gold.len()
    );
    for table in &benchmark.tables {
        println!("  {:<11} {:>4} rows", table.name(), table.num_rows());
    }

    let alignment = align_by_headers(&benchmark.tables);
    let em_options = EmOptions::default();

    // Integrate with the equi-join baseline and run entity matching.
    let regular = regular_full_disjunction(&benchmark.tables, &alignment);
    let regular_result = match_entities(&regular, em_options);
    let regular_scores = regular_result.evaluate(&regular, &benchmark.gold);

    // Integrate with Fuzzy FD and run the same matcher.
    let fuzzy = FuzzyFullDisjunction::new(FuzzyFdConfig::default())
        .integrate(&benchmark.tables, &alignment)
        .expect("fuzzy FD");
    let fuzzy_result = match_entities(&fuzzy.table, em_options);
    let fuzzy_scores = fuzzy_result.evaluate(&fuzzy.table, &benchmark.gold);

    println!("\n== Entity matching over the integrated tables ==");
    println!("  {:<20} {:>10} {:>8} {:>8} {:>8}", "integration", "tuples", "P", "R", "F1");
    println!(
        "  {:<20} {:>10} {:>7.0}% {:>7.0}% {:>7.0}%",
        "Regular FD (ALITE)",
        regular.len(),
        regular_scores.precision * 100.0,
        regular_scores.recall * 100.0,
        regular_scores.f1 * 100.0
    );
    println!(
        "  {:<20} {:>10} {:>7.0}% {:>7.0}% {:>7.0}%",
        "Fuzzy FD",
        fuzzy.table.len(),
        fuzzy_scores.precision * 100.0,
        fuzzy_scores.recall * 100.0,
        fuzzy_scores.f1 * 100.0
    );
    println!(
        "\nFuzzy FD merged {} value groups and rewrote {} join cells before integration;",
        fuzzy.report.matched_groups, fuzzy.report.rewritten_cells
    );
    println!("the paper reports P/R/F1 = 86/85/85 for Fuzzy FD vs 79/83/81 for regular FD.");
}
