//! # datalake-fuzzy-fd
//!
//! Umbrella crate for the **Fuzzy Full Disjunction** system — a from-scratch
//! Rust reproduction of *Fuzzy Integration of Data Lake Tables* (Khatiwada,
//! Shraga, Miller).  It re-exports every workspace crate under one roof so
//! applications can depend on a single crate:
//!
//! * [`core`] — the Fuzzy Full Disjunction operator itself;
//! * [`table`] — the in-memory table model and CSV I/O;
//! * [`text`] — string normalisation and similarity;
//! * [`embed`] — cell-value embedders (hashing n-gram + simulated
//!   pre-trained-LM tiers);
//! * [`assign`] — linear sum assignment solvers;
//! * [`schema_match`] — holistic column alignment;
//! * [`fd`] — Full Disjunction algorithms;
//! * [`em`] — downstream entity matching;
//! * [`benchdata`] — benchmark generators;
//! * [`metrics`] — evaluation metrics and reports;
//! * [`runtime`] — the shared work-stealing scoped executor every parallel
//!   site routes through;
//! * [`serve`] — the sharded concurrent integration server (hand-rolled
//!   HTTP/1.1 over `std::net`; see `docs/PROTOCOL.md`);
//! * [`store`] — the durable lake store (write-ahead log, paged column
//!   segments, buffer pool, session snapshot/restore by replay).
//!
//! ## Quickstart
//!
//! ```
//! use datalake_fuzzy_fd::core::{FuzzyFdConfig, FuzzyFullDisjunction};
//! use datalake_fuzzy_fd::table::TableBuilder;
//!
//! let cases = TableBuilder::new("cases", ["City", "Total Cases"])
//!     .row(["Berlin", "1.4M"])
//!     .row(["barcelona", "2.68M"])
//!     .build()
//!     .unwrap();
//! let rates = TableBuilder::new("rates", ["City", "Vaccination Rate"])
//!     .row(["Berlinn", "63%"])
//!     .row(["Barcelona", "82%"])
//!     .build()
//!     .unwrap();
//!
//! let fuzzy = FuzzyFullDisjunction::new(FuzzyFdConfig::default());
//! let outcome = fuzzy.integrate_by_headers(&[cases, rates]).unwrap();
//! assert_eq!(outcome.table.len(), 2); // Berlin and Barcelona, fully merged
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and `crates/bench` for
//! the experiment harness that regenerates the paper's tables and figures.

pub use fuzzy_fd_core as core;
pub use lake_assign as assign;
pub use lake_benchdata as benchdata;
pub use lake_em as em;
pub use lake_embed as embed;
pub use lake_fd as fd;
pub use lake_metrics as metrics;
pub use lake_runtime as runtime;
pub use lake_schema_match as schema_match;
pub use lake_serve as serve;
pub use lake_store as store;
pub use lake_table as table;
pub use lake_text as text;
