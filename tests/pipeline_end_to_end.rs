//! Cross-crate integration tests: CSV ingestion → automatic column alignment
//! → fuzzy value matching → Full Disjunction → downstream entity matching.

use datalake_fuzzy_fd::benchdata::{generate_em_benchmark, EmBenchmarkConfig};
use datalake_fuzzy_fd::core::{regular_full_disjunction, FuzzyFdConfig, FuzzyFullDisjunction};
use datalake_fuzzy_fd::em::{match_entities, EmOptions};
use datalake_fuzzy_fd::embed::EmbeddingModel;
use datalake_fuzzy_fd::schema_match::align_by_headers;
use datalake_fuzzy_fd::table::{csv, TupleId, Value};

#[test]
fn csv_round_trip_through_the_full_pipeline() {
    // Two "CSV files" from different portals about the same restaurants.
    let inspections = csv::parse_csv(
        "inspections",
        "name,city,score\n\
         Golden Dragon Bistro,San Francisco,92\n\
         The Blue Door Cafe,Portland,88\n\
         Marios Trattoria,Boston,95\n",
    )
    .expect("inspections csv");
    let reviews = csv::parse_csv(
        "reviews",
        "name,rating,reviews\n\
         Golden Dragon Bistro,4.5,812\n\
         Marios Trattoria,4.2,391\n\
         The Blue Door Caffe,4.7,97\n",
    )
    .expect("reviews csv");

    let tables = vec![inspections, reviews];
    let alignment = align_by_headers(&tables);

    // Equi-join FD cannot bridge the "Cafe" / "Caffe" typo.
    let regular = regular_full_disjunction(&tables, &alignment);
    assert_eq!(regular.len(), 4);

    // Fuzzy FD does.
    let outcome = FuzzyFullDisjunction::new(FuzzyFdConfig::default())
        .integrate(&tables, &alignment)
        .expect("fuzzy integration");
    assert_eq!(outcome.table.len(), 3, "{:#?}", outcome.table.tuples());
    for tuple in outcome.table.tuples() {
        assert_eq!(tuple.provenance().len(), 2, "every restaurant appears in both sources");
    }

    // The integrated result exports back to CSV.
    let exported = outcome.table.to_table("integrated", true).expect("to_table");
    let text = csv::to_csv(&exported);
    let reparsed = csv::parse_csv("integrated", &text).expect("re-parse");
    assert_eq!(reparsed.num_rows(), 3);
}

#[test]
fn automatic_alignment_handles_meaningless_headers() {
    let portal_a = csv::parse_csv(
        "portal_a",
        "c1,c2\nUniversity of Toronto,Toronto\nNortheastern University,Boston\nETH Zurich,Zurich\n",
    )
    .unwrap();
    let portal_b = csv::parse_csv(
        "portal_b",
        "f1,f2\nBoston,Northeastern University\nToronto,University of Toronto\nZurich,ETH Zurich\n",
    )
    .unwrap();

    let fuzzy = FuzzyFullDisjunction::new(FuzzyFdConfig::with_model(EmbeddingModel::Mistral));
    let outcome = fuzzy.integrate_auto(&[portal_a, portal_b]).expect("auto integration");
    assert_eq!(outcome.table.len(), 3, "{:#?}", outcome.table.tuples());
    for tuple in outcome.table.tuples() {
        assert_eq!(tuple.provenance().len(), 2);
    }
}

#[test]
fn downstream_entity_matching_benefits_from_fuzzy_integration() {
    let benchmark = generate_em_benchmark(EmBenchmarkConfig {
        num_entities: 80,
        ..EmBenchmarkConfig::default()
    });
    let alignment = align_by_headers(&benchmark.tables);

    let regular = regular_full_disjunction(&benchmark.tables, &alignment);
    let fuzzy = FuzzyFullDisjunction::new(FuzzyFdConfig::default())
        .integrate(&benchmark.tables, &alignment)
        .expect("fuzzy FD");

    let regular_scores =
        match_entities(&regular, EmOptions::default()).evaluate(&regular, &benchmark.gold);
    let fuzzy_scores =
        match_entities(&fuzzy.table, EmOptions::default()).evaluate(&fuzzy.table, &benchmark.gold);

    assert!(
        fuzzy_scores.f1 >= regular_scores.f1,
        "fuzzy {fuzzy_scores:?} must not be worse than regular {regular_scores:?}"
    );
    assert!(fuzzy.table.len() <= regular.len());
}

#[test]
fn provenance_always_references_real_input_rows() {
    let benchmark = generate_em_benchmark(EmBenchmarkConfig {
        num_entities: 40,
        ..EmBenchmarkConfig::default()
    });
    let alignment = align_by_headers(&benchmark.tables);
    let outcome = FuzzyFullDisjunction::new(FuzzyFdConfig::default())
        .integrate(&benchmark.tables, &alignment)
        .expect("fuzzy FD");

    let lookup = |id: &TupleId| -> Option<&datalake_fuzzy_fd::table::Table> {
        benchmark.tables.iter().find(|t| t.name() == id.table)
    };
    let mut covered = std::collections::BTreeSet::new();
    for tuple in outcome.table.tuples() {
        for id in tuple.provenance().iter() {
            let table = lookup(id).expect("provenance references a known table");
            assert!(id.row < table.num_rows());
            covered.insert(id.clone());
            // Every non-null value of the base row must be reflected in the
            // integrated tuple, either verbatim or as a rewritten
            // representative (a present value never becomes null).
            let base_row = &table.rows()[id.row];
            let non_null_base = base_row.iter().filter(|v| v.is_present()).count();
            assert!(tuple.non_null_count() >= non_null_base);
        }
    }
    let total: usize = benchmark.tables.iter().map(|t| t.num_rows()).sum();
    assert_eq!(covered.len(), total, "every base tuple appears in the integrated table");
    // Values in the output are never the bottom symbol rendered as text.
    for tuple in outcome.table.tuples() {
        for value in tuple.values() {
            if let Value::Text(s) = value {
                assert!(!s.is_empty());
            }
        }
    }
}
