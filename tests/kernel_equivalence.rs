//! Equivalence harness for the quantized scoring kernel.
//!
//! The int8 kernel (`lake_embed::kernel::sweep_below`) must be a faithful
//! optimisation of the dense f32 sweep: same pairs, same costs, bit for bit,
//! for every slab shape and threshold.  The property tests below drive random
//! slabs through both paths and compare the emitted candidate sets exactly —
//! including the adversarial regimes where the quantizer is weakest: cutoffs
//! that coincide *exactly* with an observed distance (strict-θ semantics),
//! zero-variance columns (degenerate quantization range), and rows whose
//! magnitudes differ by twelve orders (saturation pressure).
//!
//! Group-level equivalence of the full matcher over the kernel-backed exact
//! tier is covered by `tests/blocking_equivalence.rs`
//! (`autojoin_150_set_blocked_equals_exhaustive` et al.); this file pins the
//! kernel itself.

use datalake_fuzzy_fd::embed::kernel::{self, dense_sweep_below, sweep_below};
use datalake_fuzzy_fd::embed::{KernelStats, QuantizedSlab, Vector};
use proptest::prelude::*;

/// Runs the quantized sweep and the dense f32 reference over the same rows ×
/// cols fold and returns `(quantized, dense, stats)`.
#[allow(clippy::type_complexity)]
fn run_both(
    rows: &[Vec<f32>],
    cols: &[Vec<f32>],
    cutoff: f32,
) -> ((Vec<(usize, usize)>, Vec<f32>), (Vec<(usize, usize)>, Vec<f32>), KernelStats) {
    let row_slab = QuantizedSlab::from_rows(rows.iter().map(|r| r.as_slice()));
    let col_slab = QuantizedSlab::from_rows(cols.iter().map(|c| c.as_slice()));
    let mut stats = KernelStats::default();
    let quantized = sweep_below(&row_slab, &col_slab, cutoff, &mut stats);

    let row_vecs: Vec<Vector> = rows.iter().map(|r| Vector::new(r.clone())).collect();
    let col_vecs: Vec<Vector> = cols.iter().map(|c| Vector::new(c.clone())).collect();
    let row_refs: Vec<&Vector> = row_vecs.iter().collect();
    let col_refs: Vec<&Vector> = col_vecs.iter().collect();
    let dense = dense_sweep_below(&row_refs, &col_refs, cutoff);
    (quantized, dense, stats)
}

/// Asserts the two sweeps agree bit for bit and the kernel's counters add up.
fn assert_bit_identical(rows: &[Vec<f32>], cols: &[Vec<f32>], cutoff: f32) {
    let ((q_pairs, q_costs), (d_pairs, d_costs), stats) = run_both(rows, cols, cutoff);
    assert_eq!(q_pairs, d_pairs, "pair sets diverged at cutoff {cutoff}");
    let q_bits: Vec<u32> = q_costs.iter().map(|d| d.to_bits()).collect();
    let d_bits: Vec<u32> = d_costs.iter().map(|d| d.to_bits()).collect();
    assert_eq!(q_bits, d_bits, "costs diverged bitwise at cutoff {cutoff}");
    assert_eq!(
        stats.int8_scored,
        stats.skipped + stats.rescored,
        "kernel counters disagree: {stats:?}"
    );
    assert_eq!(stats.classified(), rows.len() * cols.len(), "{stats:?}");
}

/// One slab side: up to 32 rows of the given dimension, each component drawn
/// from a mix of ordinary values, exact zeros (zero-variance pressure) and
/// huge/tiny magnitudes (saturation pressure).
fn rows_strategy(dim: usize) -> impl Strategy<Value = Vec<Vec<f32>>> {
    let component = prop_oneof![
        -1.5f32..1.5,
        Just(0.0f32),
        (-1.5f32..1.5).prop_map(|x| x * 1.0e6),
        (-1.5f32..1.5).prop_map(|x| x * 1.0e-6),
    ];
    prop::collection::vec(prop::collection::vec(component, dim..=dim), 0..32)
}

/// Both sides of a fold, sharing one random dimension (1–19, deliberately
/// straddling the slab lane width so padding is exercised).
fn fold_strategy() -> impl Strategy<Value = (Vec<Vec<f32>>, Vec<Vec<f32>>)> {
    (1usize..20).prop_flat_map(|dim| (rows_strategy(dim), rows_strategy(dim)))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    /// Random slabs, random thresholds: the quantized sweep emits exactly the
    /// dense sweep's pairs and costs.
    #[test]
    fn quantized_sweep_is_bit_identical_to_dense(
        (rows, cols) in fold_strategy(),
        cutoff in 0.0f32..1.6,
    ) {
        assert_bit_identical(&rows, &cols, cutoff);
    }

    /// Adversarial thresholds: every distance the fold actually produces is
    /// replayed as the cutoff itself (the pair must be *excluded* — strict θ)
    /// and as the next representable float up (the pair must be *included*,
    /// which forces the near-band through the exact f32 re-score).
    #[test]
    fn cutoffs_exactly_at_observed_distances_stay_bit_identical(
        (rows, cols) in fold_strategy(),
    ) {
        let row_vecs: Vec<Vector> = rows.iter().map(|r| Vector::new(r.clone())).collect();
        let col_vecs: Vec<Vector> = cols.iter().map(|c| Vector::new(c.clone())).collect();
        let row_refs: Vec<&Vector> = row_vecs.iter().collect();
        let col_refs: Vec<&Vector> = col_vecs.iter().collect();
        // Every observed distance, dense and exact: cutoff 2.0 admits all.
        let (_, all_distances) = dense_sweep_below(&row_refs, &col_refs, 2.0);
        let mut observed: Vec<u32> = all_distances.iter().map(|d| d.to_bits()).collect();
        observed.sort_unstable();
        observed.dedup();
        for bits in observed.into_iter().take(8) {
            let at = f32::from_bits(bits);
            assert_bit_identical(&rows, &cols, at);
            assert_bit_identical(&rows, &cols, f32::from_bits(bits + 1));
        }
    }
}

/// Zero-variance regimes: all-identical rows (the quantizer's degenerate
/// `hi == lo` range), all-zero rows (trivial distance-1 classification) and a
/// slab whose columns each hold a single repeated value.
#[test]
fn zero_variance_slabs_stay_bit_identical() {
    let constant: Vec<Vec<f32>> = vec![vec![0.25f32; 7]; 5];
    let zeros: Vec<Vec<f32>> = vec![vec![0.0f32; 7]; 4];
    let striped: Vec<Vec<f32>> =
        (0..6).map(|_| vec![1.0, -2.0, 0.0, 0.5, 1.0, -2.0, 0.25]).collect();
    for cutoff in [0.0, 0.5, 1.0, f32::from_bits(1.0f32.to_bits() + 1), 1.5] {
        assert_bit_identical(&constant, &constant, cutoff);
        assert_bit_identical(&constant, &zeros, cutoff);
        assert_bit_identical(&zeros, &striped, cutoff);
        assert_bit_identical(&striped, &constant, cutoff);
    }
}

/// Mixed magnitudes: rows twelve orders of magnitude apart share one slab, so
/// the small rows quantize to pure noise (relative error ≈ 1) and must all be
/// routed through the exact f32 re-score rather than mis-skipped.
#[test]
fn mixed_magnitude_slabs_stay_bit_identical() {
    let rows: Vec<Vec<f32>> = vec![
        vec![1.0e6, -2.0e6, 3.0e6, 0.0],
        vec![1.0e-6, 2.0e-6, -1.0e-6, 3.0e-6],
        vec![0.5, -0.25, 0.125, 1.0],
        vec![-1.0e6, 1.0e-6, 0.5, 0.0],
    ];
    let cols: Vec<Vec<f32>> = vec![
        vec![1.0e6, -2.0e6, 3.0e6, 1.0e-6],
        vec![-1.0e-6, -2.0e-6, 1.0e-6, -3.0e-6],
        vec![0.5, -0.25, 0.125, 1.0],
    ];
    for cutoff in [0.05, 0.3, 0.8, 1.0, 1.4] {
        assert_bit_identical(&rows, &cols, cutoff);
    }
}

/// Degenerate shapes: empty sides and dimension-zero slabs match the dense
/// sweep's semantics (no pairs, or all-trivial distance-1 pairs).
#[test]
fn degenerate_shapes_stay_bit_identical() {
    let empty: Vec<Vec<f32>> = Vec::new();
    let dimless: Vec<Vec<f32>> = vec![vec![], vec![]];
    let plain: Vec<Vec<f32>> = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
    for cutoff in [0.5, 1.0, f32::from_bits(1.0f32.to_bits() + 1), 1.5] {
        assert_bit_identical(&empty, &plain, cutoff);
        assert_bit_identical(&plain, &empty, cutoff);
        assert_bit_identical(&empty, &empty, cutoff);
        assert_bit_identical(&dimless, &dimless, cutoff);
    }
}

/// The per-pair entry point agrees with the sweep over a whole fold — the
/// escalated tier re-scores through `distance_below`, so its classifications
/// must carry the same bit-exact guarantee.
#[test]
fn per_pair_classification_matches_the_sweep() {
    let rows: Vec<Vec<f32>> =
        (0..9).map(|i| (0..5).map(|j| ((i * 5 + j) as f32 * 0.37).sin()).collect()).collect();
    let cols: Vec<Vec<f32>> =
        (0..7).map(|i| (0..5).map(|j| ((i * 5 + j) as f32 * 0.53).cos()).collect()).collect();
    let row_slab = QuantizedSlab::from_rows(rows.iter().map(|r| r.as_slice()));
    let col_slab = QuantizedSlab::from_rows(cols.iter().map(|c| c.as_slice()));
    for cutoff in [0.2, 0.7, 1.0, 1.3] {
        let mut sweep_stats = KernelStats::default();
        let (pairs, costs) = sweep_below(&row_slab, &col_slab, cutoff, &mut sweep_stats);
        let mut pair_stats = KernelStats::default();
        let mut found: Vec<((usize, usize), f32)> = Vec::new();
        for r in 0..row_slab.len() {
            for c in 0..col_slab.len() {
                if let Some(d) =
                    kernel::distance_below(&row_slab, r, &col_slab, c, cutoff, &mut pair_stats)
                {
                    found.push(((r, c), d));
                }
            }
        }
        let swept: Vec<((usize, usize), f32)> = pairs.iter().copied().zip(costs).collect();
        assert_eq!(found, swept, "cutoff {cutoff}");
        assert_eq!(pair_stats.int8_scored, sweep_stats.int8_scored, "cutoff {cutoff}");
        assert_eq!(pair_stats.rescored, sweep_stats.rescored, "cutoff {cutoff}");
        assert_eq!(pair_stats.skipped, sweep_stats.skipped, "cutoff {cutoff}");
    }
}
