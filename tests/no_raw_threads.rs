//! Executor discipline, grep-enforced: every parallel site must route
//! through `lake_runtime::run_scope`.  Raw std `thread` primitives (spawn,
//! scope, Builder) outside `crates/runtime` reintroduce exactly the
//! per-site ad-hoc pools the shared executor replaced (and escape its
//! ordering, panic and diagnostics guarantees), so the workspace sources
//! are scanned for them.

use std::fs;
use std::path::{Path, PathBuf};

/// The source trees that make up the workspace (vendored stubs included:
/// stand-ins must not quietly grow thread pools either).
const SCANNED: [&str; 5] = ["src", "crates", "tests", "examples", "vendor"];

fn rust_sources(root: &Path) -> Vec<PathBuf> {
    let runtime_crate = root.join("crates").join("runtime");
    let mut stack: Vec<PathBuf> = SCANNED.iter().map(|dir| root.join(dir)).collect();
    let mut sources = Vec::new();
    while let Some(dir) = stack.pop() {
        if dir == runtime_crate {
            continue; // the one crate allowed to own thread primitives
        }
        let Ok(entries) = fs::read_dir(&dir) else { continue };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|ext| ext == "rs") {
                sources.push(path);
            }
        }
    }
    sources
}

#[test]
fn no_raw_thread_primitives_outside_the_runtime_crate() {
    // Assembled at runtime so this file does not flag itself.  The blanket
    // std-thread-module pattern also catches Builder-based spawns and
    // direct `use`-imports that the two call patterns would miss.
    let forbidden = [
        format!("thread::{}", "spawn"),
        format!("thread::{}", "scope"),
        format!("std::{}", "thread"),
    ];
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let sources = rust_sources(root);
    assert!(
        sources.len() > 50,
        "the scan looks broken: only {} Rust sources found under {root:?}",
        sources.len()
    );

    let mut offenders = Vec::new();
    for path in sources {
        let content = fs::read_to_string(&path)
            .unwrap_or_else(|err| panic!("unreadable source {path:?}: {err}"));
        if forbidden.iter().any(|needle| content.contains(needle)) {
            offenders.push(path);
        }
    }
    assert!(
        offenders.is_empty(),
        "raw std thread primitives outside crates/runtime — route through \
         lake_runtime::run_scope instead: {offenders:#?}"
    );
}
