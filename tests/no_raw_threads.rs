//! Executor discipline, lint-enforced: every parallel site must route
//! through `lake_runtime::run_scope`.  Raw std `thread` primitives (spawn,
//! scope, Builder) outside `crates/runtime` reintroduce exactly the
//! per-site ad-hoc pools the shared executor replaced (and escape its
//! ordering, panic and diagnostics guarantees).
//!
//! This used to be a grep loop in this file.  It is now a thin wrapper
//! over `lake-lint`'s `raw-threads` rule, which lexes instead of grepping:
//! it cannot be evaded by `use std::thread as t;`, does not fire on the
//! pattern appearing in comments or strings, hard-errors on unreadable
//! sources instead of skipping them, and reports exact `file:line:col`
//! spans.  See `docs/LINTS.md`.

use lake_lint::Engine;

#[test]
fn no_raw_thread_primitives_outside_the_runtime_crate() {
    let report = Engine::new(env!("CARGO_MANIFEST_DIR"))
        .run_rule("raw-threads")
        .expect("the workspace walk must succeed (unreadable sources are a failure, not a skip)");
    assert!(
        report.diagnostics.is_empty(),
        "raw std thread primitives outside crates/runtime — route through \
         lake_runtime::run_scope instead:\n{}",
        report.diagnostics.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
}
