//! Integration test reproducing the paper's Figure 1 end to end:
//! the equi-join Full Disjunction produces the nine fragments f1..f9, the
//! fuzzy Full Disjunction produces the five merged tuples f10..f14.

use datalake_fuzzy_fd::core::{regular_full_disjunction, FuzzyFdConfig, FuzzyFullDisjunction};
use datalake_fuzzy_fd::schema_match::align_by_headers;
use datalake_fuzzy_fd::table::{Table, TableBuilder, TupleId, Value};

fn figure1_tables() -> Vec<Table> {
    vec![
        TableBuilder::new("T1", ["City", "Country"])
            .row(["Berlinn", "Germany"])
            .row(["Toronto", "Canada"])
            .row(["Barcelona", "Spain"])
            .row(["New Delhi", "India"])
            .build()
            .unwrap(),
        TableBuilder::new("T2", ["Country", "City", "Vac. Rate (1+ dose)"])
            .row(["CA", "Toronto", "83%"])
            .row(["US", "Boston", "62%"])
            .row(["DE", "Berlin", "63%"])
            .row(["ES", "Barcelona", "82%"])
            .build()
            .unwrap(),
        TableBuilder::new("T3", ["City", "Total Cases", "Death Rate (per 100k)"])
            .row(["Berlin", "1.4M", "147"])
            .row(["barcelona", "2.68M", "275"])
            .row(["Boston", "263K", "335"])
            .build()
            .unwrap(),
    ]
}

#[test]
fn equi_join_fd_leaves_nine_fragments() {
    let tables = figure1_tables();
    let alignment = align_by_headers(&tables);
    let fd = regular_full_disjunction(&tables, &alignment);
    assert_eq!(fd.len(), 9);

    // f6 = {t6, t11} (Boston) and f7 = {t7, t9} (Berlin) are the only merges.
    let merged: Vec<_> = fd.tuples().iter().filter(|t| t.provenance().len() > 1).collect();
    assert_eq!(merged.len(), 2);
    assert!(merged.iter().any(|t| t.values().contains(&Value::text("Boston"))));
    assert!(merged.iter().any(|t| t.values().contains(&Value::text("Berlin"))));
}

#[test]
fn fuzzy_fd_produces_the_five_tuples_of_figure1() {
    let tables = figure1_tables();
    let alignment = align_by_headers(&tables);
    let outcome = FuzzyFullDisjunction::new(FuzzyFdConfig::default())
        .integrate(&tables, &alignment)
        .expect("fuzzy FD");
    let fd = &outcome.table;
    assert_eq!(fd.len(), 5, "{:#?}", fd.tuples());

    // f10 = {t1, t7, t9}: Berlin with Germany, 63%, 1.4M, 147.
    let berlin = fd
        .tuples()
        .iter()
        .find(|t| t.provenance().contains(&TupleId::new("T1", 0)))
        .expect("tuple containing t1 (Berlinn)");
    assert_eq!(berlin.provenance().len(), 3);
    assert!(berlin.provenance().contains(&TupleId::new("T2", 2)));
    assert!(berlin.provenance().contains(&TupleId::new("T3", 0)));
    assert!(berlin.values().contains(&Value::text("Berlin")));
    assert!(berlin.values().contains(&Value::text("1.4M")));

    // f11 = {t2, t5}: Toronto, Canada, 83%.
    let toronto = fd
        .tuples()
        .iter()
        .find(|t| t.values().contains(&Value::text("Toronto")))
        .expect("Toronto tuple");
    assert_eq!(toronto.provenance().len(), 2);
    assert!(toronto.values().contains(&Value::text("83%")));

    // f12 = {t3, t8, t10}: Barcelona with 82%, 2.68M, 275.
    let barcelona = fd
        .tuples()
        .iter()
        .find(|t| t.provenance().contains(&TupleId::new("T3", 1)))
        .expect("tuple containing t10 (barcelona)");
    assert_eq!(barcelona.provenance().len(), 3);
    assert!(barcelona.values().contains(&Value::text("82%")));
    assert!(barcelona.values().contains(&Value::text("2.68M")));

    // f13 = {t4}: New Delhi stays alone.
    let delhi = fd
        .tuples()
        .iter()
        .find(|t| t.values().contains(&Value::text("New Delhi")))
        .expect("New Delhi tuple");
    assert_eq!(delhi.provenance().len(), 1);

    // f14 = {t6, t11}: Boston.
    let boston = fd
        .tuples()
        .iter()
        .find(|t| t.values().contains(&Value::text("Boston")))
        .expect("Boston tuple");
    assert_eq!(boston.provenance().len(), 2);
}

#[test]
fn every_base_tuple_is_represented_in_both_results() {
    let tables = figure1_tables();
    let alignment = align_by_headers(&tables);

    let total_base: usize = tables.iter().map(|t| t.num_rows()).sum();
    let regular = regular_full_disjunction(&tables, &alignment);
    let fuzzy = FuzzyFullDisjunction::new(FuzzyFdConfig::default())
        .integrate(&tables, &alignment)
        .expect("fuzzy FD");

    for result in [&regular, &fuzzy.table] {
        let covered: std::collections::BTreeSet<TupleId> =
            result.tuples().iter().flat_map(|t| t.provenance().iter().cloned()).collect();
        assert_eq!(
            covered.len(),
            total_base,
            "all 11 base tuples must appear in some output tuple"
        );
    }
}
