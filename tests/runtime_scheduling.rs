//! Scheduler invariance and quality harness for the shared work-stealing
//! executor (`lake-runtime`).
//!
//! The executor replaced three ad-hoc round-robin pools, and its contract
//! has two halves:
//!
//! 1. **Invariance** — outputs are identical to the sequential path for any
//!    worker count, even on the skewed (power-law) workloads where
//!    scheduling actually matters.  Checked by proptests at the executor,
//!    FD-component and matching-block layers.
//! 2. **Quality** — on the skewed-components fold the cost-aware LPT plan
//!    must beat static round-robin bucketing by the margin the migration
//!    was sold on (≥ 1.3× in makespan), independent of the host's core
//!    count (this container exposes a single CPU, so the win is asserted in
//!    deterministic cost units, not wall clock — see BENCH_BASELINE.json).

use datalake_fuzzy_fd::benchdata::{generate_skewed_components, SkewedComponentsConfig};
use datalake_fuzzy_fd::core::{match_column_values, FuzzyFdConfig};
use datalake_fuzzy_fd::embed::EmbeddingModel;
use datalake_fuzzy_fd::fd::{full_disjunction, parallel_full_disjunction_with, IntegrationSchema};
use datalake_fuzzy_fd::runtime::{run_round_robin, run_scope, ParallelPolicy};
use datalake_fuzzy_fd::table::Value;
use proptest::prelude::*;

/// Deterministic stand-in for real work: chunky enough that schedules
/// interleave, pure enough that outputs compare exactly.
fn churn(seed: u64, rounds: u64) -> u64 {
    let mut acc = seed;
    for i in 0..rounds {
        acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(i ^ seed);
    }
    acc
}

/// Power-law-ish task sizes: many small, few enormous (the distribution the
/// escalation fold's Kruskal splitter emits).
fn power_law_sizes() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec((0u32..10).prop_map(|exponent| 1u64 << exponent), 2..40)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 20, ..ProptestConfig::default() })]

    /// The executor itself: outputs equal the sequential map, in input
    /// order, for every worker count — on skewed inputs.
    #[test]
    fn executor_is_thread_count_invariant_on_skewed_tasks(sizes in power_law_sizes()) {
        let expected: Vec<u64> =
            sizes.iter().map(|&size| churn(size, size * 64)).collect();
        for threads in [1usize, 2, 3, 8] {
            let (outputs, stats) = run_scope(
                &ParallelPolicy::explicit(threads),
                sizes.clone(),
                |&size| size,
                |size| churn(size, size * 64),
            );
            prop_assert_eq!(&outputs, &expected, "threads = {}", threads);
            prop_assert_eq!(stats.tasks, sizes.len() as u64);
        }
        // The retired round-robin baseline agrees too (it is what the
        // scheduling benchmark group compares against).
        let round_robin = run_round_robin(4, sizes.clone(), |size| churn(size, size * 64));
        prop_assert_eq!(&round_robin, &expected);
    }

    /// Parallel FD over components with power-law sizes: identical to the
    /// sequential operator for every thread count (0 = auto included).
    #[test]
    fn parallel_fd_is_thread_count_invariant_on_skewed_components(
        small_sizes in prop::collection::vec((0u32..5).prop_map(|e| 2usize + (1usize << e)), 1..8),
        giant in 16usize..48,
    ) {
        let fold = generate_skewed_components(SkewedComponentsConfig {
            giant,
            mediums: 1,
            medium: 12,
            smalls: small_sizes.len(),
            small: *small_sizes.first().unwrap_or(&3),
            stride: 3,
        });
        let schema = IntegrationSchema::from_matching_headers(&fold.tables);
        let sequential = full_disjunction(&schema, &fold.tables);
        for threads in [0usize, 1, 2, 3, 8] {
            let (parallel, stats) =
                parallel_full_disjunction_with(&schema, &fold.tables, threads);
            prop_assert_eq!(&parallel, &sequential, "threads = {}", threads);
            if threads >= 2 {
                prop_assert_eq!(stats.runtime.tasks as usize, stats.components);
            }
        }
    }
}

/// Distinctive pseudo-words sharing no character trigrams, so clusters
/// block apart cleanly (same construction as `blocking_equivalence.rs`).
const BASES: [&str; 12] = [
    "qavlumper",
    "zorbekkin",
    "wyxtrovan",
    "fenglodar",
    "mubrizzok",
    "tislenkor",
    "hardwexil",
    "covantrup",
    "jesprilon",
    "nuxbalter",
    "ryzomenta",
    "gwalfiddo",
];

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Blocked value matching over clusters of power-law sizes: the block
    /// cost matrices span ~1000× (1×1 up to 1×16 and wider), and the solved
    /// groups must be identical to the sequential path for every worker
    /// count.
    #[test]
    fn skewed_block_solving_is_thread_count_invariant(
        variant_counts in prop::collection::vec((0u32..5).prop_map(|e| 1usize << e), 3..10),
    ) {
        // Cluster i: one canonical value plus `variant_counts[i]` variants
        // sharing its leading token, so each cluster is one independent
        // block of 1 × count cells (plus whatever the variants contribute).
        let mut canonical: Vec<Value> = Vec::new();
        let mut noisy: Vec<Value> = Vec::new();
        for (i, &count) in variant_counts.iter().enumerate() {
            let base = BASES[i % BASES.len()];
            canonical.push(Value::text(base));
            for variant in 0..count {
                noisy.push(Value::text(format!("{base} v{variant}")));
            }
        }
        let columns = vec![canonical, noisy];
        let embedder = EmbeddingModel::Mistral.build();
        let config = |threads: usize| {
            FuzzyFdConfig { matching_threads: threads, ..FuzzyFdConfig::default() }
                .force_blocking()
        };
        let sequential = match_column_values(&columns, embedder.as_ref(), config(1));
        for threads in [0usize, 2, 3, 8] {
            let parallel = match_column_values(&columns, embedder.as_ref(), config(threads));
            prop_assert_eq!(&parallel, &sequential, "threads = {}", threads);
        }
    }
}

/// The migration's quality claim, asserted deterministically: on the
/// default skewed-components fold (giant at component 0, mediums on the
/// round-robin stride), static round-robin bucketing at 4 workers yields a
/// makespan ≥ 1.3× the executor's LPT seeding plan — in closure-cost units,
/// so the assertion holds on any host (stealing can only improve on the
/// static LPT bound at runtime).
#[test]
fn lpt_plan_beats_round_robin_makespan_by_1_3x_on_the_skewed_fold() {
    const WORKERS: usize = 4;
    let fold = generate_skewed_components(SkewedComponentsConfig::default());
    let costs: Vec<u64> = fold.component_sizes.iter().map(|&size| (size * size) as u64).collect();

    let mut round_robin = [0u64; WORKERS];
    for (index, &cost) in costs.iter().enumerate() {
        round_robin[index % WORKERS] += cost;
    }
    let round_robin_makespan = *round_robin.iter().max().unwrap();

    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(costs[i]), i));
    let mut lpt = [0u64; WORKERS];
    for index in order {
        let lightest = (0..WORKERS).min_by_key(|&w| (lpt[w], w)).unwrap();
        lpt[lightest] += costs[index];
    }
    let lpt_makespan = *lpt.iter().max().unwrap();

    let ratio = round_robin_makespan as f64 / lpt_makespan as f64;
    assert!(
        ratio >= 1.3,
        "round-robin {round_robin_makespan} vs LPT {lpt_makespan}: ratio {ratio:.2} < 1.3"
    );
}

/// The executor's scheduling must surface in the FD report: running the
/// skewed fold at 4 workers schedules one task per component on 4 workers,
/// and imbalance is meaningful (≥ 1).
#[test]
fn fd_runtime_stats_surface_scheduling_quality() {
    let fold = generate_skewed_components(SkewedComponentsConfig {
        giant: 40,
        mediums: 2,
        medium: 12,
        smalls: 6,
        small: 4,
        stride: 4,
    });
    let schema = IntegrationSchema::from_matching_headers(&fold.tables);
    let (_, stats) = parallel_full_disjunction_with(&schema, &fold.tables, 4);
    assert_eq!(stats.components, fold.component_sizes.len());
    assert_eq!(stats.runtime.tasks as usize, stats.components);
    assert_eq!(stats.runtime.workers(), 4);
    assert!(stats.runtime.imbalance() >= 1.0);
    assert!(stats.runtime.busy_nanos() > 0);
}

/// A panicking task aborts the batch with the original panic — the scope
/// must never deadlock waiting for the dead worker's queue.
#[test]
#[should_panic(expected = "integration-level panic probe")]
fn panicking_task_propagates_through_the_scope() {
    let items: Vec<u64> = (0..48).collect();
    let _ = run_scope(
        &ParallelPolicy::explicit(4),
        items,
        |_| 1,
        |item| {
            if item == 31 {
                panic!("integration-level panic probe");
            }
            churn(item, 50_000)
        },
    );
}
