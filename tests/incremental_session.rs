//! Equivalence harness for incremental integration sessions.
//!
//! An [`IntegrationSession`] must be a faithful optimisation of batch
//! re-integration: after any sequence of `add_table` calls, the integrated
//! table and the value groups must be byte-identical to one
//! [`FuzzyFullDisjunction::integrate_by_headers`] call over all tables —
//! while re-planning strictly fewer folds, hitting the warmed embedding
//! cache, and reusing unchanged FD component closures.

use datalake_fuzzy_fd::benchdata::{
    generate_append_workload, generate_autojoin_benchmark, AppendWorkloadConfig, AutoJoinConfig,
};
use datalake_fuzzy_fd::core::{
    FuzzyFdConfig, FuzzyFullDisjunction, IncrementalPolicy, IntegrationSession,
};
use datalake_fuzzy_fd::table::Table;

fn batch(config: FuzzyFdConfig, tables: &[Table]) -> datalake_fuzzy_fd::core::IntegrationOutcome {
    FuzzyFullDisjunction::new(config).integrate_by_headers(tables).expect("batch integration")
}

/// Acceptance: on the Auto-Join 150-value set, appending the last column's
/// table to a warm session produces output byte-identical to batch
/// re-integration, while re-planning strictly fewer folds (asserted via
/// `BlockingStats.folds`).
#[test]
fn autojoin_150_session_append_is_byte_identical_to_batch() {
    // Set 1 of the generator has three aligned columns — two to open the
    // session with, one to append.
    let config =
        AutoJoinConfig { num_sets: 2, values_per_column: 150, ..AutoJoinConfig::default() };
    let set = generate_autojoin_benchmark(config).remove(1);
    let tables = set.tables();
    assert_eq!(tables.len(), 3, "the harness needs a three-column set");

    let fd_config = FuzzyFdConfig::default();
    let reference = batch(fd_config, &tables);

    let mut session = IntegrationSession::begin(fd_config, &tables[..2]).expect("session open");
    let initial_folds = session.current().report.blocking.folds;
    let outcome = session.add_table(&tables[2]).expect("append");

    // Byte-identical output: the integrated table (values, provenance and
    // order) and every value group.
    assert_eq!(outcome.table, reference.table, "session output diverged from batch");
    assert_eq!(outcome.value_groups, reference.value_groups);

    // Strictly fewer folds: the append plans only the new column's fold,
    // batch re-plans the whole chain.
    assert!(
        outcome.report.blocking.folds < reference.report.blocking.folds,
        "append planned {} folds, batch planned {}",
        outcome.report.blocking.folds,
        reference.report.blocking.folds
    );
    assert_eq!(outcome.report.blocking.folds, 1, "one appended column = one fold");
    assert_eq!(initial_folds + outcome.report.blocking.folds, reference.report.blocking.folds);

    // The appended fold ran against the warmed cache: the combined column's
    // 150 values were all embedded in the initial call.
    assert!(
        outcome.incremental.embed_hits > 0,
        "appending must hit the warm cache: {:?}",
        outcome.incremental
    );
    assert_eq!(outcome.incremental.refolded_sets, 1);
    assert_eq!(outcome.incremental.rebuilt_sets, 0);
}

/// The same equivalence, one table at a time over the append workload (which
/// widens the integration schema on every append — the FD cache must remap,
/// not reset), checked against batch at every prefix.
#[test]
fn append_workload_stays_equivalent_at_every_step() {
    let workload = generate_append_workload(AppendWorkloadConfig {
        entities: 60,
        initial_tables: 2,
        appended_tables: 2,
        ..AppendWorkloadConfig::default()
    });
    // Two workers: the appended columns' warm-up batches run on the shared
    // executor, where already-cached values surface as cache hits.
    let fd_config = FuzzyFdConfig { matching_threads: 2, ..FuzzyFdConfig::default() };

    let mut session = IntegrationSession::begin(fd_config, &workload.initial).expect("open");
    let mut integrated: Vec<Table> = workload.initial.clone();
    assert_eq!(session.current().table, batch(fd_config, &integrated).table);

    let mut fast_path_steps = 0usize;
    for table in &workload.appends {
        let outcome = session.add_table(table).expect("append");
        integrated.push(table.clone());
        let reference = batch(fd_config, &integrated);
        assert_eq!(outcome.table, reference.table, "diverged after {}", table.name());
        assert_eq!(outcome.value_groups, reference.value_groups);
        // A step never plans more folds than batch; a coinciding typo across
        // tables can trip the representative drift guard into a full
        // re-match of the set (folds equal to batch — path coverage the
        // workload deliberately keeps), but the extend fast path must be
        // exercised too.
        assert!(outcome.report.blocking.folds <= reference.report.blocking.folds);
        if outcome.report.blocking.folds < reference.report.blocking.folds {
            fast_path_steps += 1;
            assert!(outcome.incremental.refolded_sets > 0, "{:?}", outcome.incremental);
        }
        // The private attribute columns widen the schema every time; the
        // remapped FD cache must still reuse the untouched components.
        assert!(
            outcome.report.fd_stats.reused_components > 0,
            "no FD reuse after {}: {:?}",
            table.name(),
            outcome.report.fd_stats
        );
        assert!(outcome.incremental.embed_hits > 0);
    }
    assert!(fast_path_steps > 0, "no append took the strictly-fewer-folds fast path");

    let (embed_hits, embed_misses) = session.embedding_stats();
    assert!(embed_hits > 0 && embed_misses > 0);
    let (fd_hits, _) = session.fd_cache_stats();
    assert!(fd_hits > 0);
}

/// Reuse must not depend on the worker-thread count, and every
/// `IncrementalPolicy` switch must land on the same bytes.
#[test]
fn sessions_are_policy_and_thread_count_invariant() {
    let workload = generate_append_workload(AppendWorkloadConfig {
        entities: 40,
        initial_tables: 2,
        appended_tables: 1,
        ..AppendWorkloadConfig::default()
    });
    let reference = batch(FuzzyFdConfig::default(), &workload.all_tables());

    for threads in [1usize, 0, 3] {
        for policy in [IncrementalPolicy::default(), IncrementalPolicy::full_recompute()] {
            let config = FuzzyFdConfig { matching_threads: threads, ..FuzzyFdConfig::default() };
            let mut session =
                IntegrationSession::begin_with_policy(config, policy, &workload.initial)
                    .expect("open");
            let outcome = session.add_table(&workload.appends[0]).expect("append");
            assert_eq!(outcome.table, reference.table, "threads = {threads}, policy = {policy:?}");
            assert_eq!(outcome.value_groups, reference.value_groups);
        }
    }
}

/// Representative-flip counterexample: an appended duplicate re-elects a
/// group representative, the known mechanism by which blind state extension
/// could diverge from batch.  The session's drift guard must rebuild the
/// set and stay byte-identical at every prefix.
#[test]
fn representative_flips_stay_batch_identical() {
    use datalake_fuzzy_fd::table::TableBuilder;

    let column_table =
        |name: &str, value: &str| TableBuilder::new(name, ["c"]).row([value]).build().unwrap();
    // Two shapes of the same attack: the flip is consumed by the fold the
    // flipping value arrives in (first sequence), and by a retained fold
    // that ran *after* the group's last member joined (second sequence —
    // "coloy" must match against the re-elected "colou", not the stale
    // "colour").
    let sequences =
        [["colour", "colou", "colouur", "colou"], ["colour", "colou", "coloy", "colou"]];
    for values in sequences {
        let tables: Vec<_> = values
            .iter()
            .enumerate()
            .map(|(i, value)| column_table(&format!("S{i}"), value))
            .collect();
        let mut session =
            IntegrationSession::begin(FuzzyFdConfig::default(), &tables[..2]).expect("open");
        for (idx, table) in tables.iter().enumerate().skip(2) {
            let outcome = session.add_table(table).expect("append");
            let reference = batch(FuzzyFdConfig::default(), &tables[..=idx]);
            assert_eq!(outcome.table, reference.table, "{values:?} diverged at prefix {}", idx + 1);
            assert_eq!(outcome.value_groups, reference.value_groups);
        }
        assert!(
            session.current().incremental.rebuilt_sets > 0,
            "{values:?}: the duplicate must trip the drift guard: {:?}",
            session.current().incremental
        );
    }
}

/// Batched appends (`add_tables`) equal one-at-a-time appends and batch
/// re-integration.
#[test]
fn batched_appends_match_single_appends() {
    let workload = generate_append_workload(AppendWorkloadConfig {
        entities: 40,
        initial_tables: 1,
        appended_tables: 3,
        ..AppendWorkloadConfig::default()
    });
    let fd_config = FuzzyFdConfig::default();
    let reference = batch(fd_config, &workload.all_tables());

    let mut one_shot = IntegrationSession::begin(fd_config, &workload.initial).expect("open");
    let batched = one_shot.add_tables(&workload.appends).expect("batched append");
    assert_eq!(batched.table, reference.table);
    assert_eq!(batched.incremental.appended_tables, 3);

    let mut stepwise = IntegrationSession::begin(fd_config, &workload.initial).expect("open");
    let mut last = None;
    for table in &workload.appends {
        last = Some(stepwise.add_table(table).expect("append"));
    }
    let last = last.unwrap();
    assert_eq!(last.table, reference.table);
    assert_eq!(last.value_groups, batched.value_groups);
}
