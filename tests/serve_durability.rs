//! Restart/recovery tests for the durable serving path
//! ([`LakeServer::start_durable`]): a restarted server must replay its
//! write-ahead logs and serve `/query` bodies **byte-identical** to the
//! uninterrupted run over every acknowledged ingest — and an un-acked torn
//! log tail must be cleanly absent, never partially applied.

use std::path::PathBuf;
use std::time::Duration;

use datalake_fuzzy_fd::benchdata::serving::{generate_serving_trace, ServingTraceConfig};
use datalake_fuzzy_fd::serve::{
    route_group, DurabilityPolicy, LakeServer, QueryTarget, ServeClient, ServePolicy,
};
use datalake_fuzzy_fd::store::{FsyncPolicy, StorePolicy};

const IDLE_TIMEOUT: Duration = Duration::from_secs(120);

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("serve-durability-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn small_trace() -> ServingTraceConfig {
    ServingTraceConfig { tenants: 3, tables_per_tenant: 2, entities: 20, seed: 0xD07A }
}

/// Polls `/stats` until `totals.applied` reaches `expected` (recovery
/// replay included) and the queues are idle.
fn wait_applied(client: &ServeClient, expected: u64) {
    let deadline = std::time::Instant::now() + IDLE_TIMEOUT;
    loop {
        let stats = client.stats().expect("stats").json().expect("stats JSON");
        let applied = stats
            .get("totals")
            .and_then(|t| t.get("applied"))
            .and_then(serde_json::Value::as_u64)
            .unwrap_or(0);
        if applied >= expected && client.wait_idle(IDLE_TIMEOUT).expect("stats") {
            return;
        }
        assert!(std::time::Instant::now() < deadline, "recovery stalled at applied={applied}");
        datalake_fuzzy_fd::runtime::pause(Duration::from_millis(5));
    }
}

/// Captures every `/query` body for every tenant and view.
fn capture_views(client: &ServeClient, tenants: &[&str]) -> Vec<(String, String, String)> {
    let mut views = Vec::new();
    for tenant in tenants {
        for view in ["table", "report", "provenance"] {
            let reply = client.query(QueryTarget::Group(tenant), view).expect("query");
            assert_eq!(reply.status, 200, "query failed: {}", reply.body);
            views.push(((*tenant).to_string(), view.to_string(), reply.body));
        }
    }
    views
}

#[test]
fn restarted_server_serves_byte_identical_views() {
    let dir = test_dir("restart");
    let policy = ServePolicy { shards: 2, ..ServePolicy::default() };
    let durability = DurabilityPolicy {
        store: StorePolicy { checkpoint_every: 3, ..StorePolicy::default() },
        ..DurabilityPolicy::at(&dir)
    };
    let trace = generate_serving_trace(small_trace());
    let tenants: Vec<&str> = trace.tenants();

    // Uninterrupted run: ingest the whole trace, record every view body.
    let server = LakeServer::start_durable(policy, durability.clone()).expect("server starts");
    let client = ServeClient::new(server.addr());
    for arrival in &trace.arrivals {
        let ack = client.ingest(&arrival.tenant, &arrival.table).expect("ingest");
        assert_eq!(ack.status, 202, "unexpected ack: {}", ack.body);
    }
    assert!(client.wait_idle(IDLE_TIMEOUT).expect("stats"), "queues did not drain");
    let before = capture_views(&client, &tenants);

    // Durability counters are live on the uninterrupted run too.
    let stats = client.stats().expect("stats").json().expect("stats JSON");
    let durability_totals = stats
        .get("totals")
        .and_then(|t| t.get("durability"))
        .expect("durable servers report totals.durability");
    assert_eq!(
        durability_totals.get("appends").and_then(serde_json::Value::as_u64),
        Some(trace.arrivals.len() as u64),
        "every acknowledged ingest is logged: {stats:?}"
    );
    assert!(
        durability_totals.get("fsyncs").and_then(serde_json::Value::as_u64).unwrap_or(0)
            >= trace.arrivals.len() as u64,
        "fsync-per-append is the default policy: {stats:?}"
    );
    server.shutdown();

    // Restart over the same directory: replay, then compare bytes.
    let server = LakeServer::start_durable(policy, durability.clone()).expect("server restarts");
    let client = ServeClient::new(server.addr());
    wait_applied(&client, trace.arrivals.len() as u64);
    let after = capture_views(&client, &tenants);
    assert_eq!(before.len(), after.len());
    for ((tenant, view, before), (_, _, after)) in before.iter().zip(&after) {
        assert_eq!(before, after, "tenant {tenant} view {view} diverged across restart");
    }

    // Recovery provenance is visible: the replayed records came from the
    // manifest (final-checkpoint shutdown) and/or the log tail.
    let stats = client.stats().expect("stats").json().expect("stats JSON");
    let recovery = stats
        .get("totals")
        .and_then(|t| t.get("durability"))
        .and_then(|d| d.get("recovery"))
        .expect("durability totals include recovery");
    let recovered = recovery.get("manifest_records").and_then(serde_json::Value::as_u64).unwrap()
        + recovery.get("wal_records").and_then(serde_json::Value::as_u64).unwrap();
    assert_eq!(recovered, trace.arrivals.len() as u64, "recovery covers the whole trace");

    // The restarted server keeps serving: a fresh ingest applies on top of
    // the recovered state.
    let arrival = &trace.arrivals[0];
    let ack = client.ingest(&arrival.tenant, &arrival.table).expect("post-restart ingest");
    assert_eq!(ack.status, 202);
    wait_applied(&client, trace.arrivals.len() as u64 + 1);
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_log_tail_is_cleanly_absent_after_restart() {
    let dir = test_dir("torn");
    let policy = ServePolicy { shards: 1, ..ServePolicy::default() };
    let durability = DurabilityPolicy::at(&dir);
    let trace = generate_serving_trace(ServingTraceConfig {
        tenants: 1,
        tables_per_tenant: 2,
        entities: 15,
        seed: 0x70A1,
    });

    let server = LakeServer::start_durable(policy, durability.clone()).expect("server starts");
    let client = ServeClient::new(server.addr());
    for arrival in &trace.arrivals {
        assert_eq!(client.ingest(&arrival.tenant, &arrival.table).expect("ingest").status, 202);
    }
    assert!(client.wait_idle(IDLE_TIMEOUT).expect("stats"));
    let tenants: Vec<&str> = trace.tenants();
    let before = capture_views(&client, &tenants);
    server.shutdown();

    // A crash tore an in-flight (never acknowledged) record: fake the
    // half-written frame at the log tail of the tenant's shard.
    let shard = route_group(tenants[0], 1);
    let wal = dir.join(format!("shard-{shard}")).join("wal");
    let mut bytes = std::fs::read(&wal).unwrap();
    bytes.extend_from_slice(&[99, 0, 0, 0, 1, 2, 3]); // claims 99 payload bytes, has 3
    std::fs::write(&wal, &bytes).unwrap();

    // The restarted server drops the tear: same bytes as before the
    // crash, nothing partially applied, and the tear is accounted for.
    let server = LakeServer::start_durable(policy, durability).expect("server restarts");
    let client = ServeClient::new(server.addr());
    wait_applied(&client, trace.arrivals.len() as u64);
    let after = capture_views(&client, &tenants);
    for ((tenant, view, before), (_, _, after)) in before.iter().zip(&after) {
        assert_eq!(before, after, "tenant {tenant} view {view} diverged across the torn tail");
    }
    let stats = client.stats().expect("stats").json().expect("stats JSON");
    let torn = stats
        .get("totals")
        .and_then(|t| t.get("durability"))
        .and_then(|d| d.get("recovery"))
        .and_then(|r| r.get("torn_bytes"))
        .and_then(serde_json::Value::as_u64);
    assert_eq!(torn, Some(7), "the dropped tail is reported in /stats: {stats:?}");
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn batched_fsync_flusher_persists_acknowledged_ingests() {
    let dir = test_dir("batched");
    let policy = ServePolicy { shards: 1, ..ServePolicy::default() };
    let durability = DurabilityPolicy {
        store: StorePolicy { fsync: FsyncPolicy::Batched, ..StorePolicy::default() },
        flush_interval: Duration::from_millis(5),
        ..DurabilityPolicy::at(&dir)
    };
    let trace = generate_serving_trace(ServingTraceConfig {
        tenants: 1,
        tables_per_tenant: 2,
        entities: 15,
        seed: 0xBA7C,
    });

    let server = LakeServer::start_durable(policy, durability.clone()).expect("server starts");
    let client = ServeClient::new(server.addr());
    for arrival in &trace.arrivals {
        assert_eq!(client.ingest(&arrival.tenant, &arrival.table).expect("ingest").status, 202);
    }
    assert!(client.wait_idle(IDLE_TIMEOUT).expect("stats"));
    let tenants: Vec<&str> = trace.tenants();
    let before = capture_views(&client, &tenants);
    server.shutdown();

    let server = LakeServer::start_durable(policy, durability).expect("server restarts");
    let client = ServeClient::new(server.addr());
    wait_applied(&client, trace.arrivals.len() as u64);
    let after = capture_views(&client, &tenants);
    for ((tenant, view, before), (_, _, after)) in before.iter().zip(&after) {
        assert_eq!(before, after, "tenant {tenant} view {view} diverged under batched fsync");
    }
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
