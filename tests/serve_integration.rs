//! End-to-end tests of the `lake-serve` wire protocol over a loopback
//! socket, covering every documented route (`docs/PROTOCOL.md`):
//!
//! * sharded ingest-then-query equals a direct [`IntegrationSession`]
//!   replay **byte-for-byte**, for all three query views;
//! * concurrent readers during a slow ingest see only the prior snapshot
//!   (and are not blocked by the in-flight integration);
//! * a full admission queue returns `429` with `Retry-After`;
//! * malformed requests return `400` without killing the worker.

use std::time::{Duration, Instant};

use datalake_fuzzy_fd::benchdata::append::{generate_append_workload, AppendWorkloadConfig};
use datalake_fuzzy_fd::benchdata::serving::{generate_serving_trace, ServingTraceConfig};
use datalake_fuzzy_fd::core::IntegrationSession;
use datalake_fuzzy_fd::serve::{
    route_group, wire, LakeServer, QueryTarget, QueryView, ServeClient, ServePolicy, ShardSnapshot,
};
use datalake_fuzzy_fd::table::Table;

const IDLE_TIMEOUT: Duration = Duration::from_secs(120);

fn small_trace() -> ServingTraceConfig {
    ServingTraceConfig { tenants: 3, tables_per_tenant: 3, entities: 25, seed: 0xBEEF }
}

/// Tables that take long enough to integrate that the writer is observably
/// busy while the test queries and floods the admission queue.
fn slow_tables(count: usize) -> Vec<Table> {
    let workload = generate_append_workload(AppendWorkloadConfig {
        entities: 300,
        initial_tables: 1,
        appended_tables: count.saturating_sub(1),
        seed: 0xD0_5E,
        ..AppendWorkloadConfig::default()
    });
    workload.all_tables()
}

/// Replays `tables` through a direct session exactly as a shard writer
/// does: begin empty, one `add_table` per arrival.
fn replay_snapshot(policy: &ServePolicy, tables: &[&Table]) -> ShardSnapshot {
    let mut session = IntegrationSession::begin(policy.integration, &[]).expect("config validates");
    for table in tables {
        session.add_table(table).expect("replay append");
    }
    ShardSnapshot::from_session(tables.len() as u64, &session)
}

#[test]
fn sharded_queries_match_direct_integration_byte_for_byte() {
    let policy = ServePolicy { shards: 2, ..ServePolicy::default() };
    let server = LakeServer::start(policy).expect("server starts");
    let client = ServeClient::new(server.addr());
    let trace = generate_serving_trace(small_trace());

    for arrival in &trace.arrivals {
        let ack = client.ingest(&arrival.tenant, &arrival.table).expect("ingest");
        assert_eq!(ack.status, 202, "unexpected ack: {}", ack.body);
        let ack_json = ack.json().expect("ack is JSON");
        assert_eq!(
            ack_json.get("shard").and_then(serde_json::Value::as_u64),
            Some(route_group(&arrival.tenant, policy.shards) as u64),
            "server must route by the documented group hash"
        );
    }
    assert!(client.wait_idle(IDLE_TIMEOUT).expect("stats"), "queues did not drain");

    for shard in 0..policy.shards {
        let routed: Vec<&Table> = trace
            .arrivals
            .iter()
            .filter(|a| route_group(&a.tenant, policy.shards) == shard)
            .map(|a| &a.table)
            .collect();
        let expected = replay_snapshot(&policy, &routed);
        for view in [QueryView::Table, QueryView::Report, QueryView::Provenance] {
            let reply = client.query(QueryTarget::Shard(shard), view.name()).expect("query");
            assert_eq!(reply.status, 200, "query failed: {}", reply.body);
            let direct = wire::query_body(view, shard, &expected);
            assert_eq!(
                reply.body,
                direct,
                "shard {shard} view {} diverges from direct integration",
                view.name()
            );
        }
    }

    // Querying by group must resolve to the same shard (and bytes) as
    // querying the shard index directly.
    for tenant in trace.tenants() {
        let shard = route_group(tenant, policy.shards);
        let by_group = client.query(QueryTarget::Group(tenant), "table").expect("query");
        let by_shard = client.query(QueryTarget::Shard(shard), "table").expect("query");
        assert_eq!(by_group.body, by_shard.body);
    }
    server.shutdown();
}

#[test]
fn concurrent_readers_see_only_the_prior_snapshot() {
    let policy = ServePolicy { shards: 1, queue_depth: 16, ..ServePolicy::default() };
    let server = LakeServer::start(policy).expect("server starts");
    let client = ServeClient::new(server.addr());
    let tables = slow_tables(3);

    for table in &tables {
        let ack = client.ingest("heavy", table).expect("ingest");
        assert_eq!(ack.status, 202, "unexpected ack: {}", ack.body);
    }

    // While the writer grinds through the queue, queries must return
    // immediately with a *previous* snapshot.  Each observed version v is
    // verified byte-for-byte against a direct replay of the first v
    // arrivals — whatever instant the query caught, the snapshot it saw is
    // a consistent prior state, never a torn or blocking read.
    let mut observed = Vec::new();
    loop {
        let started = Instant::now();
        let reply = client.query(QueryTarget::Group("heavy"), "table").expect("query");
        let elapsed = started.elapsed();
        assert_eq!(reply.status, 200);
        assert!(
            elapsed < Duration::from_secs(5),
            "snapshot read took {elapsed:?} — readers must not wait on the writer"
        );
        let version = reply
            .json()
            .expect("query body is JSON")
            .get("version")
            .and_then(serde_json::Value::as_u64)
            .expect("query body carries a version");
        observed.push((version, reply.body));
        if version == tables.len() as u64 {
            break;
        }
    }
    // The loop necessarily caught at least one pre-final snapshot: three
    // multi-hundred-ms integrations cannot all complete inside the first
    // millisecond-scale query round-trip.
    assert!(
        observed.first().expect("at least one query ran").0 < tables.len() as u64,
        "every query saw the final snapshot — the reads were blocked on the writer"
    );
    for (version, body) in &observed {
        let routed: Vec<&Table> = tables.iter().take(*version as usize).collect();
        let expected = wire::query_body(QueryView::Table, 0, &replay_snapshot(&policy, &routed));
        assert_eq!(body, &expected, "snapshot at version {version} is not a prior state");
    }
    assert!(client.wait_idle(IDLE_TIMEOUT).expect("stats"));
    server.shutdown();
}

#[test]
fn full_admission_queue_returns_429_with_retry_after() {
    let policy =
        ServePolicy { shards: 1, queue_depth: 1, retry_after_secs: 2, ..ServePolicy::default() };
    let server = LakeServer::start(policy).expect("server starts");
    let client = ServeClient::new(server.addr());
    let tables = slow_tables(4);

    let mut accepted = 0;
    let mut rejected = 0;
    for table in &tables {
        let reply = client.ingest("burst", table).expect("ingest");
        match reply.status {
            202 => accepted += 1,
            429 => {
                rejected += 1;
                assert_eq!(reply.retry_after, Some(2), "429 must carry Retry-After");
                let body = reply.json().expect("429 body is JSON");
                assert_eq!(
                    body.get("error").and_then(serde_json::Value::as_str),
                    Some("shard queue full")
                );
                assert_eq!(
                    body.get("retry_after_secs").and_then(serde_json::Value::as_u64),
                    Some(2)
                );
            }
            other => panic!("unexpected ingest status {other}: {}", reply.body),
        }
    }
    // The writer needs hundreds of milliseconds per table while the whole
    // burst arrives within a few; a depth-1 queue cannot absorb all four.
    assert!(accepted >= 1, "the first table must be admitted");
    assert!(rejected >= 1, "a depth-1 queue must reject part of the burst");

    assert!(client.wait_idle(IDLE_TIMEOUT).expect("stats"));
    let stats = client.stats().expect("stats").json().expect("stats JSON");
    let shard = &stats.get("shards").and_then(serde_json::Value::as_array).expect("shards")[0];
    assert_eq!(shard.get("rejected").and_then(serde_json::Value::as_u64), Some(rejected as u64));
    assert_eq!(
        shard.get("applied").and_then(serde_json::Value::as_u64),
        Some(accepted as u64),
        "every acknowledged ingest must be applied after drain"
    );
    // Rejected tables can be retried after the queue drains.
    assert_eq!(client.ingest("burst", tables.last().unwrap()).expect("retry").status, 202);
    assert!(client.wait_idle(IDLE_TIMEOUT).expect("stats"));
    server.shutdown();
}

#[test]
fn malformed_requests_return_4xx_without_killing_the_worker() {
    // One reader thread: if any malformed request killed it, every
    // follow-up request would hang or fail.
    let policy = ServePolicy { shards: 1, readers: 1, ..ServePolicy::default() };
    let server = LakeServer::start(policy).expect("server starts");
    let client = ServeClient::new(server.addr());

    let cases: Vec<(u16, datalake_fuzzy_fd::serve::Reply)> = vec![
        // Bad JSON body.
        (400, raw_request(&client, "POST", "/ingest", Some("{not json"))),
        // Valid JSON, invalid ingest shape.
        (400, raw_request(&client, "POST", "/ingest", Some("{\"group\":\"g\"}"))),
        // Arity mismatch inside rows.
        (
            400,
            raw_request(
                &client,
                "POST",
                "/ingest",
                Some(r#"{"group":"g","table":{"name":"T","columns":["a"],"rows":[[1,2]]}}"#),
            ),
        ),
        // Unknown view / missing target / bad shard index.
        (400, raw_request(&client, "GET", "/query?shard=0&view=nope", None)),
        (400, raw_request(&client, "GET", "/query", None)),
        (400, raw_request(&client, "GET", "/query?shard=99&view=table", None)),
        // Unknown route and wrong method.
        (404, raw_request(&client, "GET", "/nope", None)),
        (405, raw_request(&client, "POST", "/health", None)),
        (405, raw_request(&client, "GET", "/ingest", None)),
    ];
    for (expected, reply) in cases {
        assert_eq!(reply.status, expected, "body: {}", reply.body);
        assert!(
            reply.json().expect("error body is JSON").get("error").is_some(),
            "error bodies carry an `error` field: {}",
            reply.body
        );
        // The worker survived: the next request on a fresh connection works.
        let health = client.health().expect("health after error");
        assert_eq!(health.status, 200);
    }

    // Raw garbage that is not even an HTTP request line.
    {
        use std::io::{Read, Write};
        let mut stream = std::net::TcpStream::connect(server.addr()).expect("connect");
        stream.write_all(b"\x00\x01garbage\r\n\r\n").expect("write");
        let mut out = String::new();
        let _ = stream.read_to_string(&mut out);
        assert!(out.starts_with("HTTP/1.1 400"), "got: {out:?}");
    }
    assert_eq!(client.health().expect("health").status, 200);

    // /health and /stats body shapes (the remaining documented routes).
    let health = client.health().expect("health").json().expect("health JSON");
    assert_eq!(health.get("status").and_then(serde_json::Value::as_str), Some("ok"));
    assert_eq!(health.get("shards").and_then(serde_json::Value::as_u64), Some(1));
    let stats = client.stats().expect("stats").json().expect("stats JSON");
    for field in ["policy", "shards", "totals"] {
        assert!(stats.get(field).is_some(), "stats body misses `{field}`");
    }
    server.shutdown();
}

#[test]
fn plus_signs_and_duplicate_content_lengths_over_a_raw_socket() {
    let policy = ServePolicy { shards: 4, readers: 1, ..ServePolicy::default() };
    let server = LakeServer::start(policy).expect("server starts");
    let addr = server.addr();

    // RFC 3986: `+` is a literal in paths.  An unknown route containing a
    // plus parses cleanly and 404s — it is not a 400 and not `/c  /docs`.
    let reply = raw_socket(addr, b"GET /c++/docs HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
    assert!(reply.starts_with("HTTP/1.1 404"), "got: {reply}");

    // In the query string `+` *is* a space, so a group literally named
    // "a+b" must travel as `a%2Bb`; a raw `a+b` resolves group "a b".
    // The `shard` field of the query body exposes which group routed.
    let plus = raw_socket(
        addr,
        b"GET /query?group=a%2Bb&view=report HTTP/1.1\r\nContent-Length: 0\r\n\r\n",
    );
    let space =
        raw_socket(addr, b"GET /query?group=a+b&view=report HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
    assert_eq!(shard_of(&plus), route_group("a+b", 4), "a%2Bb routes the group `a+b`");
    assert_eq!(shard_of(&space), route_group("a b", 4), "a+b routes the group `a b`");

    // A table ingested under the group "a+b" (the JSON body needs no
    // escaping) is visible when queried with `a%2Bb`.
    let body = r#"{"group":"a+b","table":{"name":"PlusT","columns":["c"],"rows":[["v"]]}}"#;
    let ack = raw_socket(
        addr,
        format!("POST /ingest HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}", body.len()).as_bytes(),
    );
    assert!(ack.starts_with("HTTP/1.1 202"), "got: {ack}");
    let client = ServeClient::new(addr);
    assert!(client.wait_idle(IDLE_TIMEOUT).expect("stats"));
    let view = raw_socket(
        addr,
        b"GET /query?group=a%2Bb&view=table HTTP/1.1\r\nContent-Length: 0\r\n\r\n",
    );
    assert!(view.contains("PlusT"), "got: {view}");

    // Conflicting duplicate Content-Length headers: 400, not first-wins.
    let reply = raw_socket(
        addr,
        b"POST /ingest HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 5\r\n\r\nabcde",
    );
    assert!(reply.starts_with("HTTP/1.1 400"), "got: {reply}");
    assert!(reply.contains("content-length"), "got: {reply}");

    // Identical duplicates are tolerated.
    let reply =
        raw_socket(addr, b"GET /health HTTP/1.1\r\nContent-Length: 0\r\nContent-Length: 0\r\n\r\n");
    assert!(reply.starts_with("HTTP/1.1 200"), "got: {reply}");

    // The reader survived the whole sweep.
    assert_eq!(client.health().expect("health").status, 200);
    server.shutdown();
}

/// Sends raw bytes over a fresh socket and returns the full response text.
fn raw_socket(addr: std::net::SocketAddr, request: &[u8]) -> String {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    stream.write_all(request).expect("write request");
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("read response");
    out
}

/// Extracts the `shard` field from a raw `/query` response.
fn shard_of(response: &str) -> usize {
    let body = response.split("\r\n\r\n").nth(1).expect("response has a body");
    let doc: serde_json::Value = serde_json::from_str(body).expect("JSON body");
    doc.get("shard").and_then(serde_json::Value::as_u64).expect("shard field") as usize
}

/// Issues a request with an arbitrary method/target through the client's
/// transport (the typed helpers only cover well-formed calls).
fn raw_request(
    client: &ServeClient,
    method: &str,
    target: &str,
    body: Option<&str>,
) -> datalake_fuzzy_fd::serve::Reply {
    client.raw(method, target, body).expect("raw request")
}

/// Regression: a poisoned shard must degrade, not panic the reader pool.
///
/// Before the panic-path triage, a thread that panicked while holding a
/// shard's queue lock left every later request to that shard hitting
/// `.lock().expect(..)` inside a reader thread: the reader died, the
/// connection closed with *no response bytes*, and the pool shrank by one
/// reader per request.  Now ingest answers `500` on the wire
/// (`IngestReject::Poisoned` — no durability promise from a wounded
/// shard), while reads recover the plain-data locks and keep serving.
#[test]
fn poisoned_shard_returns_500_on_the_wire_and_readers_survive() {
    let policy = ServePolicy { shards: 1, ..ServePolicy::default() };
    let server = LakeServer::start(policy).expect("server starts");
    let client = ServeClient::new(server.addr());

    // A healthy ingest first, so the snapshot has real content to keep
    // serving after the shard is wounded.
    let trace = generate_serving_trace(small_trace());
    let arrival = &trace.arrivals[0];
    assert_eq!(client.ingest(&arrival.tenant, &arrival.table).expect("ingest").status, 202);
    assert!(client.wait_idle(IDLE_TIMEOUT).expect("stats"), "queue did not drain");

    server.poison_shard_for_test(0);

    // The wounded shard refuses ingest with a real HTTP response — over a
    // raw socket, so a panicked-and-dropped connection (the old failure
    // mode: zero response bytes) cannot masquerade as a pass.
    let body = wire::ingest_body(&arrival.tenant, &arrival.table);
    let request = format!(
        "POST /ingest HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    let response = raw_socket(server.addr(), request.as_bytes());
    assert!(response.starts_with("HTTP/1.1 500"), "expected a 500 status line, got: {response:?}");
    assert!(response.contains("poisoned"), "the body should say why: {response:?}");

    // The reader pool survived: health, stats and queries still serve
    // (each on a fresh connection — readers handle one request per
    // connection, so these would hang or reset if readers had died).
    for _ in 0..3 {
        assert_eq!(client.health().expect("health").status, 200);
    }
    let reply = client.query(QueryTarget::Shard(0), "table").expect("query");
    assert_eq!(reply.status, 200, "reads must keep serving: {}", reply.body);
    assert_eq!(client.stats().expect("stats").status, 200);

    server.shutdown();
}
