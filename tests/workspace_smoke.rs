//! Workspace smoke test: the umbrella crate's re-exports resolve, and the
//! `src/lib.rs` quickstart runs end to end.  This is the cheapest signal that
//! the workspace wiring (all thirteen crates plus the facade) is intact, so
//! it is deliberately free of any fixtures or generators.

use datalake_fuzzy_fd::core::{FuzzyFdConfig, FuzzyFullDisjunction};
use datalake_fuzzy_fd::table::TableBuilder;

/// Every facade module path must resolve to its crate.  Referencing one item
/// per re-export makes a missing workspace dependency a compile error here
/// rather than a latent hole for downstream users.
#[test]
fn facade_reexports_resolve() {
    let _core: fn(FuzzyFdConfig) -> FuzzyFullDisjunction = FuzzyFullDisjunction::new;
    let _table = datalake_fuzzy_fd::table::Value::Null;
    let _text = datalake_fuzzy_fd::text::normalize("X");
    let _embed = datalake_fuzzy_fd::embed::EmbeddingModel::Mistral;
    let _assign = datalake_fuzzy_fd::assign::CostMatrix::from_rows(vec![vec![0.0]]);
    let _schema_match: fn(
        &[datalake_fuzzy_fd::table::Table],
    ) -> datalake_fuzzy_fd::schema_match::Alignment =
        datalake_fuzzy_fd::schema_match::align_by_headers;
    let _fd = datalake_fuzzy_fd::fd::FdOptions::default();
    let _em = datalake_fuzzy_fd::em::EmOptions::default();
    let _benchdata = datalake_fuzzy_fd::benchdata::AutoJoinConfig::default();
    let _metrics = datalake_fuzzy_fd::metrics::PairSet::<u32>::default();
    let _runtime = datalake_fuzzy_fd::runtime::ParallelPolicy::default();
    let _serve = datalake_fuzzy_fd::serve::ServePolicy::default();
}

/// The quickstart from the crate-level docs, as a plain test: two noisy city
/// tables integrate into one row per real-world city.
#[test]
fn quickstart_integrates_by_headers() {
    let cases = TableBuilder::new("cases", ["City", "Total Cases"])
        .row(["Berlin", "1.4M"])
        .row(["barcelona", "2.68M"])
        .build()
        .unwrap();
    let rates = TableBuilder::new("rates", ["City", "Vaccination Rate"])
        .row(["Berlinn", "63%"])
        .row(["Barcelona", "82%"])
        .build()
        .unwrap();

    let fuzzy = FuzzyFullDisjunction::new(FuzzyFdConfig::default());
    let outcome = fuzzy.integrate_by_headers(&[cases, rates]).unwrap();
    assert_eq!(outcome.table.len(), 2, "Berlin and Barcelona should fully merge");
}
