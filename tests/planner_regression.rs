//! Planner fast-path regression harness: deterministic counter invariants
//! plus a lint-enforced ban on String band keys in the planning hot path.
//!
//! PR "escalation-planner fast path" replaced per-vector `Vec<String>` band
//! keys with packed `u64` keys, the triplicated sort+dedup pair
//! canonicalization with one radix helper, and the dense per-block cost
//! matrix with a sparse solve — all bit-identical by construction (see
//! `tests/blocking_equivalence.rs` for the equivalence side).  This file
//! pins the *structural* properties those changes rely on, so a later edit
//! that quietly reintroduces allocation churn or breaks an attribution
//! invariant fails fast with a named assertion instead of a silent
//! benchmark regression.

use std::collections::BTreeSet;
use std::time::Duration;

use datalake_fuzzy_fd::benchdata::{generate_escalation_fold, EscalationFoldConfig};
use datalake_fuzzy_fd::core::{
    canonicalize_pairs, canonicalize_pairs_with_costs, match_column_values_with_stats,
    BlockingPolicy, EscalationPolicy, FuzzyFdConfig, KeyedBlockingConfig,
};
use datalake_fuzzy_fd::table::Value;

/// Canonicalization never grows a pair list, always sorts it, and keeps the
/// costs aligned with the surviving pairs — on shapes that take the radix
/// path and shapes that take the comparison fallback.
#[test]
fn pair_canonicalization_shrinks_sorts_and_keeps_costs_aligned() {
    type Case = (Vec<(usize, usize)>, usize, usize);
    let cases: Vec<Case> = vec![
        (vec![], 0, 0),
        (vec![(3, 1), (0, 2), (3, 1), (0, 2), (1, 0)], 4, 3),
        // Sparse ids against a huge key space force the comparison fallback.
        (vec![(900_000, 3), (2, 700_000), (2, 700_000), (900_000, 3)], 1_000_000, 1_000_000),
    ];
    for (input, rows, cols) in cases {
        let mut pairs = input.clone();
        canonicalize_pairs(&mut pairs, rows, cols);
        assert!(pairs.len() <= input.len(), "dedup output must not exceed input");
        assert!(pairs.windows(2).all(|w| w[0] < w[1]), "output must be strictly ascending");
        let unique: BTreeSet<(usize, usize)> = input.iter().copied().collect();
        assert_eq!(pairs, unique.into_iter().collect::<Vec<_>>());

        // The cost-carrying variant must keep each surviving pair's cost.
        let mut with_costs = input.clone();
        let mut costs: Vec<f32> = (0..input.len()).map(|i| i as f32).collect();
        let expected: Vec<(usize, usize)> = pairs.clone();
        canonicalize_pairs_with_costs(&mut with_costs, &mut costs, rows, cols);
        assert_eq!(with_costs, expected);
        assert_eq!(costs.len(), with_costs.len());
        for (pair, &cost) in with_costs.iter().zip(&costs) {
            // Duplicates carry equal planner costs in production; here costs
            // differ per occurrence, so "some occurrence's cost" is the
            // contract worth pinning.
            let occurrence = input.iter().position(|p| p == pair).expect("pair came from input");
            let occurrences: Vec<f32> = input
                .iter()
                .enumerate()
                .filter(|&(_, p)| p == pair)
                .map(|(i, _)| i as f32)
                .collect();
            assert!(
                occurrences.contains(&cost),
                "cost {cost} of {pair:?} is not one of its occurrences {occurrences:?} \
                 (first occurrence at {occurrence})"
            );
        }
    }
}

/// A forced-escalation fold must attribute its planning wall clock: the total
/// is non-zero and the named phases never sum past it (phases are disjoint
/// sub-intervals of the planning/solving wall).
#[test]
fn escalated_fold_phase_timings_are_attributed_and_bounded() {
    let fold = generate_escalation_fold(EscalationFoldConfig {
        entities: 400,
        ..EscalationFoldConfig::default()
    });
    let columns: Vec<Vec<Value>> = fold
        .columns
        .iter()
        .map(|col| col.iter().map(|s| Value::text(s.clone())).collect())
        .collect();
    // Blocking floor removed and escalation threshold zeroed: every fold
    // takes the escalated (ANN) planner, the path this PR made fast.
    let config = FuzzyFdConfig::with_blocking(BlockingPolicy::Keyed(KeyedBlockingConfig {
        min_blocked_pairs: 0,
        escalation: EscalationPolicy { min_fold_pairs: 0, ..EscalationPolicy::default() },
        ..KeyedBlockingConfig::default()
    }));
    let embedder = config.model.build();
    let (_, stats) = match_column_values_with_stats(&columns, embedder.as_ref(), config);
    assert!(stats.escalated_folds > 0, "the fold never escalated: {stats:?}");

    let phase = &stats.phase;
    assert!(phase.total > Duration::ZERO, "planning happened but total is zero: {phase:?}");
    assert!(phase.phase_sum() <= phase.total, "phases sum past the measured total: {phase:?}");
    assert!(phase.hash > Duration::ZERO, "hashing ran but was not attributed: {phase:?}");
    assert!(
        phase.assign > Duration::ZERO,
        "blocks were solved but assign was not attributed: {phase:?}"
    );
}

/// Lint ban: the planner hot path must never build String band keys.  The
/// packed-u64 representation (`packed_band_key`) exists precisely so the
/// per-vector `Vec<String>` churn cannot come back; `SimHasher::band_keys`
/// stays available for diagnostics and doctests, but the planning files may
/// not call it, nor format the `sh{band}:{bucket}` key shape themselves.
///
/// Formerly a grep loop in this file; now a thin wrapper over `lake-lint`'s
/// `string-band-keys` rule (token-level, so comments cannot false-positive
/// and unreadable sources hard-error instead of skipping).  The hot-path
/// file list lives with the rule; see `docs/LINTS.md`.
#[test]
fn no_string_band_keys_in_the_planner_hot_path() {
    let report = lake_lint::Engine::new(env!("CARGO_MANIFEST_DIR"))
        .run_rule("string-band-keys")
        .expect("the workspace walk must succeed (unreadable sources are a failure, not a skip)");
    assert!(
        report.diagnostics.is_empty(),
        "String band keys reintroduced on the planner hot path — use \
         packed_band_key / signature shifts instead:\n{}",
        report.diagnostics.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
}
