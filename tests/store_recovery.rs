//! Deterministic fault-point recovery tests for `lake-store`.
//!
//! The SIGKILL harness (`crates/store/tests/crash_kill.rs`) kills a real
//! writer at arbitrary moments; these tests instead *fabricate* the exact
//! on-disk state each named fault point leaves behind — a torn tail
//! record, a crash mid-checkpoint (before and after the manifest rename),
//! an acknowledged-but-never-applied tail — plus the store edge cases
//! (zero-length log, torn-only log, widened-schema restore, a buffer pool
//! smaller than the segment count), and assert recovery always equals a
//! clean uninterrupted replay.

use std::path::{Path, PathBuf};

use datalake_fuzzy_fd::core::{FuzzyFdConfig, IncrementalPolicy, IntegrationSession};
use datalake_fuzzy_fd::store::{
    restore_session, snapshot_session, DurableOp, LakeStore, StorePolicy,
};
use datalake_fuzzy_fd::table::{Table, TableBuilder};

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("store-recovery-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Deterministic workload table `i`: schema width varies with `i`, so the
/// integrated schema keeps widening as the sequence grows.
fn workload_table(i: u64) -> Table {
    let extra = format!("attr{}", i % 5);
    let mut builder =
        TableBuilder::new(format!("t{i}"), ["Entity".to_string(), extra, format!("wide{}", i % 3)]);
    for row in 0..4 {
        builder = builder.row([
            format!("entity-{}", (i + row) % 9),
            format!("v{i}-{row}"),
            format!("w{}", (i * 7 + row) % 13),
        ]);
    }
    builder.build().expect("workload table builds")
}

fn append_workload(store: &mut LakeStore, from: u64, upto: u64) {
    for i in from..upto {
        let seq = store.append("fault", &workload_table(i), true).expect("append");
        assert_eq!(seq, i);
    }
}

/// A clean, never-crashed session over the first `n` workload tables.
fn clean_session(n: u64) -> IntegrationSession {
    let mut session = IntegrationSession::begin(FuzzyFdConfig::default(), &[]).unwrap();
    for i in 0..n {
        session.add_table(&workload_table(i)).unwrap();
    }
    session
}

/// Opens the store at `dir` and asserts it recovers exactly the first `n`
/// workload records, byte-identically, and that the restored session
/// equals a clean replay (caches and counters included).
fn assert_recovers_prefix(dir: &Path, policy: StorePolicy, n: u64) -> LakeStore {
    let store = LakeStore::open(dir, policy).unwrap();
    let records = store.recovered();
    assert_eq!(records.len() as u64, n, "recovered record count");
    for (i, record) in records.iter().enumerate() {
        assert_eq!(record.seq, i as u64);
        match &record.op {
            DurableOp::Append { group, new_batch, table } => {
                assert_eq!(group, "fault");
                assert!(*new_batch);
                assert_eq!(table, &workload_table(i as u64), "payload of seq {i}");
            }
            DurableOp::EmptyBatch => panic!("workload never logs empty batches"),
        }
    }
    let restored =
        restore_session(&store, FuzzyFdConfig::default(), IncrementalPolicy::default()).unwrap();
    let clean = clean_session(n);
    assert_eq!(restored.current().table, clean.current().table);
    assert_eq!(restored.current().value_groups, clean.current().value_groups);
    assert_eq!(restored.current().incremental, clean.current().incremental);
    assert_eq!(restored.tables(), clean.tables());
    assert_eq!(restored.embedding_stats(), clean.embedding_stats());
    assert_eq!(restored.fd_cache_stats(), clean.fd_cache_stats());
    store
}

#[test]
fn fault_torn_tail_record_is_dropped_and_the_prefix_replays_cleanly() {
    let dir = test_dir("torn-tail");
    let mut store = LakeStore::open(&dir, StorePolicy::default()).unwrap();
    append_workload(&mut store, 0, 5);
    drop(store);

    // The crash tore the in-flight 6th record: leave half a frame behind.
    let wal = dir.join("wal");
    let mut bytes = std::fs::read(&wal).unwrap();
    let torn = [12u8, 0, 0, 0, 0xDE, 0xAD, 0xBE, 0xEF, 1, 2, 3]; // length 12, 3 payload bytes
    bytes.extend_from_slice(&torn);
    std::fs::write(&wal, &bytes).unwrap();

    let store = assert_recovers_prefix(&dir, StorePolicy::default(), 5);
    assert_eq!(store.status().recovery.torn_bytes, torn.len() as u64);
    // The tear was truncated at open: appends continue from seq 5.
    assert_eq!(store.next_seq(), 5);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fault_crash_mid_checkpoint_leaves_a_manifest_tmp_that_is_ignored() {
    let dir = test_dir("mid-checkpoint");
    let mut store = LakeStore::open(&dir, StorePolicy::default()).unwrap();
    append_workload(&mut store, 0, 4);
    drop(store);

    // The crash landed inside `checkpoint`, after writing the temporary
    // manifest but before the atomic rename: the tmp file is garbage from
    // the reader's perspective and must be discarded, not read.
    std::fs::write(dir.join("manifest.tmp"), b"half-written manifest bytes").unwrap();

    assert_recovers_prefix(&dir, StorePolicy::default(), 4);
    assert!(!dir.join("manifest.tmp").exists(), "open removes the orphaned tmp manifest");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fault_crash_between_manifest_rename_and_log_compaction_deduplicates() {
    let dir = test_dir("post-rename");
    let mut store = LakeStore::open(&dir, StorePolicy::default()).unwrap();
    append_workload(&mut store, 0, 4);
    store.flush().unwrap();

    // Save the pre-checkpoint log, checkpoint (manifest renamed + log
    // compacted), then put the stale log back: exactly the state a crash
    // after the rename but before the compaction rewrite leaves behind —
    // every checkpointed record present in *both* manifest and log.
    let wal = dir.join("wal");
    let stale_log = std::fs::read(&wal).unwrap();
    store.checkpoint(3).unwrap();
    drop(store);
    std::fs::write(&wal, &stale_log).unwrap();

    let store = assert_recovers_prefix(&dir, StorePolicy::default(), 4);
    assert_eq!(store.status().recovery.manifest_records, 4);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fault_acknowledged_but_never_applied_records_recover() {
    // The post-ack/pre-apply fault point: the writer logged (and fsynced)
    // records, acked them, and died before any session ever applied them.
    // Recovery must surface all of them — an ack is a durability promise.
    let dir = test_dir("post-ack");
    let mut store = LakeStore::open(&dir, StorePolicy::default()).unwrap();
    append_workload(&mut store, 0, 3);
    drop(store); // no checkpoint, no session, no clean shutdown

    assert_recovers_prefix(&dir, StorePolicy::default(), 3);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn edge_zero_length_log_opens_empty_and_appends() {
    let dir = test_dir("zero-wal");
    std::fs::write(dir.join("wal"), b"").unwrap();
    let mut store = LakeStore::open(&dir, StorePolicy::default()).unwrap();
    assert!(store.recovered().is_empty());
    assert_eq!(store.next_seq(), 0);
    append_workload(&mut store, 0, 2);
    drop(store);
    assert_recovers_prefix(&dir, StorePolicy::default(), 2);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn edge_log_holding_only_a_torn_tail_recovers_to_empty() {
    let dir = test_dir("torn-only");
    std::fs::write(dir.join("wal"), [200u8, 0, 0, 0, 9, 9]).unwrap(); // claims 200 bytes, has 2
    let mut store = LakeStore::open(&dir, StorePolicy::default()).unwrap();
    assert!(store.recovered().is_empty());
    assert_eq!(store.status().recovery.torn_bytes, 6);
    // The tear is gone; the store is a working empty store.
    append_workload(&mut store, 0, 1);
    drop(store);
    assert_recovers_prefix(&dir, StorePolicy::default(), 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn edge_snapshot_restores_onto_a_widened_schema() {
    // Later tables introduce columns the earlier ones lack; the restored
    // session must reproduce the widened integrated schema exactly.
    let narrow = TableBuilder::new("narrow", ["City"]).row(["Berlin"]).build().unwrap();
    let wide = TableBuilder::new("wide", ["City", "Cases", "Rate"])
        .row(["Berlin", "1.4M", "63%"])
        .row(["Boston", "263K", "62%"])
        .build()
        .unwrap();
    let wider = TableBuilder::new("wider", ["City", "Deaths", "Beds", "Region"])
        .row(["berlin", "147", "900", "EU"])
        .build()
        .unwrap();

    let mut session = IntegrationSession::begin(FuzzyFdConfig::default(), &[narrow]).unwrap();
    session.add_table(&wide).unwrap();
    session.add_table(&wider).unwrap();
    let widened_columns = session.current().table.columns().len();
    assert!(widened_columns > 1, "workload must actually widen the schema");

    let dir = test_dir("widened");
    let mut store = LakeStore::open(&dir, StorePolicy::default()).unwrap();
    snapshot_session(&mut store, &session).unwrap();
    drop(store);

    let store = LakeStore::open(&dir, StorePolicy::default()).unwrap();
    let restored =
        restore_session(&store, FuzzyFdConfig::default(), IncrementalPolicy::default()).unwrap();
    assert_eq!(restored.current().table.columns().len(), widened_columns);
    assert_eq!(restored.current().table, session.current().table);
    assert_eq!(restored.batch_sizes(), session.batch_sizes());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn edge_recovery_pages_cleanly_with_a_pool_smaller_than_the_segments() {
    // Checkpoint ten multi-block tables, then recover through a one-page
    // buffer pool: every segment read evicts, and the recovered bytes are
    // still exact.
    let tiny_pool = StorePolicy { buffer_pages: 1, ..StorePolicy::default() };
    let dir = test_dir("tiny-pool");
    let mut store = LakeStore::open(&dir, tiny_pool).unwrap();
    append_workload(&mut store, 0, 10);
    store.flush().unwrap();
    store.checkpoint(9).unwrap();
    drop(store);

    let store = assert_recovers_prefix(&dir, tiny_pool, 10);
    let status = store.status();
    assert_eq!(status.recovery.manifest_records, 10);
    assert!(
        status.pool.evictions > 0,
        "a one-page pool over ten segments must evict (stats: {status:?})"
    );
    std::fs::remove_dir_all(&dir).ok();
}
