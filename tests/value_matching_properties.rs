//! Property-based tests for the Fuzzy Value Match component (Definition 2):
//! the produced groups must be a *disjoint partition* of the distinct input
//! values, contain at most one value per column, and pick a representative
//! from among their members.

use datalake_fuzzy_fd::core::{match_column_values, FuzzyFdConfig};
use datalake_fuzzy_fd::embed::EmbeddingModel;
use datalake_fuzzy_fd::table::Value;
use proptest::prelude::*;
use std::collections::HashSet;

/// Strategy: 2–3 columns of short lowercase strings (with occasional shared
/// values across columns and occasional near-duplicates).
fn columns_strategy() -> impl Strategy<Value = Vec<Vec<String>>> {
    let word = prop::sample::select(vec![
        "berlin",
        "berlinn",
        "toronto",
        "boston",
        "barcelona",
        "canada",
        "ca",
        "germany",
        "de",
        "spain",
        "es",
        "delhi",
        "austin",
        "dallas",
        "miami",
        "lagos",
        "quito",
        "lima",
    ]);
    let column = prop::collection::hash_set(word, 0..8)
        .prop_map(|set| set.into_iter().map(String::from).collect::<Vec<String>>());
    prop::collection::vec(column, 2..=3)
}

fn run_matcher(columns: &[Vec<String>], theta: f32) -> Vec<datalake_fuzzy_fd::core::ValueGroup> {
    let value_columns: Vec<Vec<Value>> =
        columns.iter().map(|col| col.iter().map(|s| Value::text(s.clone())).collect()).collect();
    let embedder = EmbeddingModel::Mistral.build();
    let config = FuzzyFdConfig { theta, ..FuzzyFdConfig::default() };
    match_column_values(&value_columns, embedder.as_ref(), config)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Every distinct (column, value) occurrence appears in exactly one group.
    #[test]
    fn groups_partition_the_input(columns in columns_strategy(), theta in 0.0f32..0.95) {
        let groups = run_matcher(&columns, theta);

        let mut seen: HashSet<(usize, String)> = HashSet::new();
        for group in &groups {
            for (position, value) in &group.members {
                let key = (*position, value.render().to_string());
                prop_assert!(seen.insert(key.clone()), "duplicate membership for {key:?}");
            }
        }
        let expected: HashSet<(usize, String)> = columns
            .iter()
            .enumerate()
            .flat_map(|(i, col)| col.iter().map(move |v| (i, v.clone())))
            .collect();
        prop_assert_eq!(seen, expected);
    }

    /// Clean-clean constraint: a group never contains two values from the
    /// same column, and its representative is one of its members.
    #[test]
    fn groups_respect_columns_and_representatives(columns in columns_strategy(), theta in 0.0f32..0.95) {
        let groups = run_matcher(&columns, theta);
        for group in &groups {
            let positions: Vec<usize> = group.members.iter().map(|(p, _)| *p).collect();
            let mut unique = positions.clone();
            unique.sort_unstable();
            unique.dedup();
            prop_assert_eq!(positions.len(), unique.len(), "two values from one column in a group");
            prop_assert!(
                group.members.iter().any(|(_, v)| v == &group.representative),
                "representative {:?} is not a member",
                group.representative
            );
        }
    }

    /// With θ = 0 fuzzy matching is disabled and the groups are exactly the
    /// distinct value strings (grouped across columns by string equality).
    #[test]
    fn zero_threshold_reduces_to_exact_grouping(columns in columns_strategy()) {
        let groups = run_matcher(&columns, 0.0);
        let distinct: HashSet<&String> = columns.iter().flatten().collect();
        prop_assert_eq!(groups.len(), distinct.len());
        for group in &groups {
            for (_, value) in &group.members {
                prop_assert_eq!(value, &group.representative, "θ=0 group mixes distinct strings");
            }
        }
    }
}
