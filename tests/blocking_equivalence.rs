//! Equivalence and property harness for blocked candidate generation.
//!
//! The blocked value matcher must be a faithful optimisation: its cartesian
//! fallback has to reproduce the exhaustive path exactly, the keyed channels
//! must never match pairs that were not candidates (SimHash mode: sharing no
//! blocking key; exact mode: at or above the distance cutoff), and on the
//! Auto-Join benchmark set the pruned search space may not change the
//! produced groups.

use std::collections::BTreeSet;

use datalake_fuzzy_fd::core::{
    embedding_bucket_keys, hash_key, match_column_values, match_column_values_with_stats,
    plan_blocks, value_block_keys, BlockingPolicy, EscalationPolicy, FoldInputs, FuzzyFdConfig,
    KeyedBlockingConfig, SemanticBlocking, ValueGroup,
};
use datalake_fuzzy_fd::embed::{Embedder, EmbeddingModel};
use datalake_fuzzy_fd::table::Value;
use proptest::prelude::*;

fn to_value_columns(columns: &[Vec<String>]) -> Vec<Vec<Value>> {
    columns.iter().map(|col| col.iter().map(|s| Value::text(s.clone())).collect()).collect()
}

fn run(columns: &[Vec<String>], config: FuzzyFdConfig) -> Vec<ValueGroup> {
    let embedder = config.model.build();
    match_column_values(&to_value_columns(columns), embedder.as_ref(), config)
}

/// Strategy: 2–3 columns mixing exact duplicates, typo variants, acronyms and
/// unrelated values, so exact, fuzzy and unmatched paths are all exercised.
fn columns_strategy() -> impl Strategy<Value = Vec<Vec<String>>> {
    let word = prop::sample::select(vec![
        "berlin",
        "berlinn",
        "toronto",
        "torontoo",
        "boston",
        "barcelona",
        "barcelonna",
        "new delhi",
        "nd",
        "united nations",
        "un",
        "germany",
        "de",
        "canada",
        "ca",
        "quito",
        "lima",
        "lagos",
        "dallas",
        "austin",
    ]);
    let column = prop::collection::hash_set(word, 0..10)
        .prop_map(|set| set.into_iter().map(String::from).collect::<Vec<String>>());
    prop::collection::vec(column, 2..=3)
}

/// Forces keyed blocking (the default exact semantic channel) regardless of
/// problem size.
fn keyed_config(theta: f32, threads: usize) -> FuzzyFdConfig {
    FuzzyFdConfig { theta, matching_threads: threads, ..FuzzyFdConfig::default() }.force_blocking()
}

/// A keyed config on the SimHash semantic channel, floor removed.
fn simhash_config(theta: f32) -> FuzzyFdConfig {
    FuzzyFdConfig {
        theta,
        blocking: BlockingPolicy::Keyed(KeyedBlockingConfig {
            semantic: SemanticBlocking::simhash_default(),
            min_blocked_pairs: 0,
            ..KeyedBlockingConfig::default()
        }),
        ..FuzzyFdConfig::default()
    }
}

/// The full (hashed) blocking keys of one value the way the SimHash planner
/// derives them: surface keys plus the band-bucket keys of the value's own
/// embedding.
fn full_keys(value: &str, semantic: &SemanticBlocking, model: EmbeddingModel) -> BTreeSet<u64> {
    let embedder = model.build();
    let mut keys: BTreeSet<u64> = value_block_keys(value).iter().map(|k| hash_key(k)).collect();
    keys.extend(embedding_bucket_keys(semantic, &embedder.embed(value)));
    keys
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    /// The keyed policy's cartesian fallback (blocking floor never reached)
    /// is bit-identical to the exhaustive path.
    #[test]
    fn cartesian_fallback_equals_exhaustive(
        columns in columns_strategy(),
        theta in 0.0f32..0.95,
    ) {
        let exhaustive = run(
            &columns,
            FuzzyFdConfig { theta, ..FuzzyFdConfig::with_blocking(BlockingPolicy::Exhaustive) },
        );
        let fallback = run(
            &columns,
            FuzzyFdConfig {
                theta,
                blocking: BlockingPolicy::Keyed(KeyedBlockingConfig {
                    min_blocked_pairs: usize::MAX,
                    ..KeyedBlockingConfig::default()
                }),
                ..FuzzyFdConfig::default()
            },
        );
        prop_assert_eq!(exhaustive, fallback);
    }

    /// The default exact semantic channel never groups a value with others it
    /// is not close to: every member of a multi-member group is an exact
    /// duplicate of another member, or lies within the distance cutoff
    /// (θ + slack) of at least one other member — the witness being the group
    /// representative it was matched against, which stays a member forever.
    #[test]
    fn exact_mode_only_groups_sub_threshold_values(
        columns in columns_strategy(),
        theta in 0.0f32..0.95,
    ) {
        let config = keyed_config(theta, 1);
        let BlockingPolicy::Keyed(keyed) = config.blocking else { unreachable!() };
        let SemanticBlocking::ExactBelow { slack } = keyed.semantic else {
            panic!("default channel must be exact, got {:?}", keyed.semantic)
        };
        let cutoff = theta + slack;
        let embedder = config.model.build();
        let groups = run(&columns, config);
        for group in groups.iter().filter(|g| g.len() >= 2) {
            for (i, (_, value)) in group.members.iter().enumerate() {
                let rendered = value.render();
                if group.members.iter().enumerate().any(|(j, (_, other))| {
                    i != j && other.render() == rendered
                }) {
                    continue; // exact duplicate, joined by the exact pass
                }
                let own = embedder.embed(&rendered);
                let close = group.members.iter().enumerate().any(|(j, (_, other))| {
                    i != j && own.cosine_distance(&embedder.embed(&other.render())) < cutoff
                });
                prop_assert!(
                    close,
                    "{rendered:?} grouped at distance ≥ {cutoff}: {group:#?}"
                );
            }
        }
    }

    /// SimHash mode never groups a value with others it shares no blocking
    /// key with: every member of a multi-member group shares at least one key
    /// (surface or embedding bucket) with the union of the other members'
    /// keys, or is an exact duplicate of another member.
    #[test]
    fn simhash_mode_only_pairs_key_sharing_values(
        columns in columns_strategy(),
        theta in 0.0f32..0.95,
    ) {
        let config = simhash_config(theta);
        let BlockingPolicy::Keyed(keyed) = config.blocking else { unreachable!() };
        let groups = run(&columns, config);
        for group in groups.iter().filter(|g| g.len() >= 2) {
            for (i, (_, value)) in group.members.iter().enumerate() {
                let rendered = value.render();
                if group.members.iter().enumerate().any(|(j, (_, other))| {
                    i != j && other.render() == rendered
                }) {
                    continue; // exact duplicate, joined by the exact pass
                }
                let own = full_keys(&rendered, &keyed.semantic, config.model);
                let mut rest = BTreeSet::new();
                for (j, (_, other)) in group.members.iter().enumerate() {
                    if i != j {
                        rest.extend(full_keys(&other.render(), &keyed.semantic, config.model));
                    }
                }
                prop_assert!(
                    !own.is_disjoint(&rest),
                    "{rendered:?} grouped with values sharing none of its keys: {group:#?}"
                );
            }
        }
    }

    /// Block solving is deterministic in the worker-thread count.
    #[test]
    fn blocked_matching_is_thread_count_invariant(
        columns in columns_strategy(),
        theta in 0.0f32..0.95,
    ) {
        let sequential = run(&columns, keyed_config(theta, 1));
        for threads in [0usize, 3] {
            let parallel = run(&columns, keyed_config(theta, threads));
            prop_assert_eq!(&sequential, &parallel, "threads = {}", threads);
        }
    }
}

/// Acceptance: on the Auto-Join 150-value integration set, keyed blocking
/// prunes a substantial share of the candidate space without changing a
/// single group, sequentially and across worker threads.
#[test]
fn autojoin_150_set_blocked_equals_exhaustive() {
    use datalake_fuzzy_fd::benchdata::{generate_autojoin_benchmark, AutoJoinConfig};

    let config =
        AutoJoinConfig { num_sets: 1, values_per_column: 150, ..AutoJoinConfig::default() };
    let set = generate_autojoin_benchmark(config).remove(0);
    let columns = to_value_columns(&set.columns);
    let embedder = EmbeddingModel::Mistral.build();

    let (exhaustive, exhaustive_stats) = match_column_values_with_stats(
        &columns,
        embedder.as_ref(),
        FuzzyFdConfig::with_blocking(BlockingPolicy::Exhaustive),
    );
    assert_eq!(exhaustive_stats.pruned_pairs, 0);

    let (blocked, stats) = match_column_values_with_stats(
        &columns,
        embedder.as_ref(),
        FuzzyFdConfig::default().force_blocking(),
    );
    assert_eq!(blocked, exhaustive, "blocking changed the produced groups");
    assert!(stats.pruned_pairs > 0, "no pruning happened: {stats:?}");
    assert!(
        stats.candidate_pairs < exhaustive_stats.candidate_pairs,
        "blocked: {stats:?}, exhaustive: {exhaustive_stats:?}"
    );
    // The exact tier runs on the quantized kernel: every scored pair is
    // classified, the counters add up, and the exact f32 re-score band stays
    // a strict subset of the int8-classified pairs.
    assert_eq!(stats.kernel.classified(), stats.scored_pairs, "{stats:?}");
    assert_eq!(stats.kernel.int8_scored, stats.kernel.skipped + stats.kernel.rescored);
    assert!(stats.kernel.rescored < stats.kernel.int8_scored, "{stats:?}");
    assert!(stats.kernel.blocks > 0, "{stats:?}");
    // The exhaustive path never touches the kernel.
    assert_eq!(exhaustive_stats.kernel.classified(), 0, "{exhaustive_stats:?}");
    // On single-topic data the sub-cutoff candidate graph is connected, so
    // the plan is one (heavily sparsified) block; splitting into several
    // blocks needs genuinely separable value clusters and is covered by the
    // dedicated multi-cluster test below.
    assert!(stats.blocks >= 1, "{stats:?}");
    assert!(
        stats.pruned_fraction() > 0.5,
        "the exact channel should prune most of the space: {stats:?}"
    );

    // The default config (with its cartesian floor) must also agree: the
    // 150-value columns sit far above the floor, so blocking engages.
    let (default_mode, default_stats) =
        match_column_values_with_stats(&columns, embedder.as_ref(), FuzzyFdConfig::default());
    assert_eq!(default_mode, exhaustive);
    assert!(default_stats.pruned_pairs > 0);

    // And the parallel path must agree with the sequential one.
    let parallel = match_column_values(
        &columns,
        embedder.as_ref(),
        FuzzyFdConfig { matching_threads: 4, ..FuzzyFdConfig::default() }.force_blocking(),
    );
    assert_eq!(parallel, exhaustive);
}

/// Acceptance: a fold over well-separated value clusters (no shared surface,
/// distant embeddings) splits into many independent blocks that solve to the
/// same groups as the exhaustive path, sequentially and across worker
/// threads.
#[test]
fn separable_clusters_split_into_parallel_blocks() {
    // Distinctive base words sharing no character trigrams, so both the
    // surface and the embedding of different clusters are far apart; the
    // second column holds a typo variant of each base (last letter doubled).
    let bases = [
        "qavlumper",
        "zorbekkin",
        "wyxtrovan",
        "fenglodar",
        "mubrizzok",
        "tislenkor",
        "hardwexil",
        "covantrup",
        "jesprilon",
        "nuxbalter",
        "ryzomenta",
        "gwalfiddo",
        "spuncrati",
        "dovekharn",
        "ilmoquist",
        "braxxulen",
    ];
    let columns: Vec<Vec<String>> = vec![
        bases.iter().map(|b| b.to_string()).collect(),
        bases.iter().map(|b| format!("{b}{}", b.chars().last().unwrap())).collect(),
    ];
    let value_columns = to_value_columns(&columns);
    let embedder = EmbeddingModel::Mistral.build();

    let exhaustive = match_column_values(
        &value_columns,
        embedder.as_ref(),
        FuzzyFdConfig::with_blocking(BlockingPolicy::Exhaustive),
    );
    let (blocked, stats) = match_column_values_with_stats(
        &value_columns,
        embedder.as_ref(),
        FuzzyFdConfig::default().force_blocking(),
    );
    assert_eq!(blocked, exhaustive, "blocking changed the produced groups");
    assert!(stats.blocks > 1, "separable clusters must split: {stats:?}");
    assert!(stats.pruned_pairs > 0, "{stats:?}");
    // Every base must still absorb its typo variant.
    for group in &blocked {
        assert_eq!(group.len(), 2, "cluster failed to pair: {group:#?}");
    }

    // With several blocks and an explicit thread count the scoped-thread
    // solver engages; it must agree with the sequential result.
    for threads in [2, 4, 32] {
        let parallel = match_column_values(
            &value_columns,
            embedder.as_ref(),
            FuzzyFdConfig { matching_threads: threads, ..FuzzyFdConfig::default() }
                .force_blocking(),
        );
        assert_eq!(parallel, exhaustive, "threads = {threads}");
    }
}

/// A keyed config whose exact channel escalates to the ANN tier for every
/// fold of at least `min_fold_pairs` pairs (blocking floor removed).
fn escalated_config(min_fold_pairs: usize) -> FuzzyFdConfig {
    FuzzyFdConfig::with_blocking(BlockingPolicy::Keyed(KeyedBlockingConfig {
        min_blocked_pairs: 0,
        escalation: EscalationPolicy { min_fold_pairs, ..EscalationPolicy::default() },
        ..KeyedBlockingConfig::default()
    }))
}

/// The exact channel with escalation disabled entirely.
fn exact_config() -> FuzzyFdConfig {
    FuzzyFdConfig::with_blocking(BlockingPolicy::Keyed(KeyedBlockingConfig {
        min_blocked_pairs: 0,
        escalation: EscalationPolicy::never(),
        ..KeyedBlockingConfig::default()
    }))
}

/// Acceptance: on the Auto-Join 150-value set the escalated (ANN) channel
/// produces groups identical to the exact sub-threshold sweep while scoring
/// fewer pairs.  The equivalence here is *empirical*, not structural — the
/// ANN tier is probabilistic and repairs itself through the surface-key
/// union and the no-matchable-candidate fallback sweeps (see
/// `fuzzy_fd_core::blocking`) — which is exactly why this canary exercises
/// it on a workload small enough to verify against the exact channel.
#[test]
fn escalated_channel_equals_exact_on_autojoin_150() {
    use datalake_fuzzy_fd::benchdata::{generate_autojoin_benchmark, AutoJoinConfig};

    let config =
        AutoJoinConfig { num_sets: 1, values_per_column: 150, ..AutoJoinConfig::default() };
    let set = generate_autojoin_benchmark(config).remove(0);
    let columns = to_value_columns(&set.columns);
    let embedder = EmbeddingModel::Mistral.build();

    let (exact, exact_stats) =
        match_column_values_with_stats(&columns, embedder.as_ref(), exact_config());
    assert_eq!(exact_stats.escalated_folds, 0);

    let (escalated, stats) =
        match_column_values_with_stats(&columns, embedder.as_ref(), escalated_config(0));
    assert_eq!(escalated, exact, "the escalated channel changed the produced groups");
    assert!(stats.escalated_folds > 0, "escalation never engaged: {stats:?}");
    assert!(
        stats.scored_pairs < exact_stats.scored_pairs,
        "escalation scored as much as the sweep: {stats:?} vs {exact_stats:?}"
    );
    // Both tiers re-score through the quantized kernel; the escalated tier
    // classifies far fewer pairs (per-pair probes, no cache tiles).
    assert!(stats.kernel.classified() > 0, "{stats:?}");
    assert_eq!(stats.kernel.blocks, 0, "per-pair probing uses no sweep tiles: {stats:?}");
    assert!(
        stats.kernel.classified() < exact_stats.kernel.classified(),
        "escalated: {stats:?}, exact: {exact_stats:?}"
    );
}

/// Acceptance: on the lake-scale escalation fold (1k+ values per column) the
/// default configuration escalates on its own, scores at least 3× fewer
/// pairs than the exact sweep, and still recovers almost all of the gold
/// matches the exact channel finds.
#[test]
fn escalation_fold_scores_three_times_fewer_pairs() {
    use datalake_fuzzy_fd::benchdata::{generate_escalation_fold, EscalationFoldConfig};

    let fold = generate_escalation_fold(EscalationFoldConfig::default());
    let columns = to_value_columns(&fold.columns);
    let embedder = EmbeddingModel::Mistral.build();

    // The default config escalates by itself: the fold sits far above the
    // 1M-pair threshold (and above the cartesian floor).
    let (escalated, stats) =
        match_column_values_with_stats(&columns, embedder.as_ref(), FuzzyFdConfig::default());
    assert!(stats.escalated_folds > 0, "default config failed to escalate: {stats:?}");

    let (exact, exact_stats) =
        match_column_values_with_stats(&columns, embedder.as_ref(), exact_config());
    assert_eq!(exact_stats.escalated_folds, 0);
    assert!(
        stats.scored_pairs * 3 <= exact_stats.scored_pairs,
        "escalation must score ≥3× fewer pairs: {} vs {}",
        stats.scored_pairs,
        exact_stats.scored_pairs
    );

    // Oversized-component splitting engages on both paths (the fold's
    // ambient-similarity tail glues one giant component) and is reported.
    assert!(stats.split_components > 0 && stats.severed_pairs > 0, "{stats:?}");

    // Recall parity: the probabilistic tier may drop a small share of the
    // gold matches, but must stay within a few percent of the exact sweep.
    let recovered = |groups: &[ValueGroup]| {
        fold.gold
            .iter()
            .filter(|(base, variant)| {
                groups.iter().any(|g| {
                    g.members.iter().any(|(_, v)| v.render() == *base)
                        && g.members.iter().any(|(_, v)| v.render() == *variant)
                })
            })
            .count()
    };
    let (exact_gold, escalated_gold) = (recovered(&exact), recovered(&escalated));
    assert!(
        escalated_gold * 100 >= exact_gold * 95,
        "escalated gold recall {escalated_gold}/{} fell too far below exact {exact_gold}/{}",
        fold.gold.len(),
        fold.gold.len()
    );
}

/// Acceptance: oversized-component splitting keeps groups equivalence-safe.
/// With an aggressively small cell cap the splitter must engage on the
/// Auto-Join set, record its cuts, and still only ever produce groups whose
/// members are witnessed by a sub-cutoff distance — no fabricated matches.
#[test]
fn split_components_preserve_group_equivalence() {
    use datalake_fuzzy_fd::benchdata::{generate_autojoin_benchmark, AutoJoinConfig};

    let config =
        AutoJoinConfig { num_sets: 1, values_per_column: 150, ..AutoJoinConfig::default() };
    let set = generate_autojoin_benchmark(config).remove(0);
    let columns = to_value_columns(&set.columns);
    let embedder = EmbeddingModel::Mistral.build();

    let split_config = FuzzyFdConfig::with_blocking(BlockingPolicy::Keyed(KeyedBlockingConfig {
        min_blocked_pairs: 0,
        escalation: EscalationPolicy::never(),
        max_component_cells: 256, // 16 × 16 — far below the fold's one big component
        ..KeyedBlockingConfig::default()
    }));
    let BlockingPolicy::Keyed(keyed) = split_config.blocking else { unreachable!() };
    let SemanticBlocking::ExactBelow { slack } = keyed.semantic else { unreachable!() };
    let cutoff = split_config.theta + slack;

    let (groups, stats) = match_column_values_with_stats(&columns, embedder.as_ref(), split_config);
    assert!(stats.split_components > 0, "the tiny cap must trigger splitting: {stats:?}");
    assert!(stats.severed_pairs > 0, "{stats:?}");
    // The cap bounds cells (rows × cols), not participants: a 256-cell
    // component can be as skinny as 1 × 256, i.e. up to 257 participants.
    assert!(stats.max_block_size <= 257, "cap violated: {stats:?}");

    // Equivalence safety: every matched member still has a sub-cutoff
    // witness among its group mates, and the bipartite constraint holds.
    for group in groups.iter().filter(|g| g.len() >= 2) {
        let mut columns_seen = BTreeSet::new();
        for (column, _) in &group.members {
            assert!(columns_seen.insert(*column), "two members from one column: {group:#?}");
        }
        for (i, (_, value)) in group.members.iter().enumerate() {
            let rendered = value.render();
            if group
                .members
                .iter()
                .enumerate()
                .any(|(j, (_, other))| i != j && other.render() == rendered)
            {
                continue;
            }
            let own = embedder.embed(&rendered);
            let close = group.members.iter().enumerate().any(|(j, (_, other))| {
                i != j && own.cosine_distance(&embedder.embed(&other.render())) < cutoff
            });
            assert!(close, "{rendered:?} grouped without a sub-cutoff witness: {group:#?}");
        }
    }
}

/// Acceptance: cut edges recorded by the splitter are re-verifiable — on a
/// plan built directly over fold inputs, every severed edge carries its
/// exact measured distance, kept blocks respect the cell cap, and the kept
/// pairs plus the cut edges together are exactly the pairs of the unsplit
/// plan (the splitter drops no edge silently).
#[test]
fn splitter_cuts_are_recorded_and_exact() {
    use datalake_fuzzy_fd::embed::Vector;

    // A blurry 12 × 12 fold: three loose clusters of four values whose
    // cross-cluster distances straddle θ, so the candidate graph is one
    // component far above the 4-cell cap.
    let embed = |cluster: usize, jitter: f32| {
        let mut components = vec![0.1f32; 8];
        components[cluster] = 1.0;
        components[(cluster + 1) % 8] = 0.4 + jitter;
        Vector::new(components)
    };
    let vectors: Vec<Vector> = (0..12).map(|i| embed(i % 3, 0.05 * (i / 3) as f32)).collect();
    let refs: Vec<&Vector> = vectors.iter().collect();
    let input = FoldInputs {
        row_embeddings: &refs,
        col_embeddings: &refs,
        theta: 0.7,
        ..FoldInputs::default()
    };
    let keyed = |max_component_cells| {
        BlockingPolicy::Keyed(KeyedBlockingConfig {
            min_blocked_pairs: 0,
            escalation: EscalationPolicy::never(),
            max_component_cells,
            ..KeyedBlockingConfig::default()
        })
    };

    let unsplit = plan_blocks(&input, &keyed(usize::MAX));
    assert!(unsplit.cut_edges.is_empty());
    let split = plan_blocks(&input, &keyed(16));
    assert!(split.stats.split_components > 0, "{:?}", split.stats);
    assert_eq!(split.stats.severed_pairs, split.cut_edges.len());
    for block in &split.blocks {
        assert!(block.rows.len() * block.cols.len() <= 16, "block exceeds the cell cap: {block:?}");
    }

    // Kept pairs ∪ cut edges == the unsplit candidate set, with distances
    // preserved bit for bit.
    let mut recovered: Vec<(usize, usize, f32)> = Vec::new();
    for block in &split.blocks {
        let pairs = block.pairs.as_ref().expect("cost-carrying plans enumerate pairs");
        let costs = block.costs.as_ref().expect("cost-carrying plans carry costs");
        recovered.extend(pairs.iter().zip(costs).map(|(&(r, c), &d)| (r, c, d)));
    }
    recovered.extend(split.cut_edges.iter().map(|e| (e.row, e.col, e.distance)));
    recovered.sort_by_key(|e| (e.0, e.1));
    let mut expected: Vec<(usize, usize, f32)> = Vec::new();
    for block in &unsplit.blocks {
        let pairs = block.pairs.as_ref().unwrap();
        let costs = block.costs.as_ref().unwrap();
        expected.extend(pairs.iter().zip(costs).map(|(&(r, c), &d)| (r, c, d)));
    }
    expected.sort_by_key(|e| (e.0, e.1));
    assert_eq!(recovered, expected, "the splitter lost or altered candidate edges");
}

/// Acceptance: tier selection is a pure threshold function of the fold size,
/// and on separable data the tiers agree wherever they overlap.  For a fold
/// of exactly `T` pairs, `min_fold_pairs = T` escalates and `T + 1` stays on
/// the exact sweep; both produce the same groups.
#[test]
fn threshold_boundary_tier_selection_is_invariant() {
    // Same separable-cluster construction as the parallel-blocks test:
    // distinctive surfaces, far-apart embeddings.
    let bases = [
        "qavlumper",
        "zorbekkin",
        "wyxtrovan",
        "fenglodar",
        "mubrizzok",
        "tislenkor",
        "hardwexil",
        "covantrup",
        "jesprilon",
        "nuxbalter",
        "ryzomenta",
        "gwalfiddo",
    ];
    let columns: Vec<Vec<String>> = vec![
        bases.iter().map(|b| b.to_string()).collect(),
        bases.iter().map(|b| format!("{b}{}", b.chars().last().unwrap())).collect(),
    ];
    let value_columns = to_value_columns(&columns);
    let embedder = EmbeddingModel::Mistral.build();
    // One fold: 12 groups × 12 fuzzy values.
    let fold_pairs = bases.len() * bases.len();

    let (at_threshold, at_stats) = match_column_values_with_stats(
        &value_columns,
        embedder.as_ref(),
        escalated_config(fold_pairs),
    );
    assert_eq!(at_stats.escalated_folds, 1, "T-pair fold must escalate at T: {at_stats:?}");

    let (above_threshold, above_stats) = match_column_values_with_stats(
        &value_columns,
        embedder.as_ref(),
        escalated_config(fold_pairs + 1),
    );
    assert_eq!(above_stats.escalated_folds, 0, "{above_stats:?}");

    assert_eq!(at_threshold, above_threshold, "tier choice changed the groups");
    for group in &at_threshold {
        assert_eq!(group.len(), 2, "cluster failed to pair: {group:#?}");
    }
}
