//! Equivalence and property harness for blocked candidate generation.
//!
//! The blocked value matcher must be a faithful optimisation: its cartesian
//! fallback has to reproduce the exhaustive path exactly, the keyed channels
//! must never match pairs that were not candidates (SimHash mode: sharing no
//! blocking key; exact mode: at or above the distance cutoff), and on the
//! Auto-Join benchmark set the pruned search space may not change the
//! produced groups.

use std::collections::BTreeSet;

use datalake_fuzzy_fd::core::{
    embedding_bucket_keys, hash_key, match_column_values, match_column_values_with_stats,
    value_block_keys, BlockingPolicy, FuzzyFdConfig, KeyedBlockingConfig, SemanticBlocking,
    ValueGroup,
};
use datalake_fuzzy_fd::embed::{Embedder, EmbeddingModel};
use datalake_fuzzy_fd::table::Value;
use proptest::prelude::*;

fn to_value_columns(columns: &[Vec<String>]) -> Vec<Vec<Value>> {
    columns.iter().map(|col| col.iter().map(|s| Value::text(s.clone())).collect()).collect()
}

fn run(columns: &[Vec<String>], config: FuzzyFdConfig) -> Vec<ValueGroup> {
    let embedder = config.model.build();
    match_column_values(&to_value_columns(columns), embedder.as_ref(), config)
}

/// Strategy: 2–3 columns mixing exact duplicates, typo variants, acronyms and
/// unrelated values, so exact, fuzzy and unmatched paths are all exercised.
fn columns_strategy() -> impl Strategy<Value = Vec<Vec<String>>> {
    let word = prop::sample::select(vec![
        "berlin",
        "berlinn",
        "toronto",
        "torontoo",
        "boston",
        "barcelona",
        "barcelonna",
        "new delhi",
        "nd",
        "united nations",
        "un",
        "germany",
        "de",
        "canada",
        "ca",
        "quito",
        "lima",
        "lagos",
        "dallas",
        "austin",
    ]);
    let column = prop::collection::hash_set(word, 0..10)
        .prop_map(|set| set.into_iter().map(String::from).collect::<Vec<String>>());
    prop::collection::vec(column, 2..=3)
}

/// Forces keyed blocking (the default exact semantic channel) regardless of
/// problem size.
fn keyed_config(theta: f32, threads: usize) -> FuzzyFdConfig {
    FuzzyFdConfig { theta, matching_threads: threads, ..FuzzyFdConfig::default() }.force_blocking()
}

/// A keyed config on the SimHash semantic channel, floor removed.
fn simhash_config(theta: f32) -> FuzzyFdConfig {
    FuzzyFdConfig {
        theta,
        blocking: BlockingPolicy::Keyed(KeyedBlockingConfig {
            semantic: SemanticBlocking::simhash_default(),
            min_blocked_pairs: 0,
            ..KeyedBlockingConfig::default()
        }),
        ..FuzzyFdConfig::default()
    }
}

/// The full (hashed) blocking keys of one value the way the SimHash planner
/// derives them: surface keys plus the band-bucket keys of the value's own
/// embedding.
fn full_keys(value: &str, semantic: &SemanticBlocking, model: EmbeddingModel) -> BTreeSet<u64> {
    let embedder = model.build();
    let mut keys: BTreeSet<u64> = value_block_keys(value).iter().map(|k| hash_key(k)).collect();
    keys.extend(embedding_bucket_keys(semantic, &embedder.embed(value)));
    keys
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    /// The keyed policy's cartesian fallback (blocking floor never reached)
    /// is bit-identical to the exhaustive path.
    #[test]
    fn cartesian_fallback_equals_exhaustive(
        columns in columns_strategy(),
        theta in 0.0f32..0.95,
    ) {
        let exhaustive = run(
            &columns,
            FuzzyFdConfig { theta, ..FuzzyFdConfig::with_blocking(BlockingPolicy::Exhaustive) },
        );
        let fallback = run(
            &columns,
            FuzzyFdConfig {
                theta,
                blocking: BlockingPolicy::Keyed(KeyedBlockingConfig {
                    min_blocked_pairs: usize::MAX,
                    ..KeyedBlockingConfig::default()
                }),
                ..FuzzyFdConfig::default()
            },
        );
        prop_assert_eq!(exhaustive, fallback);
    }

    /// The default exact semantic channel never groups a value with others it
    /// is not close to: every member of a multi-member group is an exact
    /// duplicate of another member, or lies within the distance cutoff
    /// (θ + slack) of at least one other member — the witness being the group
    /// representative it was matched against, which stays a member forever.
    #[test]
    fn exact_mode_only_groups_sub_threshold_values(
        columns in columns_strategy(),
        theta in 0.0f32..0.95,
    ) {
        let config = keyed_config(theta, 1);
        let BlockingPolicy::Keyed(keyed) = config.blocking else { unreachable!() };
        let SemanticBlocking::ExactBelow { slack } = keyed.semantic else {
            panic!("default channel must be exact, got {:?}", keyed.semantic)
        };
        let cutoff = theta + slack;
        let embedder = config.model.build();
        let groups = run(&columns, config);
        for group in groups.iter().filter(|g| g.len() >= 2) {
            for (i, (_, value)) in group.members.iter().enumerate() {
                let rendered = value.render();
                if group.members.iter().enumerate().any(|(j, (_, other))| {
                    i != j && other.render() == rendered
                }) {
                    continue; // exact duplicate, joined by the exact pass
                }
                let own = embedder.embed(&rendered);
                let close = group.members.iter().enumerate().any(|(j, (_, other))| {
                    i != j && own.cosine_distance(&embedder.embed(&other.render())) < cutoff
                });
                prop_assert!(
                    close,
                    "{rendered:?} grouped at distance ≥ {cutoff}: {group:#?}"
                );
            }
        }
    }

    /// SimHash mode never groups a value with others it shares no blocking
    /// key with: every member of a multi-member group shares at least one key
    /// (surface or embedding bucket) with the union of the other members'
    /// keys, or is an exact duplicate of another member.
    #[test]
    fn simhash_mode_only_pairs_key_sharing_values(
        columns in columns_strategy(),
        theta in 0.0f32..0.95,
    ) {
        let config = simhash_config(theta);
        let BlockingPolicy::Keyed(keyed) = config.blocking else { unreachable!() };
        let groups = run(&columns, config);
        for group in groups.iter().filter(|g| g.len() >= 2) {
            for (i, (_, value)) in group.members.iter().enumerate() {
                let rendered = value.render();
                if group.members.iter().enumerate().any(|(j, (_, other))| {
                    i != j && other.render() == rendered
                }) {
                    continue; // exact duplicate, joined by the exact pass
                }
                let own = full_keys(&rendered, &keyed.semantic, config.model);
                let mut rest = BTreeSet::new();
                for (j, (_, other)) in group.members.iter().enumerate() {
                    if i != j {
                        rest.extend(full_keys(&other.render(), &keyed.semantic, config.model));
                    }
                }
                prop_assert!(
                    !own.is_disjoint(&rest),
                    "{rendered:?} grouped with values sharing none of its keys: {group:#?}"
                );
            }
        }
    }

    /// Block solving is deterministic in the worker-thread count.
    #[test]
    fn blocked_matching_is_thread_count_invariant(
        columns in columns_strategy(),
        theta in 0.0f32..0.95,
    ) {
        let sequential = run(&columns, keyed_config(theta, 1));
        for threads in [0usize, 3] {
            let parallel = run(&columns, keyed_config(theta, threads));
            prop_assert_eq!(&sequential, &parallel, "threads = {}", threads);
        }
    }
}

/// Acceptance: on the Auto-Join 150-value integration set, keyed blocking
/// prunes a substantial share of the candidate space without changing a
/// single group, sequentially and across worker threads.
#[test]
fn autojoin_150_set_blocked_equals_exhaustive() {
    use datalake_fuzzy_fd::benchdata::{generate_autojoin_benchmark, AutoJoinConfig};

    let config =
        AutoJoinConfig { num_sets: 1, values_per_column: 150, ..AutoJoinConfig::default() };
    let set = generate_autojoin_benchmark(config).remove(0);
    let columns = to_value_columns(&set.columns);
    let embedder = EmbeddingModel::Mistral.build();

    let (exhaustive, exhaustive_stats) = match_column_values_with_stats(
        &columns,
        embedder.as_ref(),
        FuzzyFdConfig::with_blocking(BlockingPolicy::Exhaustive),
    );
    assert_eq!(exhaustive_stats.pruned_pairs, 0);

    let (blocked, stats) = match_column_values_with_stats(
        &columns,
        embedder.as_ref(),
        FuzzyFdConfig::default().force_blocking(),
    );
    assert_eq!(blocked, exhaustive, "blocking changed the produced groups");
    assert!(stats.pruned_pairs > 0, "no pruning happened: {stats:?}");
    assert!(
        stats.candidate_pairs < exhaustive_stats.candidate_pairs,
        "blocked: {stats:?}, exhaustive: {exhaustive_stats:?}"
    );
    // On single-topic data the sub-cutoff candidate graph is connected, so
    // the plan is one (heavily sparsified) block; splitting into several
    // blocks needs genuinely separable value clusters and is covered by the
    // dedicated multi-cluster test below.
    assert!(stats.blocks >= 1, "{stats:?}");
    assert!(
        stats.pruned_fraction() > 0.5,
        "the exact channel should prune most of the space: {stats:?}"
    );

    // The default config (with its cartesian floor) must also agree: the
    // 150-value columns sit far above the floor, so blocking engages.
    let (default_mode, default_stats) =
        match_column_values_with_stats(&columns, embedder.as_ref(), FuzzyFdConfig::default());
    assert_eq!(default_mode, exhaustive);
    assert!(default_stats.pruned_pairs > 0);

    // And the parallel path must agree with the sequential one.
    let parallel = match_column_values(
        &columns,
        embedder.as_ref(),
        FuzzyFdConfig { matching_threads: 4, ..FuzzyFdConfig::default() }.force_blocking(),
    );
    assert_eq!(parallel, exhaustive);
}

/// Acceptance: a fold over well-separated value clusters (no shared surface,
/// distant embeddings) splits into many independent blocks that solve to the
/// same groups as the exhaustive path, sequentially and across worker
/// threads.
#[test]
fn separable_clusters_split_into_parallel_blocks() {
    // Distinctive base words sharing no character trigrams, so both the
    // surface and the embedding of different clusters are far apart; the
    // second column holds a typo variant of each base (last letter doubled).
    let bases = [
        "qavlumper",
        "zorbekkin",
        "wyxtrovan",
        "fenglodar",
        "mubrizzok",
        "tislenkor",
        "hardwexil",
        "covantrup",
        "jesprilon",
        "nuxbalter",
        "ryzomenta",
        "gwalfiddo",
        "spuncrati",
        "dovekharn",
        "ilmoquist",
        "braxxulen",
    ];
    let columns: Vec<Vec<String>> = vec![
        bases.iter().map(|b| b.to_string()).collect(),
        bases.iter().map(|b| format!("{b}{}", b.chars().last().unwrap())).collect(),
    ];
    let value_columns = to_value_columns(&columns);
    let embedder = EmbeddingModel::Mistral.build();

    let exhaustive = match_column_values(
        &value_columns,
        embedder.as_ref(),
        FuzzyFdConfig::with_blocking(BlockingPolicy::Exhaustive),
    );
    let (blocked, stats) = match_column_values_with_stats(
        &value_columns,
        embedder.as_ref(),
        FuzzyFdConfig::default().force_blocking(),
    );
    assert_eq!(blocked, exhaustive, "blocking changed the produced groups");
    assert!(stats.blocks > 1, "separable clusters must split: {stats:?}");
    assert!(stats.pruned_pairs > 0, "{stats:?}");
    // Every base must still absorb its typo variant.
    for group in &blocked {
        assert_eq!(group.len(), 2, "cluster failed to pair: {group:#?}");
    }

    // With several blocks and an explicit thread count the scoped-thread
    // solver engages; it must agree with the sequential result.
    for threads in [2, 4, 32] {
        let parallel = match_column_values(
            &value_columns,
            embedder.as_ref(),
            FuzzyFdConfig { matching_threads: threads, ..FuzzyFdConfig::default() }
                .force_blocking(),
        );
        assert_eq!(parallel, exhaustive, "threads = {threads}");
    }
}
