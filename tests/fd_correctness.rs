//! Property-based correctness tests for the Full Disjunction substrate:
//! the scalable ALITE-style algorithm, the parallel variant and the
//! brute-force specification oracle must agree on arbitrary small inputs.

use datalake_fuzzy_fd::fd::{
    full_disjunction, parallel_full_disjunction, specification_full_disjunction, IntegrationSchema,
};
use datalake_fuzzy_fd::table::{Table, TableBuilder, Value};
use proptest::prelude::*;

/// Strategy: up to three tables over a tiny shared attribute universe with a
/// tiny value domain, so joins, conflicts and subsumption all occur often.
fn tables_strategy() -> impl Strategy<Value = Vec<Table>> {
    // Each table: 1..=3 columns drawn from {a, b, c, d}, 1..=4 rows with
    // values from a domain of 4 symbols plus null.
    let column_sets = prop::sample::subsequence(vec!["a", "b", "c", "d"], 1..=3);
    let table = (column_sets, 1usize..=4, 0u64..1000).prop_map(|(cols, rows, seed)| {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        (cols, rows, {
            let mut data = Vec::new();
            for _ in 0..rows {
                let row: Vec<Option<usize>> = (0..3)
                    .map(|_| {
                        let v = next() % 6;
                        if v < 4 {
                            Some(v)
                        } else {
                            None
                        }
                    })
                    .collect();
                data.push(row);
            }
            data
        })
    });
    prop::collection::vec(table, 1..=3).prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(t_idx, (cols, rows, data))| {
                let names: Vec<String> = cols.iter().map(|c| c.to_string()).collect();
                let mut builder = TableBuilder::new(format!("T{t_idx}"), names.clone());
                for cells in data.iter().take(rows) {
                    let row: Vec<Value> = (0..names.len())
                        .map(|c| match cells[c] {
                            Some(v) => Value::text(format!("v{v}")),
                            None => Value::Null,
                        })
                        .collect();
                    builder = builder.row_values(row);
                }
                builder.build().expect("valid random table")
            })
            .collect()
    })
}

fn value_multiset(result: &datalake_fuzzy_fd::fd::IntegratedTable) -> Vec<Vec<Value>> {
    let mut values: Vec<Vec<Value>> = result.tuples().iter().map(|t| t.values().to_vec()).collect();
    values.sort();
    values
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The scalable algorithm computes exactly the Full Disjunction defined
    /// by the brute-force specification.
    #[test]
    fn alite_fd_matches_specification(tables in tables_strategy()) {
        let total: usize = tables.iter().map(|t| t.num_rows()).sum();
        prop_assume!(total <= 10);
        let schema = IntegrationSchema::from_matching_headers(&tables);
        let fast = full_disjunction(&schema, &tables);
        let spec = specification_full_disjunction(&schema, &tables);
        prop_assert_eq!(value_multiset(&fast), value_multiset(&spec));
    }

    /// The parallel variant agrees with the sequential one.
    #[test]
    fn parallel_fd_matches_sequential(tables in tables_strategy()) {
        let schema = IntegrationSchema::from_matching_headers(&tables);
        let sequential = full_disjunction(&schema, &tables);
        let parallel = parallel_full_disjunction(&schema, &tables, 3);
        prop_assert_eq!(value_multiset(&sequential), value_multiset(&parallel));
    }

    /// FD never loses a base tuple: every input tuple is subsumed by some
    /// output tuple, and no output tuple is subsumed by another.
    #[test]
    fn fd_covers_all_base_tuples_and_is_subsumption_free(tables in tables_strategy()) {
        let schema = IntegrationSchema::from_matching_headers(&tables);
        let fd = full_disjunction(&schema, &tables);
        prop_assert!(fd.unrepresented_base_tuples(&schema, &tables).is_empty());
        let tuples = fd.tuples();
        for (i, a) in tuples.iter().enumerate() {
            for (j, b) in tuples.iter().enumerate() {
                if i != j {
                    prop_assert!(
                        !(a.subsumes(b) && a.non_null_count() > b.non_null_count()),
                        "tuple {j} is subsumed by tuple {i}"
                    );
                }
            }
        }
    }
}
