//! Offline stand-in for [`rand` 0.8](https://docs.rs/rand/0.8).
//!
//! Implements exactly the surface the workspace's benchmark generators use:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `Rng` extension
//! methods `gen_range` (half-open and inclusive integer/float ranges) and
//! `gen_bool`.  The generator is xoshiro256** seeded via SplitMix64 — fast,
//! deterministic across platforms, and statistically strong enough for
//! synthetic data generation (it is not cryptographic, and neither is the
//! real `StdRng` contractually).

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly (subset of `rand::distributions`).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Convenience extension methods over any [`RngCore`] (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples uniformly from `range`, which must be non-empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps a random word to `[0, 1)` with 53 bits of precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that can be drawn uniformly from a range (subset of
/// `rand::distributions::uniform::SampleUniform`).
///
/// The blanket `SampleRange` impls below are deliberately generic over one
/// `T: SampleUniform`, exactly as in real rand: type inference then unifies
/// the range's element type with `gen_range`'s return type *before* integer
/// literal fallback runs, so call sites like
/// `rng.gen_range(10..2_000_000).to_string()` infer `i32`.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[start, end)`.
    fn sample_half_open<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[start, end]`.
    fn sample_inclusive<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range called with empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "gen_range called with empty range");
        T::sample_inclusive(start, end, rng)
    }
}

macro_rules! impl_int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
                let span = (end as i128 - start as i128) as u128;
                let offset = u128::from(rng.next_u64()) % span;
                (start as i128 + offset as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = u128::from(rng.next_u64()) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
                let unit = unit_f64(rng.next_u64()) as $t;
                start + unit * (end - start)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
                Self::sample_half_open(start, end, rng)
            }
        }
    )*};
}

impl_float_sample_uniform!(f32, f64);

/// Standard generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand itself uses for seed_from_u64.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng { state: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.state[1] << 17;
            self.state[2] ^= self.state[0];
            self.state[3] ^= self.state[1];
            self.state[1] ^= self.state[2];
            self.state[0] ^= self.state[3];
            self.state[2] ^= t;
            self.state[3] = self.state[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000), b.gen_range(0..1000i64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: usize = rng.gen_range(0..=5);
            assert!(w <= 5);
            let f = rng.gen_range(0.25f64..4.0);
            assert!((0.25..4.0).contains(&f));
            let neg = rng.gen_range(-10i32..-2);
            assert!((-10..-2).contains(&neg));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_000..4_000).contains(&hits), "p=0.3 produced {hits}/10000 hits");
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen_range(0..u64::MAX) == b.gen_range(0..u64::MAX)).count();
        assert_eq!(same, 0);
    }
}
