//! Collection strategies (`prop::collection::vec`, `prop::collection::hash_set`).

use std::collections::HashSet;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

use crate::strategy::{GenResult, Strategy};
use crate::test_runner::{Reject, TestRng};

/// Inclusive bounds on a generated collection's length.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    pub(crate) min: usize,
    pub(crate) max: usize,
}

impl SizeRange {
    pub(crate) fn sample(&self, rng: &mut TestRng) -> usize {
        let span = (self.max - self.min) as u64 + 1;
        self.min + rng.below(span) as usize
    }

    /// Caps both bounds at `limit` (used by `sample::subsequence`).
    pub(crate) fn clamped_to(self, limit: usize) -> Self {
        SizeRange { min: self.min.min(limit), max: self.max.min(limit) }
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange { min: exact, max: exact }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty collection size range");
        SizeRange { min: range.start, max: range.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        assert!(range.start() <= range.end(), "empty collection size range");
        SizeRange { min: *range.start(), max: *range.end() }
    }
}

/// Generates a `Vec` whose length falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// Generates a `HashSet` whose cardinality falls in `size` (best effort when
/// the element domain is too small to reach the drawn target).
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    HashSetStrategy { element, size: size.into() }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> GenResult<Vec<S::Value>> {
        let len = self.size.sample(rng);
        let mut items = Vec::with_capacity(len);
        for _ in 0..len {
            items.push(self.element.generate(rng)?);
        }
        Ok(items)
    }
}

/// See [`hash_set`].
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    type Value = HashSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> GenResult<HashSet<S::Value>> {
        let target = self.size.sample(rng);
        let mut set = HashSet::with_capacity(target);
        // Duplicate draws do not grow the set, so bound the attempts; a small
        // element domain then simply yields a smaller set.
        let max_attempts = target * 20 + 10;
        let mut attempts = 0;
        while set.len() < target && attempts < max_attempts {
            set.insert(self.element.generate(rng)?);
            attempts += 1;
        }
        if set.len() < self.size.min {
            return Err(Reject {
                message: format!(
                    "could not generate {} distinct elements (got {})",
                    self.size.min,
                    set.len()
                ),
            });
        }
        Ok(set)
    }
}
