//! The [`Strategy`] trait, combinators, and primitive strategies.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::{Reject, TestRng};

/// Result of generating one value: `Err` means the case is discarded.
pub type GenResult<V> = Result<V, Reject>;

/// How many times `prop_filter` re-draws from its base strategy before giving
/// up and rejecting the whole case.
const FILTER_ATTEMPTS: usize = 256;

/// Generates random values of an associated type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> GenResult<Self::Value>;

    /// Transforms generated values with `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, map }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, map: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, map }
    }

    /// Keeps only values satisfying `predicate` (re-drawing a bounded number
    /// of times before rejecting the case).
    fn prop_filter<F>(self, reason: impl Into<String>, predicate: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { base: self, reason: reason.into(), predicate }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> GenResult<V> {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> GenResult<T> {
        Ok(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> GenResult<O> {
        self.base.generate(rng).map(&self.map)
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    map: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> GenResult<T::Value> {
        let intermediate = self.base.generate(rng)?;
        (self.map)(intermediate).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    base: S,
    reason: String,
    predicate: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> GenResult<S::Value> {
        for _ in 0..FILTER_ATTEMPTS {
            let candidate = self.base.generate(rng)?;
            if (self.predicate)(&candidate) {
                return Ok(candidate);
            }
        }
        Err(Reject { message: self.reason.clone() })
    }
}

/// Weighted choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total_weight: u64,
}

impl<V> Union<V> {
    /// Creates a union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total_weight: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof! requires at least one positive weight");
        Union { arms, total_weight }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> GenResult<V> {
        let mut draw = rng.below(self.total_weight);
        for (weight, strategy) in &self.arms {
            let weight = u64::from(*weight);
            if draw < weight {
                return strategy.generate(rng);
            }
            draw -= weight;
        }
        unreachable!("weighted draw exceeded total weight")
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> GenResult<$t> {
                assert!(self.start < self.end, "strategy range is empty");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = u128::from(rng.next_u64()) % span;
                Ok((self.start as i128 + offset as i128) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> GenResult<$t> {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "strategy range is empty");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = u128::from(rng.next_u64()) % span;
                Ok((start as i128 + offset as i128) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> GenResult<$t> {
                assert!(self.start < self.end, "strategy range is empty");
                let unit = rng.unit_f64() as $t;
                Ok(self.start + unit * (self.end - self.start))
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> GenResult<Self::Value> {
                let ($($name,)+) = self;
                Ok(($($name.generate(rng)?,)+))
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
