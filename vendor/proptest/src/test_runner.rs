//! Test execution support: the deterministic RNG, case errors, and config.

/// Configuration accepted by `proptest!`'s `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Upper bound on rejected cases (filters/assumptions) before the test
    /// aborts as unable to generate inputs.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_global_rejects: 65_536 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was discarded (filter or `prop_assume!`); the runner retries.
    Reject(String),
    /// An assertion failed; the runner panics with this message.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure error.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// Builds a rejection error.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

/// A strategy-level rejection (produced by `prop_filter` that never passed).
#[derive(Debug, Clone)]
pub struct Reject {
    /// Human-readable filter description.
    pub message: String,
}

/// Deterministic xoshiro256** RNG used to generate test inputs.
///
/// Seeded from the test name so distinct tests explore distinct sequences
/// while every run of the same test is reproducible.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: [u64; 4],
}

impl TestRng {
    /// Creates an RNG seeded deterministically from `name`.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test name, then SplitMix64 expansion.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self::seeded(hash)
    }

    /// Creates an RNG from an explicit seed.
    pub fn seeded(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng { state: [next(), next(), next(), next()] }
    }

    /// Returns the next random 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform draw from `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
