//! Sampling strategies (`prop::sample::select`, `prop::sample::subsequence`).

use crate::collection::SizeRange;
use crate::strategy::{GenResult, Strategy};
use crate::test_runner::TestRng;

/// Picks uniformly from a fixed, non-empty list of values.
pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
    assert!(!items.is_empty(), "select requires at least one item");
    Select { items }
}

/// See [`select`].
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    items: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> GenResult<T> {
        let index = rng.below(self.items.len() as u64) as usize;
        Ok(self.items[index].clone())
    }
}

/// Picks a random subsequence (order-preserving subset) of `items` whose
/// length falls in `size`; `size` is clamped to the number of items.
pub fn subsequence<T: Clone>(items: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
    let size = size.into().clamped_to(items.len());
    Subsequence { items, size }
}

/// See [`subsequence`].
#[derive(Debug, Clone)]
pub struct Subsequence<T: Clone> {
    items: Vec<T>,
    size: SizeRange,
}

impl<T: Clone> Strategy for Subsequence<T> {
    type Value = Vec<T>;

    fn generate(&self, rng: &mut TestRng) -> GenResult<Vec<T>> {
        let len = self.size.sample(rng);
        // Choose `len` distinct indices via a partial Fisher-Yates shuffle,
        // then restore input order.
        let mut indices: Vec<usize> = (0..self.items.len()).collect();
        for slot in 0..len {
            let pick = slot + rng.below((indices.len() - slot) as u64) as usize;
            indices.swap(slot, pick);
        }
        let mut chosen = indices[..len].to_vec();
        chosen.sort_unstable();
        Ok(chosen.into_iter().map(|i| self.items[i].clone()).collect())
    }
}
