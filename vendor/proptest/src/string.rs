//! Regex-shaped string strategies (`proptest::string::string_regex`).
//!
//! Supports the pattern subset the workspace's tests use: literal characters,
//! character classes (`[A-Za-z ,"']`, ranges and literals, `\`-escapes), and
//! the quantifiers `{n}`, `{m,n}`, `?`, `*`, `+` (unbounded quantifiers are
//! capped at 16 repetitions).  Anything outside that subset returns an error,
//! as the real crate does for invalid patterns.

use std::fmt;

use crate::strategy::{GenResult, Strategy};
use crate::test_runner::TestRng;

/// Cap applied to `*` and `+` so generated strings stay small.
const UNBOUNDED_CAP: usize = 16;

/// Pattern rejected by the mini-regex parser.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unsupported regex pattern: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// One pattern element: a set of candidate characters plus repetition bounds.
#[derive(Debug, Clone)]
struct Element {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

/// Strategy generating strings matching a (subset) regex pattern.
#[derive(Debug, Clone)]
pub struct StringRegexStrategy {
    elements: Vec<Element>,
}

impl Strategy for StringRegexStrategy {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> GenResult<String> {
        let mut out = String::new();
        for element in &self.elements {
            let span = (element.max - element.min) as u64 + 1;
            let count = element.min + rng.below(span) as usize;
            for _ in 0..count {
                let index = rng.below(element.choices.len() as u64) as usize;
                out.push(element.choices[index]);
            }
        }
        Ok(out)
    }
}

/// Builds a strategy producing strings that match `pattern`.
pub fn string_regex(pattern: &str) -> Result<StringRegexStrategy, Error> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pos = 0;
    let mut elements = Vec::new();
    while pos < chars.len() {
        let choices = parse_atom(&chars, &mut pos)?;
        let (min, max) = parse_quantifier(&chars, &mut pos)?;
        elements.push(Element { choices, min, max });
    }
    Ok(StringRegexStrategy { elements })
}

fn parse_atom(chars: &[char], pos: &mut usize) -> Result<Vec<char>, Error> {
    match chars[*pos] {
        '[' => {
            *pos += 1;
            parse_class(chars, pos)
        }
        '\\' => {
            *pos += 1;
            let escaped = *chars
                .get(*pos)
                .ok_or_else(|| Error("dangling escape at end of pattern".into()))?;
            *pos += 1;
            Ok(expand_escape(escaped))
        }
        c @ ('(' | ')' | '|' | '^' | '$') => {
            Err(Error(format!("metacharacter `{c}` is not supported")))
        }
        '.' => {
            *pos += 1;
            // Printable ASCII stands in for "any character".
            Ok((0x20u8..0x7f).map(char::from).collect())
        }
        c => {
            *pos += 1;
            Ok(vec![c])
        }
    }
}

fn expand_escape(escaped: char) -> Vec<char> {
    match escaped {
        'd' => ('0'..='9').collect(),
        'w' => ('a'..='z').chain('A'..='Z').chain('0'..='9').chain(['_']).collect(),
        's' => vec![' ', '\t'],
        'n' => vec!['\n'],
        't' => vec!['\t'],
        c => vec![c],
    }
}

fn parse_class(chars: &[char], pos: &mut usize) -> Result<Vec<char>, Error> {
    if chars.get(*pos) == Some(&'^') {
        return Err(Error("negated character classes are not supported".into()));
    }
    let mut choices = Vec::new();
    while let Some(&c) = chars.get(*pos) {
        match c {
            ']' => {
                *pos += 1;
                if choices.is_empty() {
                    return Err(Error("empty character class".into()));
                }
                return Ok(choices);
            }
            '\\' => {
                *pos += 1;
                let escaped =
                    *chars.get(*pos).ok_or_else(|| Error("dangling escape inside class".into()))?;
                *pos += 1;
                choices.extend(expand_escape(escaped));
            }
            start => {
                // `a-z` range when a dash follows and is not the terminator.
                if chars.get(*pos + 1) == Some(&'-')
                    && chars.get(*pos + 2).is_some_and(|&end| end != ']')
                {
                    let end = chars[*pos + 2];
                    if end < start {
                        return Err(Error(format!("invalid class range {start}-{end}")));
                    }
                    choices.extend(start..=end);
                    *pos += 3;
                } else {
                    choices.push(start);
                    *pos += 1;
                }
            }
        }
    }
    Err(Error("unterminated character class".into()))
}

fn parse_quantifier(chars: &[char], pos: &mut usize) -> Result<(usize, usize), Error> {
    match chars.get(*pos) {
        Some('?') => {
            *pos += 1;
            Ok((0, 1))
        }
        Some('*') => {
            *pos += 1;
            Ok((0, UNBOUNDED_CAP))
        }
        Some('+') => {
            *pos += 1;
            Ok((1, UNBOUNDED_CAP))
        }
        Some('{') => {
            let close = chars[*pos..]
                .iter()
                .position(|&c| c == '}')
                .ok_or_else(|| Error("unterminated quantifier".into()))?
                + *pos;
            let body: String = chars[*pos + 1..close].iter().collect();
            *pos = close + 1;
            let parse = |s: &str| {
                s.trim().parse::<usize>().map_err(|_| Error(format!("bad quantifier `{body}`")))
            };
            let (min, max) = match body.split_once(',') {
                Some((lo, hi)) => (parse(lo)?, parse(hi)?),
                None => {
                    let exact = parse(&body)?;
                    (exact, exact)
                }
            };
            if max < min {
                return Err(Error(format!("quantifier max below min in `{body}`")));
            }
            Ok((min, max))
        }
        _ => Ok((1, 1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn generates_matching_strings() {
        let strategy = string_regex("[A-Za-z][A-Za-z ,\"']{0,14}[A-Za-z]").unwrap();
        let mut rng = TestRng::deterministic("generates_matching_strings");
        for _ in 0..200 {
            let s = strategy.generate(&mut rng).unwrap();
            assert!(s.len() >= 2, "too short: {s:?}");
            assert!(s.len() <= 16, "too long: {s:?}");
            let chars: Vec<char> = s.chars().collect();
            assert!(chars[0].is_ascii_alphabetic());
            assert!(chars[chars.len() - 1].is_ascii_alphabetic());
            for &c in &chars[1..chars.len() - 1] {
                assert!(
                    c.is_ascii_alphabetic() || matches!(c, ' ' | ',' | '"' | '\''),
                    "unexpected char {c:?} in {s:?}"
                );
            }
        }
    }

    #[test]
    fn exact_and_escape_quantifiers() {
        let strategy = string_regex("a{3}\\d?").unwrap();
        let mut rng = TestRng::deterministic("exact");
        for _ in 0..50 {
            let s = strategy.generate(&mut rng).unwrap();
            assert!(s.starts_with("aaa"));
            assert!(s.len() <= 4);
        }
    }

    #[test]
    fn unsupported_patterns_error() {
        assert!(string_regex("(a|b)").is_err());
        assert!(string_regex("[^a]").is_err());
        assert!(string_regex("[a").is_err());
    }
}
