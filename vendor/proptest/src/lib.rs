//! Offline stand-in for [`proptest`](https://docs.rs/proptest).
//!
//! The workspace's property tests are kept verbatim from what they would look
//! like against the real crate; this stub implements the subset of the API
//! they exercise:
//!
//! * the [`strategy::Strategy`] trait with `prop_map`, `prop_flat_map`,
//!   `prop_filter` and `boxed`, implemented for integer/float ranges, tuples
//!   and [`strategy::Just`];
//! * [`collection::vec`], [`collection::hash_set`], [`sample::select`],
//!   [`string::string_regex`] and [`arbitrary::any`];
//! * the [`proptest!`] macro family (`prop_assert!`, `prop_assert_eq!`,
//!   `prop_assert_ne!`, `prop_assume!`, `prop_oneof!`) driven by a
//!   deterministic per-test RNG.
//!
//! The one semantic difference from real proptest: failing cases are *not*
//! shrunk — the failing assertion message is reported directly.

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Mirror of proptest's `prop` convenience module (`prop::collection::vec`,
/// `prop::sample::select`, ...).
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
    pub use crate::strategy;
    pub use crate::string;
}

/// Defines property tests over generated inputs.
///
/// The `#[test]` attribute inside the block is part of the macro's input
/// syntax, re-emitted onto the generated zero-argument function.  Because
/// `#[test]` functions are stripped outside test builds, the doctest below
/// only compile-checks the expansion; `tests/macro_behaviour.rs` executes it.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
///
///     #[test]
///     fn addition_commutes(a in 0i64..1000, b in 0i64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[allow(clippy::test_attr_in_doctest)]
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { [$config] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { [$crate::test_runner::ProptestConfig::default()] $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ([$config:expr] $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                let mut cases_passed: u32 = 0;
                let mut rejects: u32 = 0;
                while cases_passed < config.cases {
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $(
                                let $pat = match $crate::strategy::Strategy::generate(
                                    &($strat),
                                    &mut rng,
                                ) {
                                    ::core::result::Result::Ok(value) => value,
                                    ::core::result::Result::Err(reject) => {
                                        return ::core::result::Result::Err(
                                            $crate::test_runner::TestCaseError::Reject(
                                                reject.message,
                                            ),
                                        );
                                    }
                                };
                            )+
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    match outcome {
                        ::core::result::Result::Ok(()) => cases_passed += 1,
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {
                            rejects += 1;
                            assert!(
                                rejects <= config.max_global_rejects,
                                "proptest stub: too many rejected cases ({} rejects, {} passes) in {}",
                                rejects,
                                cases_passed,
                                stringify!($name),
                            );
                        }
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(message),
                        ) => {
                            panic!(
                                "proptest case failed in {} (after {} passing cases): {}",
                                stringify!($name),
                                cases_passed,
                                message,
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not the
/// whole process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::string::String::from(concat!("assertion failed: ", stringify!($cond))),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left_val, right_val) = (&$left, &$right);
        if !(*left_val == *right_val) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                    left_val,
                    right_val
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left_val, right_val) = (&$left, &$right);
        if !(*left_val == *right_val) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
                    left_val,
                    right_val,
                    ::std::format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Asserts two expressions are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left_val, right_val) = (&$left, &$right);
        if *left_val == *right_val {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
                    left_val,
                    right_val
                ),
            ));
        }
    }};
}

/// Discards the current case (without failing) when the assumption is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(concat!("assumption failed: ", stringify!($cond))),
            ));
        }
    };
}

/// Picks among several strategies, optionally weighted (`weight => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $((($weight) as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}
