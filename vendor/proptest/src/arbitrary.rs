//! The [`any`] entry point and [`Arbitrary`] impls for primitives.

use crate::strategy::{GenResult, Strategy};
use crate::test_runner::TestRng;

/// Function-backed strategy used by the primitive [`Arbitrary`] impls.
pub struct ArbitraryStrategy<T> {
    generator: fn(&mut TestRng) -> T,
}

impl<T> Strategy for ArbitraryStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> GenResult<T> {
        Ok((self.generator)(rng))
    }
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Returns the canonical strategy for this type.
    fn arbitrary() -> ArbitraryStrategy<Self>;
}

/// Returns the canonical strategy for `A` (mirrors `proptest::arbitrary::any`).
pub fn any<A: Arbitrary>() -> ArbitraryStrategy<A> {
    A::arbitrary()
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary() -> ArbitraryStrategy<Self> {
                ArbitraryStrategy { generator: |rng| rng.next_u64() as $t }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary() -> ArbitraryStrategy<Self> {
        ArbitraryStrategy { generator: |rng| rng.next_u64() & 1 == 1 }
    }
}

impl Arbitrary for f64 {
    fn arbitrary() -> ArbitraryStrategy<Self> {
        // Finite values spanning a wide magnitude range; NaN/inf excluded so
        // generated data stays comparable.
        ArbitraryStrategy {
            generator: |rng| {
                let magnitude = rng.unit_f64() * 1e12;
                if rng.next_u64() & 1 == 1 {
                    magnitude
                } else {
                    -magnitude
                }
            },
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary() -> ArbitraryStrategy<Self> {
        ArbitraryStrategy { generator: |rng| (rng.unit_f64() * 2.0 - 1.0) as f32 * 1e6 }
    }
}

impl Arbitrary for char {
    fn arbitrary() -> ArbitraryStrategy<Self> {
        // Printable ASCII keeps generated text debuggable.
        ArbitraryStrategy { generator: |rng| (0x20 + rng.below(0x5f) as u8) as char }
    }
}
