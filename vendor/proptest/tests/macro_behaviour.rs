//! End-to-end exercises of the `proptest!` macro family: generation,
//! assertions, assumptions, weighted unions, collections, and strategy
//! combinators all running under the real test harness.

use std::collections::HashSet;

use proptest::prelude::*;

fn doubled() -> impl Strategy<Value = (u32, u32)> {
    (0u32..500).prop_map(|n| (n, n * 2))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn ranges_stay_in_bounds(n in 10usize..20, f in 0.0f64..1.0) {
        prop_assert!((10..20).contains(&n));
        prop_assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn assume_discards_without_failing(n in 0i32..100) {
        prop_assume!(n % 2 == 0);
        prop_assert_eq!(n % 2, 0);
    }

    #[test]
    fn combinators_compose(pair in doubled()) {
        prop_assert_eq!(pair.1, pair.0 * 2);
    }

    #[test]
    fn oneof_only_yields_listed_values(v in prop_oneof![3 => Just(1u8), 1 => Just(9u8)]) {
        prop_assert!(v == 1 || v == 9, "unexpected union value {}", v);
    }

    #[test]
    fn collections_respect_sizes(
        items in prop::collection::vec(0u16..50, 2..=5),
        set in prop::collection::hash_set(0u16..1000, 0..4),
    ) {
        prop_assert!((2..=5).contains(&items.len()));
        prop_assert!(set.len() < 4);
    }

    #[test]
    fn subsequences_preserve_order(sub in prop::sample::subsequence(vec![1, 2, 3, 4, 5], 1..=4)) {
        prop_assert!(!sub.is_empty() && sub.len() <= 4);
        let mut sorted = sub.clone();
        sorted.sort_unstable();
        prop_assert_eq!(&sub, &sorted, "subsequence must preserve input order");
        let distinct: HashSet<i32> = sub.iter().copied().collect();
        prop_assert_eq!(distinct.len(), sub.len(), "subsequence must not repeat items");
    }

    #[test]
    fn filters_apply(even in (0u64..1000).prop_filter("even only", |n| n % 2 == 0)) {
        prop_assert_eq!(even % 2, 0);
    }
}

// Deliberately declared without `#[test]` (the attribute is optional macro
// input) so it can be invoked manually under `catch_unwind` below.
proptest! {
    fn always_fails(n in 0u8..10) {
        prop_assert!(n > 100, "impossible bound for {}", n);
    }
}

#[test]
fn failing_case_panics_with_message() {
    let result = std::panic::catch_unwind(always_fails);
    let panic_message = *result.expect_err("must panic").downcast::<String>().expect("string");
    assert!(panic_message.contains("impossible bound"), "got: {panic_message}");
}

#[test]
fn deterministic_across_runs() {
    use proptest::strategy::Strategy;
    use proptest::test_runner::TestRng;

    let strategy = (0u64..1_000_000, 0u64..1_000_000);
    let mut first = TestRng::deterministic("determinism");
    let mut second = TestRng::deterministic("determinism");
    for _ in 0..50 {
        assert_eq!(strategy.generate(&mut first).unwrap(), strategy.generate(&mut second).unwrap());
    }
}
