//! Offline stand-in for `serde_json`.
//!
//! Implements the two halves the workspace actually uses:
//!
//! * **Encoding** — renders the vendored serde [`Content`] tree as JSON
//!   text (`to_string`, `to_string_pretty`).
//! * **Decoding** — a recursive-descent parser ([`from_str`]) producing a
//!   [`Value`] tree, added for the `lake-serve` wire protocol.  Unlike real
//!   serde_json there is no typed `Deserialize` path (the vendored serde's
//!   `Deserialize` is a marker trait); callers walk the [`Value`] with its
//!   accessors instead.
//!
//! Divergences from the real crate, documented rather than hidden:
//! [`Value::Object`] preserves insertion order in a `Vec` (real serde_json
//! uses a map), and duplicate keys are kept as-is with `get` returning the
//! first.  Round-tripping compact output through `from_str` + `to_string`
//! is byte-stable, which `lake-serve`'s tests rely on.

use std::fmt;

use serde::{Content, Serialize};

/// Serialization or parse error.
///
/// Encoding can only fail on a non-finite float, which JSON cannot
/// represent (mirroring real serde_json's behaviour of rejecting them);
/// parsing reports the byte offset of the offending input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON serialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, None, 0)?;
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, Some(2), 0)?;
    Ok(out)
}

fn write_content(
    content: &Content,
    out: &mut String,
    indent: Option<usize>,
    level: usize,
) -> Result<(), Error> {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(i) => out.push_str(&i.to_string()),
        Content::U64(u) => out.push_str(&u.to_string()),
        Content::F64(f) => {
            if !f.is_finite() {
                return Err(Error(format!("non-finite float {f} cannot be encoded")));
            }
            // `{:?}` keeps a trailing `.0` on integral floats, matching the
            // round-trippable formatting serde_json uses.
            out.push_str(&format!("{f:?}"));
        }
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_content(item, out, indent, level + 1)?;
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_escaped(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(value, out, indent, level + 1)?;
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * level));
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parsed JSON document (the decoding counterpart of [`Content`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Number (integer or floating point, see [`Number`]).
    Number(Number),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object.  Insertion-ordered (divergence from real serde_json's map);
    /// duplicate keys are preserved and [`Value::get`] returns the first.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// `true` for JSON `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is a number representable as `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The unsigned payload, if this is a number representable as `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The numeric payload widened to `f64`, if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Looks up `key` in an object (first match); `None` for other shapes.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl Serialize for Value {
    fn to_content(&self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(*b),
            Value::Number(n) => n.to_content(),
            Value::String(s) => Content::Str(s.clone()),
            Value::Array(items) => Content::Seq(items.iter().map(Serialize::to_content).collect()),
            Value::Object(entries) => {
                Content::Map(entries.iter().map(|(k, v)| (k.clone(), v.to_content())).collect())
            }
        }
    }
}

/// A JSON number, preserving whether the literal was integral.
///
/// Integer literals without sign parse as unsigned, with a leading `-` as
/// signed, and anything fractional/exponential (or overflowing 64 bits) as
/// `f64` — the same classification real serde_json applies, so re-encoding
/// a parsed number reproduces the original literal for compact output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Number(Repr);

#[derive(Debug, Clone, Copy, PartialEq)]
enum Repr {
    I(i64),
    U(u64),
    F(f64),
}

impl Number {
    /// The value as `i64`, when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self.0 {
            Repr::I(i) => Some(i),
            Repr::U(u) => i64::try_from(u).ok(),
            Repr::F(_) => None,
        }
    }

    /// The value as `u64`, when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self.0 {
            Repr::I(i) => u64::try_from(i).ok(),
            Repr::U(u) => Some(u),
            Repr::F(_) => None,
        }
    }

    /// The value widened to `f64` (lossy above 2^53, like the real crate).
    pub fn as_f64(&self) -> f64 {
        match self.0 {
            Repr::I(i) => i as f64,
            Repr::U(u) => u as f64,
            Repr::F(f) => f,
        }
    }

    /// `true` when the literal was fractional or exponential.
    pub fn is_f64(&self) -> bool {
        matches!(self.0, Repr::F(_))
    }
}

impl Serialize for Number {
    fn to_content(&self) -> Content {
        match self.0 {
            Repr::I(i) => Content::I64(i),
            Repr::U(u) => Content::U64(u),
            Repr::F(f) => Content::F64(f),
        }
    }
}

/// Nesting depth cap for the parser: the server feeds it untrusted request
/// bodies, and unbounded recursion on `[[[[…` would overflow the stack.
const MAX_DEPTH: usize = 128;

/// Parses a JSON document.
///
/// Accepts exactly one top-level value surrounded by optional whitespace;
/// trailing garbage is an error.  Strings must be valid UTF-8 with standard
/// escapes (including `\uXXXX` surrogate pairs).
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut parser = Parser { bytes: input.as_bytes(), pos: 0 };
    parser.skip_whitespace();
    let value = parser.parse_value(0)?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> Error {
        Error(format!("{message} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_literal(&mut self, literal: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{literal}`")))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("JSON nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.expect_literal("null", Value::Null),
            Some(b't') => self.expect_literal("true", Value::Bool(true)),
            Some(b'f') => self.expect_literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(depth),
            Some(b'{') => self.parse_object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value, Error> {
        self.pos += 1; // consume '['
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value(depth + 1)?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value, Error> {
        self.pos += 1; // consume '{'
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_whitespace();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key in object"));
            }
            let key = self.parse_string()?;
            self.skip_whitespace();
            if self.peek() != Some(b':') {
                return Err(self.err("expected `:` after object key"));
            }
            self.pos += 1;
            self.skip_whitespace();
            let value = self.parse_value(depth + 1)?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.pos += 1; // consume opening quote
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes in one go.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let run = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?;
                out.push_str(run);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.parse_escape()?);
                }
                Some(_) => return Err(self.err("unescaped control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_escape(&mut self) -> Result<char, Error> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{0008}',
            b'f' => '\u{000c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let unit = self.parse_hex4()?;
                if (0xD800..0xDC00).contains(&unit) {
                    // High surrogate: must be followed by `\uXXXX` low half.
                    if self.peek() != Some(b'\\') || self.bytes.get(self.pos + 1) != Some(&b'u') {
                        return Err(self.err("unpaired surrogate escape"));
                    }
                    self.pos += 2;
                    let low = self.parse_hex4()?;
                    if !(0xDC00..0xE000).contains(&low) {
                        return Err(self.err("invalid low surrogate escape"));
                    }
                    let combined = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                    char::from_u32(combined).ok_or_else(|| self.err("invalid surrogate pair"))?
                } else if (0xDC00..0xE000).contains(&unit) {
                    return Err(self.err("unpaired surrogate escape"));
                } else {
                    char::from_u32(unit).ok_or_else(|| self.err("invalid unicode escape"))?
                }
            }
            _ => return Err(self.err("invalid escape character")),
        })
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let unit =
            u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape digits"))?;
        self.pos = end;
        Ok(unit)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        if !self.peek().is_some_and(|c| c.is_ascii_digit()) {
            return Err(self.err("expected digit in number"));
        }
        let mut integral = true;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let literal =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number literals are ASCII");
        if integral {
            if negative {
                if let Ok(i) = literal.parse::<i64>() {
                    return Ok(Value::Number(Number(Repr::I(i))));
                }
            } else if let Ok(u) = literal.parse::<u64>() {
                return Ok(Value::Number(Number(Repr::U(u))));
            }
        }
        let f: f64 = literal.parse().map_err(|_| self.err("invalid number literal"))?;
        if !f.is_finite() {
            return Err(self.err("number literal overflows f64"));
        }
        Ok(Value::Number(Number(Repr::F(f))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_roundtrip_shapes() {
        let content = vec![("k".to_string(), 1i64)];
        // Vec<(String, i64)> serializes as a sequence of pairs.
        assert_eq!(to_string(&content).unwrap(), "[[\"k\",1]]");
    }

    #[test]
    fn pretty_indents_maps() {
        struct Pair;
        impl Serialize for Pair {
            fn to_content(&self) -> Content {
                Content::Map(vec![
                    ("a".into(), Content::I64(1)),
                    ("b".into(), Content::Str("x\"y".into())),
                ])
            }
        }
        let json = to_string_pretty(&Pair).unwrap();
        assert_eq!(json, "{\n  \"a\": 1,\n  \"b\": \"x\\\"y\"\n}");
    }

    #[test]
    fn non_finite_floats_error() {
        assert!(to_string(&f64::NAN).is_err());
        assert!(to_string(&f64::INFINITY).is_err());
    }

    #[test]
    fn floats_keep_fractional_marker() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str(" true ").unwrap(), Value::Bool(true));
        assert_eq!(from_str("false").unwrap(), Value::Bool(false));
        assert_eq!(from_str("42").unwrap().as_u64(), Some(42));
        assert_eq!(from_str("-7").unwrap().as_i64(), Some(-7));
        assert_eq!(from_str("1.5").unwrap().as_f64(), Some(1.5));
        assert_eq!(from_str("2e3").unwrap().as_f64(), Some(2000.0));
        assert_eq!(from_str("\"hi\"").unwrap().as_str(), Some("hi"));
    }

    #[test]
    fn parses_containers_and_get() {
        let doc = from_str(r#"{"group":"g1","rows":[[1,"x",null],[2,"y",true]]}"#).unwrap();
        assert_eq!(doc.get("group").and_then(Value::as_str), Some("g1"));
        let rows = doc.get("rows").and_then(Value::as_array).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].as_array().unwrap()[0].as_i64(), Some(1));
        assert!(rows[0].as_array().unwrap()[2].is_null());
        assert_eq!(rows[1].as_array().unwrap()[2].as_bool(), Some(true));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn parses_string_escapes() {
        let doc = from_str(r#""a\"b\\c\n\t\u0041\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(doc.as_str(), Some("a\"b\\c\n\tAé😀"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "{a:1}",
            "nul",
            "01x",
            "\"unterminated",
            "1 2",
            "[1] extra",
            "\"\\ud800\"",
        ] {
            assert!(from_str(bad).is_err(), "accepted malformed input {bad:?}");
        }
    }

    #[test]
    fn rejects_pathological_nesting() {
        let deep = "[".repeat(5000) + &"]".repeat(5000);
        assert!(from_str(&deep).is_err());
    }

    #[test]
    fn compact_output_reparses_byte_stable() {
        let source = r#"{"a":[1,-2,3.5,"x\ny",null,true],"b":{"c":[]},"d":"é"}"#;
        let parsed = from_str(source).unwrap();
        let rendered = to_string(&parsed).unwrap();
        assert_eq!(rendered, source);
        assert_eq!(from_str(&rendered).unwrap(), parsed);
    }
}
