//! Offline stand-in for `serde_json`: renders the vendored serde [`Content`]
//! tree as JSON text.  Only the encoding half the workspace uses is
//! implemented (`to_string`, `to_string_pretty`).

use std::fmt;

use serde::{Content, Serialize};

/// Serialization error.
///
/// The only failure the encoder can hit is a non-finite float, which JSON
/// cannot represent (mirroring real serde_json's behaviour of rejecting them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON serialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, None, 0)?;
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, Some(2), 0)?;
    Ok(out)
}

fn write_content(
    content: &Content,
    out: &mut String,
    indent: Option<usize>,
    level: usize,
) -> Result<(), Error> {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(i) => out.push_str(&i.to_string()),
        Content::U64(u) => out.push_str(&u.to_string()),
        Content::F64(f) => {
            if !f.is_finite() {
                return Err(Error(format!("non-finite float {f} cannot be encoded")));
            }
            // `{:?}` keeps a trailing `.0` on integral floats, matching the
            // round-trippable formatting serde_json uses.
            out.push_str(&format!("{f:?}"));
        }
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_content(item, out, indent, level + 1)?;
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_escaped(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(value, out, indent, level + 1)?;
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * level));
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_roundtrip_shapes() {
        let content = vec![("k".to_string(), 1i64)];
        // Vec<(String, i64)> serializes as a sequence of pairs.
        assert_eq!(to_string(&content).unwrap(), "[[\"k\",1]]");
    }

    #[test]
    fn pretty_indents_maps() {
        struct Pair;
        impl Serialize for Pair {
            fn to_content(&self) -> Content {
                Content::Map(vec![
                    ("a".into(), Content::I64(1)),
                    ("b".into(), Content::Str("x\"y".into())),
                ])
            }
        }
        let json = to_string_pretty(&Pair).unwrap();
        assert_eq!(json, "{\n  \"a\": 1,\n  \"b\": \"x\\\"y\"\n}");
    }

    #[test]
    fn non_finite_floats_error() {
        assert!(to_string(&f64::NAN).is_err());
        assert!(to_string(&f64::INFINITY).is_err());
    }

    #[test]
    fn floats_keep_fractional_marker() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
    }
}
