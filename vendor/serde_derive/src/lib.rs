//! Derive macros for the vendored `serde` stand-in.
//!
//! `syn`/`quote` are unavailable offline, so the item is parsed directly from
//! the `proc_macro` token stream.  Supported shapes cover everything the
//! workspace derives on: non-generic structs (named, tuple, unit) and enums
//! (unit, tuple and struct variants), plus the `#[serde(skip)]` field
//! attribute.  Anything richer panics with a clear message at expansion time
//! rather than emitting wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field: name (or tuple index) plus whether `#[serde(skip)]` was present.
struct Field {
    name: String,
    skip: bool,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum Item {
    NamedStruct { name: String, fields: Vec<Field> },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

/// Derives the vendored `serde::Serialize` (externally-tagged, JSON-shaped).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::NamedStruct { fields, .. } => serialize_named_fields(fields, "&self."),
        Item::TupleStruct { arity, .. } => serialize_tuple_body(*arity),
        Item::UnitStruct { name } => {
            format!("::serde::Content::Str(::std::string::String::from(\"{name}\"))")
        }
        Item::Enum { variants, .. } => serialize_enum_body(variants),
    };
    let name = item_name(&item);
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::Content {{\n\
                 {body}\n\
             }}\n\
         }}"
    );
    out.parse().expect("serde_derive produced invalid Rust")
}

/// Derives the vendored `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = item_name(&item);
    format!("impl ::serde::Deserialize for {name} {{}}")
        .parse()
        .expect("serde_derive produced invalid Rust")
}

fn item_name(item: &Item) -> &str {
    match item {
        Item::NamedStruct { name, .. }
        | Item::TupleStruct { name, .. }
        | Item::UnitStruct { name }
        | Item::Enum { name, .. } => name,
    }
}

fn serialize_named_fields(fields: &[Field], access_prefix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .filter(|f| !f.skip)
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{0}\"), \
                 ::serde::Serialize::to_content({access_prefix}{0}))",
                f.name
            )
        })
        .collect();
    format!("::serde::Content::Map(::std::vec![{}])", entries.join(", "))
}

fn serialize_tuple_body(arity: usize) -> String {
    if arity == 1 {
        // Newtype structs serialize transparently, as in serde.
        return "::serde::Serialize::to_content(&self.0)".to_string();
    }
    let items: Vec<String> =
        (0..arity).map(|i| format!("::serde::Serialize::to_content(&self.{i})")).collect();
    format!("::serde::Content::Seq(::std::vec![{}])", items.join(", "))
}

fn serialize_enum_body(variants: &[Variant]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|v| {
            let vname = &v.name;
            match &v.shape {
                VariantShape::Unit => format!(
                    "Self::{vname} => \
                     ::serde::Content::Str(::std::string::String::from(\"{vname}\"))"
                ),
                VariantShape::Tuple(1) => format!(
                    "Self::{vname}(f0) => ::serde::Content::Map(::std::vec![(\
                     ::std::string::String::from(\"{vname}\"), \
                     ::serde::Serialize::to_content(f0))])"
                ),
                VariantShape::Tuple(n) => {
                    let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                    let items: Vec<String> = binds
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_content({b})"))
                        .collect();
                    format!(
                        "Self::{vname}({}) => ::serde::Content::Map(::std::vec![(\
                         ::std::string::String::from(\"{vname}\"), \
                         ::serde::Content::Seq(::std::vec![{}]))])",
                        binds.join(", "),
                        items.join(", ")
                    )
                }
                VariantShape::Struct(fields) => {
                    let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                    let inner = serialize_named_fields(fields, "");
                    format!(
                        "Self::{vname} {{ {} }} => ::serde::Content::Map(::std::vec![(\
                         ::std::string::String::from(\"{vname}\"), {inner})])",
                        binds.join(", ")
                    )
                }
            }
        })
        .collect();
    format!("match self {{ {} }}", arms.join(",\n"))
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attributes(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);

    let keyword = expect_ident(&tokens, &mut pos);
    let name = expect_ident(&tokens, &mut pos);
    if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stub: generic type `{name}` is not supported");
    }

    match keyword.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::NamedStruct { name, fields: parse_named_fields(g.stream()) }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct { name, arity: parse_tuple_arity(g.stream()) }
            }
            _ => Item::UnitStruct { name },
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::Enum { name, variants: parse_variants(g.stream()) }
            }
            other => panic!("serde_derive stub: malformed enum `{name}`: {other:?}"),
        },
        other => panic!("serde_derive stub: expected struct or enum, found `{other}`"),
    }
}

/// Skips `#[...]` attribute groups (doc comments included), returning whether
/// any of them was `#[serde(skip)]`.
fn skip_attributes(tokens: &[TokenTree], pos: &mut usize) -> bool {
    let mut skip = false;
    while matches!(tokens.get(*pos), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(*pos + 1) {
            if attribute_is_serde_skip(g.stream()) {
                skip = true;
            }
            *pos += 2;
        } else {
            panic!("serde_derive stub: `#` not followed by an attribute group");
        }
    }
    skip
}

/// Recognises `#[serde(skip)]`.  Any *other* `#[serde(...)]` argument
/// (rename, default, flatten, ...) is not implemented by this stub, so it
/// panics at expansion time rather than silently emitting JSON that diverges
/// from what real serde would produce.
fn attribute_is_serde_skip(stream: TokenStream) -> bool {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args)))
            if name.to_string() == "serde" =>
        {
            let args: Vec<TokenTree> = args.stream().into_iter().collect();
            match args.as_slice() {
                [TokenTree::Ident(arg)] if arg.to_string() == "skip" => true,
                other => panic!(
                    "serde_derive stub: unsupported #[serde({})] — only #[serde(skip)] \
                     is implemented; extend vendor/serde_derive if you need more",
                    other.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(" ")
                ),
            }
        }
        _ => false,
    }
}

fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(tokens.get(*pos), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        *pos += 1;
        // `pub(crate)` / `pub(super)` carry a parenthesized scope.
        if matches!(
            tokens.get(*pos),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *pos += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(i)) => {
            *pos += 1;
            i.to_string()
        }
        other => panic!("serde_derive stub: expected identifier, found {other:?}"),
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        let skip = skip_attributes(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut pos);
        let name = expect_ident(&tokens, &mut pos);
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => panic!("serde_derive stub: expected `:` after field `{name}`, got {other:?}"),
        }
        skip_type(&tokens, &mut pos);
        fields.push(Field { name, skip });
    }
    fields
}

/// Advances past one type, stopping at a top-level `,` (which is consumed).
/// Angle brackets are plain puncts in the token stream, so nesting depth is
/// tracked to avoid splitting on commas inside `HashMap<String, usize>`.
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut depth = 0i32;
    while let Some(token) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    *pos += 1;
                    return;
                }
                _ => {}
            }
        }
        *pos += 1;
    }
}

fn parse_tuple_arity(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut arity = 0;
    while pos < tokens.len() {
        if skip_attributes(&tokens, &mut pos) {
            panic!("serde_derive stub: #[serde(skip)] on tuple fields is not supported");
        }
        if pos >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut pos);
        skip_type(&tokens, &mut pos);
        arity += 1;
    }
    arity
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        if skip_attributes(&tokens, &mut pos) {
            panic!("serde_derive stub: #[serde(skip)] on enum variants is not supported");
        }
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos);
        let shape = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantShape::Tuple(parse_tuple_arity(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantShape::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        // Consume the trailing comma between variants, if present.
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}
