//! Offline stand-in for [`criterion`](https://docs.rs/criterion).
//!
//! Implements the measurement surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, benchmark groups, `sample_size`,
//! `bench_with_input`, `Bencher::iter` — with straightforward wall-clock
//! timing instead of criterion's statistical machinery.  Each sample times a
//! batch of iterations sized so a sample takes at least ~1 ms; the per-
//! iteration mean/min/max over the samples is reported on stdout as
//!
//! ```text
//! bench: group/id  mean 1.234 ms  min 1.201 ms  max 1.402 ms  (10 samples)
//! ```
//!
//! which is stable enough to diff across runs and cheap enough for CI's
//! `cargo bench --no-run` compile check to stay the only gating use.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Minimum wall-clock time per measured sample.
const MIN_SAMPLE_TIME: Duration = Duration::from_millis(1);

/// Default number of measured samples per benchmark.
const DEFAULT_SAMPLE_SIZE: usize = 10;

/// Prevents the optimizer from eliding a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size: DEFAULT_SAMPLE_SIZE }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut routine: impl FnMut(&mut Bencher),
    ) {
        let name = name.into();
        run_benchmark(&name, DEFAULT_SAMPLE_SIZE, &mut routine);
    }
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples to measure per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        assert!(samples > 0, "sample_size must be positive");
        self.sample_size = samples;
        self
    }

    /// Benchmarks `routine` against a borrowed input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, self.sample_size, &mut |bencher| routine(bencher, input));
        self
    }

    /// Benchmarks a routine with no extra input.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into());
        run_benchmark(&label, self.sample_size, &mut routine);
        self
    }

    /// Ends the group (kept for API compatibility; reporting is immediate).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; measures the routine under `iter`.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, recording per-iteration durations over all samples.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up and batch sizing: grow the batch until one batch takes at
        // least MIN_SAMPLE_TIME so timer resolution does not dominate.
        let mut batch: u32 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= MIN_SAMPLE_TIME || batch >= 1 << 20 {
                break;
            }
            batch = batch.saturating_mul(2);
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                hint::black_box(routine());
            }
            self.samples.push(start.elapsed() / batch);
        }
    }
}

fn run_benchmark(label: &str, sample_size: usize, routine: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher { samples: Vec::new(), sample_size };
    routine(&mut bencher);
    if bencher.samples.is_empty() {
        println!("bench: {label}  (no measurement taken)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = *bencher.samples.iter().min().expect("non-empty samples");
    let max = *bencher.samples.iter().max().expect("non-empty samples");
    println!(
        "bench: {label}  mean {}  min {}  max {}  ({} samples)",
        format_duration(mean),
        format_duration(min),
        format_duration(max),
        bencher.samples.len()
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// Declares a group of benchmark functions (stand-in for criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    ($group_name:ident, $($target:path),+ $(,)?) => {
        fn $group_name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group_name:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` appends harness flags such as `--bench`; this
            // harness has no options, so arguments are ignored.
            $( $group_name(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("smoke");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
        assert_eq!(BenchmarkId::from_parameter("mistral").label, "mistral");
    }

    #[test]
    fn duration_formatting_picks_units() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(format_duration(Duration::from_micros(12)), "12.000 µs");
        assert_eq!(format_duration(Duration::from_millis(12)), "12.000 ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.000 s");
    }
}
