//! Offline stand-in for [`serde`](https://serde.rs).
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the *minimal* serialization surface it actually uses:
//! `#[derive(Serialize, Deserialize)]` on plain structs and enums (including
//! `#[serde(skip)]` on fields) plus enough trait impls for the primitive and
//! container types appearing in those definitions.  `serde_json` (also
//! vendored) renders the [`Content`] tree produced here.
//!
//! The derived `Serialize` follows serde's externally-tagged JSON conventions
//! (structs are objects, unit variants are strings, newtype variants are
//! single-key objects) so output stays compatible if the real crate is ever
//! substituted back in.  `Deserialize` is a marker trait only: the workspace
//! derives it for forward compatibility but never drives a deserializer.

use std::borrow::Cow;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value tree (akin to `serde_json::Value`).
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Content>),
    /// Ordered key/value map (field order is preserved).
    Map(Vec<(String, Content)>),
}

/// Types that can serialize themselves into a [`Content`] tree.
pub trait Serialize {
    /// Builds the serialized representation of `self`.
    fn to_content(&self) -> Content;
}

/// Marker trait mirroring `serde::Deserialize`.
///
/// Derived alongside `Serialize` for API fidelity; no deserializer exists in
/// this stub, so the trait intentionally has no methods.
pub trait Deserialize: Sized {}

macro_rules! impl_serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {}
    )*};
}

macro_rules! impl_serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {}
    )*};
}

impl_serialize_signed!(i8, i16, i32, i64, isize);
impl_serialize_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}
impl Deserialize for f64 {}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}
impl Deserialize for bool {}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}
impl Deserialize for char {}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}
impl Deserialize for String {}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for Cow<'_, str> {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![self.0.to_content(), self.1.to_content()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![self.0.to_content(), self.1.to_content(), self.2.to_content()])
    }
}

impl<K: ToString, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_content(&self) -> Content {
        let mut entries: Vec<(String, Content)> =
            self.iter().map(|(k, v)| (k.to_string(), v.to_content())).collect();
        // HashMap iteration order is unstable; sort for deterministic output.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(self.iter().map(|(k, v)| (k.to_string(), v.to_content())).collect())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_serialize() {
        assert_eq!(3i32.to_content(), Content::I64(3));
        assert_eq!(3usize.to_content(), Content::U64(3));
        assert_eq!(true.to_content(), Content::Bool(true));
        assert_eq!("x".to_string().to_content(), Content::Str("x".into()));
        assert_eq!(None::<i32>.to_content(), Content::Null);
    }

    #[test]
    fn containers_serialize() {
        assert_eq!(
            vec![1i64, 2].to_content(),
            Content::Seq(vec![Content::I64(1), Content::I64(2)])
        );
        let mut map = BTreeMap::new();
        map.insert("a", 1u8);
        assert_eq!(map.to_content(), Content::Map(vec![("a".into(), Content::U64(1))]));
    }
}
