//! Outer union: padding every base tuple into the integrated schema.

use lake_table::Table;

use crate::schema::IntegrationSchema;
use crate::tuple::IntegratedTuple;

/// Pads every tuple of every table into the integrated schema (missing
/// attributes become nulls).  This is the first step of every FD algorithm
/// in this crate; the result is the "outer union" relation of the ALITE
/// pipeline.
///
/// Rows with no present value at all are skipped: they carry no information,
/// can never join anything, and would otherwise only add a subsumed all-null
/// tuple to the result.
pub fn outer_union(schema: &IntegrationSchema, tables: &[Table]) -> Vec<IntegratedTuple> {
    let mut out = Vec::with_capacity(tables.iter().map(|t| t.num_rows()).sum());
    for (t_idx, table) in tables.iter().enumerate() {
        for (r_idx, row) in table.rows().iter().enumerate() {
            if row.iter().all(|v| v.is_null()) {
                continue;
            }
            out.push(IntegratedTuple::from_base(schema, t_idx, table.name(), r_idx, row));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lake_table::{TableBuilder, Value};

    #[test]
    fn pads_all_tuples() {
        let tables = vec![
            TableBuilder::new("T1", ["City", "Country"])
                .row(["Berlin", "Germany"])
                .row(["Toronto", "Canada"])
                .build()
                .unwrap(),
            TableBuilder::new("T2", ["City", "Rate"]).row(["Boston", "62%"]).build().unwrap(),
        ];
        let schema = IntegrationSchema::from_matching_headers(&tables);
        let tuples = outer_union(&schema, &tables);
        assert_eq!(tuples.len(), 3);
        for t in &tuples {
            assert_eq!(t.values().len(), schema.num_columns());
            assert_eq!(t.provenance().len(), 1);
        }
        // The T2 tuple has nulls in the Country column.
        let boston = tuples.iter().find(|t| t.values().contains(&Value::text("Boston"))).unwrap();
        assert_eq!(boston.non_null_count(), 2);
    }

    #[test]
    fn empty_tables_produce_no_tuples() {
        let tables = vec![
            TableBuilder::new("T1", ["a"]).build().unwrap(),
            TableBuilder::new("T2", ["a"]).build().unwrap(),
        ];
        let schema = IntegrationSchema::from_matching_headers(&tables);
        assert!(outer_union(&schema, &tables).is_empty());
    }
}
