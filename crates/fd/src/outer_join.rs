//! Full outer joins over the integrated schema — the non-associative baseline.
//!
//! The paper motivates Full Disjunction by the fact that the binary full
//! outer join is *not associative*: applying it to a set of tables in
//! different orders yields different sets of partially-integrated tuples.
//! This module provides the binary operator and a left-deep sequential
//! multi-way version so the difference can be demonstrated (see the
//! `fd_vs_outer_join` integration test and the `ablations` harness binary).

use lake_table::Table;

use crate::outer_union::outer_union;
use crate::schema::IntegrationSchema;
use crate::subsume::remove_subsumed;
use crate::tuple::{IntegratedTable, IntegratedTuple};

/// Binary natural full outer join of two sets of integrated tuples.
///
/// A left and right tuple join when they are joinable (consistent and
/// overlapping); tuples without a partner are preserved as-is.
pub fn full_outer_join(
    left: &[IntegratedTuple],
    right: &[IntegratedTuple],
) -> Vec<IntegratedTuple> {
    let mut out = Vec::with_capacity(left.len() + right.len());
    let mut right_matched = vec![false; right.len()];
    for l in left {
        let mut matched = false;
        for (ri, r) in right.iter().enumerate() {
            if l.joinable_with(r) {
                out.push(l.merge(r));
                right_matched[ri] = true;
                matched = true;
            }
        }
        if !matched {
            out.push(l.clone());
        }
    }
    for (ri, r) in right.iter().enumerate() {
        if !right_matched[ri] {
            out.push(r.clone());
        }
    }
    out
}

/// Left-deep sequential full outer join of many tables, in the order given by
/// `order` (indices into `tables`).  Subsumed tuples are removed at the end
/// so results are comparable with Full Disjunction.
pub fn sequential_outer_join(
    schema: &IntegrationSchema,
    tables: &[Table],
    order: &[usize],
) -> IntegratedTable {
    assert!(!order.is_empty(), "join order must name at least one table");
    let all = outer_union(schema, tables);
    // Group padded tuples by source table (provenance table name).
    let mut grouped: Vec<Vec<IntegratedTuple>> = vec![Vec::new(); tables.len()];
    for tuple in all {
        let table_name = tuple
            .provenance()
            .iter()
            .next()
            .expect("base tuples always carry provenance")
            .table
            .clone();
        let idx = tables
            .iter()
            .position(|t| t.name() == table_name)
            .expect("provenance table must exist");
        grouped[idx].push(tuple);
    }

    let mut acc = grouped[order[0]].clone();
    for &next in &order[1..] {
        acc = full_outer_join(&acc, &grouped[next]);
    }
    let tuples = remove_subsumed(acc);
    IntegratedTable::new(schema.column_names().to_vec(), tuples).sorted()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alite::full_disjunction;
    use lake_table::TableBuilder;

    /// Three tables where the outer-join result depends on the order:
    /// A and C only join "through" B.
    fn chain_tables() -> Vec<Table> {
        vec![
            TableBuilder::new("A", ["x", "y"]).row(["1", "2"]).build().unwrap(),
            TableBuilder::new("B", ["y", "z"]).row(["2", "3"]).build().unwrap(),
            TableBuilder::new("C", ["z", "w"]).row(["3", "4"]).build().unwrap(),
        ]
    }

    #[test]
    fn binary_join_preserves_unmatched() {
        let tables = chain_tables();
        let schema = IntegrationSchema::from_matching_headers(&tables);
        let padded = outer_union(&schema, &tables);
        let a = vec![padded[0].clone()];
        let c = vec![padded[2].clone()];
        let joined = full_outer_join(&a, &c);
        // A and C do not overlap: both survive unmatched.
        assert_eq!(joined.len(), 2);
    }

    #[test]
    fn outer_join_is_order_sensitive_fd_is_not() {
        let tables = chain_tables();
        let schema = IntegrationSchema::from_matching_headers(&tables);

        // Order A, B, C: A⟗B joins (via y), then ⟗C joins (via z) → 1 tuple.
        let abc = sequential_outer_join(&schema, &tables, &[0, 1, 2]);
        // Order A, C, B: A⟗C has no join, so the intermediate keeps A and C
        // apart; joining B afterwards attaches it to one of them (both, in
        // fact, producing partial tuples) — the result differs from ABC.
        let acb = sequential_outer_join(&schema, &tables, &[0, 2, 1]);

        assert_eq!(abc.len(), 1, "{:#?}", abc.tuples());
        assert!(acb.len() > 1, "ACB order should leave partial tuples: {:#?}", acb.tuples());

        // Full Disjunction is order-free and equals the best case.
        let fd = full_disjunction(&schema, &tables);
        assert_eq!(fd.len(), 1);
        assert_eq!(fd.tuples()[0].non_null_count(), 4);
    }

    #[test]
    fn single_table_order() {
        let tables = chain_tables();
        let schema = IntegrationSchema::from_matching_headers(&tables);
        let only_a = sequential_outer_join(&schema, &tables, &[0]);
        assert_eq!(only_a.len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one table")]
    fn empty_order_panics() {
        let tables = chain_tables();
        let schema = IntegrationSchema::from_matching_headers(&tables);
        sequential_outer_join(&schema, &tables, &[]);
    }
}
