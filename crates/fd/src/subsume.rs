//! Subsumption removal.
//!
//! A tuple that agrees with another tuple on all of its non-null attributes
//! and has no information of its own (it is "contained" in the other tuple)
//! is redundant in the FD result.  This module removes such tuples, after
//! first deduplicating value-identical tuples (merging their provenance).

use std::collections::HashMap;

use lake_table::Value;

use crate::tuple::IntegratedTuple;

/// Deduplicates value-identical tuples, unioning their provenance.
/// The first occurrence's position is kept, so ordering stays deterministic.
pub fn dedup_by_values(tuples: Vec<IntegratedTuple>) -> Vec<IntegratedTuple> {
    let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
    let mut out: Vec<IntegratedTuple> = Vec::with_capacity(tuples.len());
    for tuple in tuples {
        match index.get(tuple.values()) {
            Some(&i) => {
                let prov = tuple.provenance().clone();
                out[i].absorb_provenance(&prov);
            }
            None => {
                index.insert(tuple.values().to_vec(), out.len());
                out.push(tuple);
            }
        }
    }
    out
}

/// Removes tuples that are strictly subsumed by another tuple.  The input is
/// first deduplicated by values; the surviving tuple absorbs the provenance
/// of every tuple it subsumes (so the provenance column of Figure 1 lists all
/// base tuples an output row represents).
pub fn remove_subsumed(tuples: Vec<IntegratedTuple>) -> Vec<IntegratedTuple> {
    let mut tuples = dedup_by_values(tuples);
    if tuples.len() <= 1 {
        return tuples;
    }

    // Index tuples by (column, value) so a potential subsumer of `t` can be
    // found among the tuples sharing `t`'s first non-null cell.
    let mut by_cell: HashMap<(usize, Value), Vec<usize>> = HashMap::new();
    for (idx, tuple) in tuples.iter().enumerate() {
        for col in tuple.non_null_columns() {
            by_cell.entry((col, tuple.value(col).clone())).or_default().push(idx);
        }
    }

    let n = tuples.len();
    let mut subsumed_by: Vec<Option<usize>> = vec![None; n];
    for i in 0..n {
        let probe_col = match tuples[i].non_null_columns().next() {
            Some(c) => c,
            None => continue, // all-null tuples are kept verbatim
        };
        let key = (probe_col, tuples[i].value(probe_col).clone());
        if let Some(candidates) = by_cell.get(&key) {
            for &j in candidates {
                if j == i || subsumed_by[j].is_some() {
                    continue;
                }
                if tuples[j].non_null_count() > tuples[i].non_null_count()
                    && tuples[j].subsumes(&tuples[i])
                {
                    subsumed_by[i] = Some(j);
                    break;
                }
            }
        }
    }

    // Absorb provenance along subsumption chains (i -> j -> ... -> root).
    for i in 0..n {
        if let Some(mut j) = subsumed_by[i] {
            while let Some(next) = subsumed_by[j] {
                j = next;
            }
            let prov = tuples[i].provenance().clone();
            tuples[j].absorb_provenance(&prov);
        }
    }

    tuples
        .into_iter()
        .enumerate()
        .filter(|(i, _)| subsumed_by[*i].is_none())
        .map(|(_, t)| t)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lake_table::{ProvenanceSet, TupleId};

    fn tuple(values: Vec<Value>, prov: &[(&str, usize)]) -> IntegratedTuple {
        let provenance: ProvenanceSet = prov.iter().map(|(t, r)| TupleId::new(*t, *r)).collect();
        IntegratedTuple::new(values, provenance)
    }

    #[test]
    fn dedup_merges_provenance() {
        let tuples = vec![
            tuple(vec![Value::text("a")], &[("T1", 0)]),
            tuple(vec![Value::text("a")], &[("T2", 3)]),
            tuple(vec![Value::text("b")], &[("T1", 1)]),
        ];
        let out = dedup_by_values(tuples);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].provenance().len(), 2);
    }

    #[test]
    fn removes_strictly_subsumed() {
        let tuples = vec![
            tuple(vec![Value::text("Berlin"), Value::Null], &[("T1", 0)]),
            tuple(vec![Value::text("Berlin"), Value::text("63%")], &[("T2", 0)]),
            tuple(vec![Value::text("Toronto"), Value::Null], &[("T1", 1)]),
        ];
        let out = remove_subsumed(tuples);
        assert_eq!(out.len(), 2);
        // The survivor absorbed the subsumed tuple's provenance.
        let berlin = out.iter().find(|t| t.value(0) == &Value::text("Berlin")).unwrap();
        assert_eq!(berlin.provenance().len(), 2);
        assert!(berlin.provenance().contains(&TupleId::new("T1", 0)));
    }

    #[test]
    fn incomparable_tuples_are_kept() {
        let tuples = vec![
            tuple(vec![Value::text("x"), Value::Null], &[("T1", 0)]),
            tuple(vec![Value::Null, Value::text("y")], &[("T2", 0)]),
        ];
        let out = remove_subsumed(tuples);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn chain_of_subsumption_collapses_to_the_maximal_tuple() {
        let tuples = vec![
            tuple(vec![Value::text("a"), Value::Null, Value::Null], &[("T1", 0)]),
            tuple(vec![Value::text("a"), Value::text("b"), Value::Null], &[("T2", 0)]),
            tuple(vec![Value::text("a"), Value::text("b"), Value::text("c")], &[("T3", 0)]),
        ];
        let out = remove_subsumed(tuples);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].non_null_count(), 3);
        assert_eq!(out[0].provenance().len(), 3);
    }

    #[test]
    fn equal_tuples_do_not_remove_each_other() {
        let tuples = vec![
            tuple(vec![Value::text("a")], &[("T1", 0)]),
            tuple(vec![Value::text("a")], &[("T2", 0)]),
        ];
        let out = remove_subsumed(tuples);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].provenance().len(), 2);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert!(remove_subsumed(Vec::new()).is_empty());
        let single = vec![tuple(vec![Value::text("only")], &[("T1", 0)])];
        assert_eq!(remove_subsumed(single).len(), 1);
    }
}
