//! Subsumption removal.
//!
//! A tuple that agrees with another tuple on all of its non-null attributes
//! and has no information of its own (it is "contained" in the other tuple)
//! is redundant in the FD result.  This module removes such tuples, after
//! first deduplicating value-identical tuples (merging their provenance).

use std::collections::HashMap;

use lake_table::Value;

use crate::tuple::IntegratedTuple;

/// Deduplicates value-identical tuples, unioning their provenance.
/// The first occurrence's position is kept, so ordering stays deterministic.
pub fn dedup_by_values(tuples: Vec<IntegratedTuple>) -> Vec<IntegratedTuple> {
    let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
    let mut out: Vec<IntegratedTuple> = Vec::with_capacity(tuples.len());
    for tuple in tuples {
        match index.get(tuple.values()) {
            Some(&i) => {
                let prov = tuple.provenance().clone();
                out[i].absorb_provenance(&prov);
            }
            None => {
                index.insert(tuple.values().to_vec(), out.len());
                out.push(tuple);
            }
        }
    }
    out
}

/// Removes tuples that are strictly subsumed by another tuple.  The input is
/// first deduplicated by values; the surviving tuple absorbs the provenance
/// of every tuple it subsumes (so the provenance column of Figure 1 lists all
/// base tuples an output row represents).
///
/// When several tuples subsume the same victim, the absorber is chosen
/// deterministically — most non-null values first, ties broken by the
/// tuples' value ordering — so the provenance layout of the result is a
/// function of the tuple *multiset*, never of the order the tuples arrived
/// in.  (Values are unique after deduplication, so the value ordering is a
/// total tie-break.)  A maximal subsumer is itself never subsumed: anything
/// subsuming it would subsume the victim too, with strictly more non-nulls,
/// and would have been chosen instead.
pub fn remove_subsumed(tuples: Vec<IntegratedTuple>) -> Vec<IntegratedTuple> {
    let mut tuples = dedup_by_values(tuples);
    if tuples.len() <= 1 {
        return tuples;
    }

    // Index tuples by (column, value) so a potential subsumer of `t` can be
    // found among the tuples sharing `t`'s first non-null cell.
    let mut by_cell: HashMap<(usize, Value), Vec<usize>> = HashMap::new();
    for (idx, tuple) in tuples.iter().enumerate() {
        for col in tuple.non_null_columns() {
            by_cell.entry((col, tuple.value(col).clone())).or_default().push(idx);
        }
    }

    let n = tuples.len();
    let mut absorbed_by: Vec<Option<usize>> = vec![None; n];
    for i in 0..n {
        let probe_col = match tuples[i].non_null_columns().next() {
            Some(c) => c,
            None => continue, // all-null tuples are kept verbatim
        };
        let key = (probe_col, tuples[i].value(probe_col).clone());
        if let Some(candidates) = by_cell.get(&key) {
            for &j in candidates {
                if j == i
                    || tuples[j].non_null_count() <= tuples[i].non_null_count()
                    || !tuples[j].subsumes(&tuples[i])
                {
                    continue;
                }
                let better = match absorbed_by[i] {
                    None => true,
                    Some(current) => {
                        let (new, old) =
                            (tuples[j].non_null_count(), tuples[current].non_null_count());
                        new > old || (new == old && tuples[j].values() < tuples[current].values())
                    }
                };
                if better {
                    absorbed_by[i] = Some(j);
                }
            }
        }
    }

    // Apply absorptions after every choice is fixed, so tie-breaks never see
    // half-updated provenance.  Every absorber is a survivor (see above), so
    // no chain-following is needed.
    for i in 0..n {
        if let Some(j) = absorbed_by[i] {
            debug_assert!(absorbed_by[j].is_none(), "absorber {j} is itself subsumed");
            let prov = tuples[i].provenance().clone();
            tuples[j].absorb_provenance(&prov);
        }
    }

    tuples
        .into_iter()
        .enumerate()
        .filter(|(i, _)| absorbed_by[*i].is_none())
        .map(|(_, t)| t)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lake_table::{ProvenanceSet, TupleId};

    fn tuple(values: Vec<Value>, prov: &[(&str, usize)]) -> IntegratedTuple {
        let provenance: ProvenanceSet = prov.iter().map(|(t, r)| TupleId::new(*t, *r)).collect();
        IntegratedTuple::new(values, provenance)
    }

    #[test]
    fn dedup_merges_provenance() {
        let tuples = vec![
            tuple(vec![Value::text("a")], &[("T1", 0)]),
            tuple(vec![Value::text("a")], &[("T2", 3)]),
            tuple(vec![Value::text("b")], &[("T1", 1)]),
        ];
        let out = dedup_by_values(tuples);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].provenance().len(), 2);
    }

    #[test]
    fn removes_strictly_subsumed() {
        let tuples = vec![
            tuple(vec![Value::text("Berlin"), Value::Null], &[("T1", 0)]),
            tuple(vec![Value::text("Berlin"), Value::text("63%")], &[("T2", 0)]),
            tuple(vec![Value::text("Toronto"), Value::Null], &[("T1", 1)]),
        ];
        let out = remove_subsumed(tuples);
        assert_eq!(out.len(), 2);
        // The survivor absorbed the subsumed tuple's provenance.
        let berlin = out.iter().find(|t| t.value(0) == &Value::text("Berlin")).unwrap();
        assert_eq!(berlin.provenance().len(), 2);
        assert!(berlin.provenance().contains(&TupleId::new("T1", 0)));
    }

    #[test]
    fn incomparable_tuples_are_kept() {
        let tuples = vec![
            tuple(vec![Value::text("x"), Value::Null], &[("T1", 0)]),
            tuple(vec![Value::Null, Value::text("y")], &[("T2", 0)]),
        ];
        let out = remove_subsumed(tuples);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn chain_of_subsumption_collapses_to_the_maximal_tuple() {
        let tuples = vec![
            tuple(vec![Value::text("a"), Value::Null, Value::Null], &[("T1", 0)]),
            tuple(vec![Value::text("a"), Value::text("b"), Value::Null], &[("T2", 0)]),
            tuple(vec![Value::text("a"), Value::text("b"), Value::text("c")], &[("T3", 0)]),
        ];
        let out = remove_subsumed(tuples);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].non_null_count(), 3);
        assert_eq!(out[0].provenance().len(), 3);
    }

    #[test]
    fn equal_tuples_do_not_remove_each_other() {
        let tuples = vec![
            tuple(vec![Value::text("a")], &[("T1", 0)]),
            tuple(vec![Value::text("a")], &[("T2", 0)]),
        ];
        let out = remove_subsumed(tuples);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].provenance().len(), 2);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert!(remove_subsumed(Vec::new()).is_empty());
        let single = vec![tuple(vec![Value::text("only")], &[("T1", 0)])];
        assert_eq!(remove_subsumed(single).len(), 1);
    }

    #[test]
    fn equal_count_subsumers_absorb_deterministically_by_content() {
        // Both ("a", "b") and ("a", "c") subsume ("a", ⊥) with the same
        // non-null count.  The victim's provenance must land on the
        // content-smaller subsumer ("a", "b") for every input permutation —
        // the survivor set and every survivor's provenance are a function of
        // the tuple multiset alone.
        let victim = || tuple(vec![Value::text("a"), Value::Null], &[("V", 0)]);
        let small = || tuple(vec![Value::text("a"), Value::text("b")], &[("S", 0)]);
        let large = || tuple(vec![Value::text("a"), Value::text("c")], &[("L", 0)]);

        let permutations: [Vec<IntegratedTuple>; 6] = [
            vec![victim(), small(), large()],
            vec![victim(), large(), small()],
            vec![small(), victim(), large()],
            vec![large(), victim(), small()],
            vec![small(), large(), victim()],
            vec![large(), small(), victim()],
        ];
        for permutation in permutations {
            let mut out = remove_subsumed(permutation);
            out.sort_by(|a, b| a.values().cmp(b.values()));
            assert_eq!(out.len(), 2);
            let b_tuple = &out[0];
            let c_tuple = &out[1];
            assert_eq!(b_tuple.value(1), &Value::text("b"));
            assert!(
                b_tuple.provenance().contains(&TupleId::new("V", 0)),
                "victim provenance must go to the content-smaller subsumer: {out:#?}"
            );
            assert_eq!(b_tuple.provenance().len(), 2);
            assert_eq!(c_tuple.provenance().len(), 1);
        }
    }

    #[test]
    fn larger_subsumer_wins_over_content_order() {
        // ("a", "b", ⊥) and ("a", "b", "c") both subsume ("a", ⊥, ⊥); the
        // three-value tuple absorbs it even though it is content-larger,
        // because non-null count dominates the tie-break.
        let tuples = vec![
            tuple(vec![Value::text("a"), Value::Null, Value::Null], &[("V", 0)]),
            tuple(vec![Value::text("a"), Value::text("b"), Value::text("c")], &[("L", 0)]),
            tuple(vec![Value::text("a"), Value::text("b"), Value::Null], &[("M", 0)]),
        ];
        let out = remove_subsumed(tuples);
        // The middle tuple is itself subsumed by the maximal one, so the
        // chain collapses entirely onto ("a", "b", "c").
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].provenance().len(), 3);
    }
}
