//! # lake-fd
//!
//! Full Disjunction (FD) algorithms over data lake tables.
//!
//! Full Disjunction (Galindo-Legaria 1994) is the associative extension of
//! the full outer join: it integrates a set of tables such that every base
//! tuple is represented, joinable tuples are combined *maximally*, and no
//! redundant (subsumed) tuple remains.  The paper builds its fuzzy
//! integration on top of the equi-join FD implementation of ALITE
//! (Khatiwada et al., VLDB 2022); this crate provides that substrate:
//!
//! * [`schema::IntegrationSchema`] — the integrated (universal) schema and
//!   the mapping from each source column to an integrated column;
//! * [`tuple::IntegratedTuple`] — tuples over the integrated schema with
//!   labeled nulls and provenance;
//! * [`mod@outer_union`] — padding every base tuple into the integrated schema;
//! * [`components`] — union–find partitioning of tuples into join-connected
//!   components (tuples in different components can never join), the trick
//!   that makes FD scale to the IMDB-style benchmark;
//! * [`complement`] — the complementation closure + subsumption removal that
//!   computes the exact FD inside one component;
//! * [`alite`] — the end-to-end scalable FD operator ([`alite::full_disjunction`]);
//! * [`parallel`] — the same operator with component closures scheduled on
//!   the shared work-stealing executor (`lake-runtime`);
//! * [`incremental`] — the delta-aware operator for lake-append workloads:
//!   component closures are memoised in a [`ComponentCache`] so an appended
//!   table recomputes only the components it actually touches;
//! * [`spec`] — a brute-force specification oracle used by property tests;
//! * [`outer_join`] — binary/sequential full outer joins, the non-associative
//!   baseline the paper contrasts FD with;
//! * [`stats`] — result statistics used by the experiment harness.

pub mod alite;
pub mod complement;
pub mod components;
pub mod incremental;
pub mod outer_join;
pub mod outer_union;
pub mod parallel;
pub mod schema;
pub mod spec;
pub mod stats;
pub mod subsume;
pub mod tuple;

pub use alite::{full_disjunction, FdOptions};
pub use incremental::{incremental_full_disjunction_with, ComponentCache};
pub use lake_runtime::RuntimeStats;
pub use outer_union::outer_union;
pub use parallel::{parallel_full_disjunction, parallel_full_disjunction_with};
pub use schema::IntegrationSchema;
pub use spec::specification_full_disjunction;
pub use stats::FdStats;
pub use tuple::{IntegratedTable, IntegratedTuple};
