//! Join-connectivity partitioning.
//!
//! Two integrated tuples can only ever be merged (directly or transitively)
//! if they are connected through shared `(column, value)` pairs.  Grouping
//! tuples into the connected components of that relation lets the closure run
//! independently — and in parallel — on each component, which is what makes
//! FD tractable on the 5K–30K tuple IMDB benchmark: components there are
//! per-movie / per-person clusters of a handful of tuples.

use std::collections::HashMap;

use lake_table::Value;

use crate::tuple::IntegratedTuple;

/// Disjoint-set (union–find) over `0..n` with path compression and union by
/// size.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind { parent: (0..n).collect(), size: vec![1; n] }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] { (ra, rb) } else { (rb, ra) };
        self.parent[small] = big;
        self.size[big] += self.size[small];
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Groups element indices by their set representative.
    pub fn groups(&mut self) -> Vec<Vec<usize>> {
        let n = self.parent.len();
        let mut by_root: HashMap<usize, Vec<usize>> = HashMap::new();
        for i in 0..n {
            let root = self.find(i);
            by_root.entry(root).or_default().push(i);
        }
        let mut groups: Vec<Vec<usize>> = by_root.into_values().collect();
        groups.sort_by_key(|g| g[0]);
        groups
    }
}

/// Partitions tuples into join-connected components.  Returns groups of
/// indices into `tuples`; the union of the groups is `0..tuples.len()`.
///
/// Connectivity is over-approximate on purpose: two tuples that share a
/// `(column, value)` pair are placed in the same component even if they are
/// inconsistent on another column — they still belong to the same "join
/// neighbourhood" and the exact closure inside the component sorts it out.
pub fn join_components(tuples: &[IntegratedTuple]) -> Vec<Vec<usize>> {
    let mut uf = UnionFind::new(tuples.len());
    // Map (column, value) -> first tuple index seen with that cell.
    let mut seen: HashMap<(usize, &Value), usize> = HashMap::new();
    // All-null tuples join nothing; keep them in one shared component so the
    // per-component closure deduplicates them exactly like the brute-force
    // specification does.
    let mut first_all_null: Option<usize> = None;
    for (idx, tuple) in tuples.iter().enumerate() {
        let mut has_cell = false;
        for col in tuple.non_null_columns() {
            has_cell = true;
            let key = (col, tuple.value(col));
            match seen.get(&key) {
                Some(&first) => {
                    uf.union(first, idx);
                }
                None => {
                    seen.insert(key, idx);
                }
            }
        }
        if !has_cell {
            match first_all_null {
                Some(first) => {
                    uf.union(first, idx);
                }
                None => first_all_null = Some(idx),
            }
        }
    }
    uf.groups()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lake_table::ProvenanceSet;

    fn tuple(values: Vec<Value>) -> IntegratedTuple {
        IntegratedTuple::new(values, ProvenanceSet::empty())
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
        let groups = uf.groups();
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0], vec![0, 1, 2]);
    }

    #[test]
    fn components_group_by_shared_values() {
        let tuples = vec![
            tuple(vec![Value::text("Berlin"), Value::Null]),
            tuple(vec![Value::text("Berlin"), Value::text("63%")]),
            tuple(vec![Value::text("Toronto"), Value::Null]),
            tuple(vec![Value::Null, Value::text("83%")]),
        ];
        let components = join_components(&tuples);
        assert_eq!(components.len(), 3);
        // Berlin tuples together; Toronto alone; the 83% tuple alone.
        assert!(components.iter().any(|c| c == &vec![0, 1]));
        assert!(components.iter().any(|c| c == &vec![2]));
        assert!(components.iter().any(|c| c == &vec![3]));
    }

    #[test]
    fn transitive_connectivity() {
        // a-b share col0, b-c share col1 => one component of three.
        let tuples = vec![
            tuple(vec![Value::text("x"), Value::Null]),
            tuple(vec![Value::text("x"), Value::text("y")]),
            tuple(vec![Value::Null, Value::text("y")]),
        ];
        let components = join_components(&tuples);
        assert_eq!(components.len(), 1);
        assert_eq!(components[0].len(), 3);
    }

    #[test]
    fn same_value_in_different_columns_does_not_connect() {
        let tuples = vec![
            tuple(vec![Value::text("x"), Value::Null]),
            tuple(vec![Value::Null, Value::text("x")]),
        ];
        let components = join_components(&tuples);
        assert_eq!(components.len(), 2);
    }

    #[test]
    fn empty_input() {
        assert!(join_components(&[]).is_empty());
    }
}
