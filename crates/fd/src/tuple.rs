//! Integrated tuples and integrated tables.

use lake_table::{ProvenanceSet, Schema, Table, TableResult, TupleId, Value};

use crate::schema::IntegrationSchema;

/// A tuple over the integrated schema: one (possibly null) value per
/// integrated column plus the provenance of the base tuples it merges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntegratedTuple {
    values: Vec<Value>,
    provenance: ProvenanceSet,
}

impl IntegratedTuple {
    /// Creates a tuple from values and provenance.
    pub fn new(values: Vec<Value>, provenance: ProvenanceSet) -> Self {
        IntegratedTuple { values, provenance }
    }

    /// Builds the padded integrated tuple for one base tuple.
    pub fn from_base(
        schema: &IntegrationSchema,
        table_idx: usize,
        table_name: &str,
        row_idx: usize,
        row: &[Value],
    ) -> Self {
        let mut values = vec![Value::Null; schema.num_columns()];
        for (col_idx, value) in row.iter().enumerate() {
            if value.is_present() {
                values[schema.integrated_column(table_idx, col_idx)] = value.clone();
            }
        }
        IntegratedTuple {
            values,
            provenance: ProvenanceSet::single(TupleId::new(table_name, row_idx)),
        }
    }

    /// The tuple's values over the integrated schema.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The value of one integrated column.
    pub fn value(&self, column: usize) -> &Value {
        &self.values[column]
    }

    /// Provenance: the base tuples merged into this tuple.
    pub fn provenance(&self) -> &ProvenanceSet {
        &self.provenance
    }

    /// Number of non-null values.
    pub fn non_null_count(&self) -> usize {
        self.values.iter().filter(|v| v.is_present()).count()
    }

    /// Indices of the non-null columns.
    pub fn non_null_columns(&self) -> impl Iterator<Item = usize> + '_ {
        self.values.iter().enumerate().filter(|(_, v)| v.is_present()).map(|(i, _)| i)
    }

    /// Whether two tuples are *consistent*: no column where both are non-null
    /// with different values.
    pub fn consistent_with(&self, other: &IntegratedTuple) -> bool {
        self.values.iter().zip(&other.values).all(|(a, b)| a.is_null() || b.is_null() || a == b)
    }

    /// Whether two tuples *overlap*: at least one column where both are
    /// non-null (and, if consistent, therefore equal).
    pub fn overlaps(&self, other: &IntegratedTuple) -> bool {
        self.values.iter().zip(&other.values).any(|(a, b)| a.is_present() && b.is_present())
    }

    /// Whether two tuples are joinable: consistent *and* overlapping.  This
    /// is the condition under which Full Disjunction combines them.
    pub fn joinable_with(&self, other: &IntegratedTuple) -> bool {
        self.overlaps(other) && self.consistent_with(other)
    }

    /// Merges two joinable tuples: non-null values win, provenance unions.
    ///
    /// The caller must ensure [`IntegratedTuple::joinable_with`] (or at least
    /// consistency) holds; merging inconsistent tuples would silently prefer
    /// `self`'s values.
    pub fn merge(&self, other: &IntegratedTuple) -> IntegratedTuple {
        debug_assert!(self.consistent_with(other), "merging inconsistent tuples");
        let values = self
            .values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| if a.is_present() { a.clone() } else { b.clone() })
            .collect();
        IntegratedTuple { values, provenance: self.provenance.union(&other.provenance) }
    }

    /// Whether `self` subsumes `other`: everywhere `other` is non-null,
    /// `self` has the same value, and `self` has at least as many non-null
    /// values.  A subsumed tuple carries no information of its own and is
    /// removed from the FD result.
    pub fn subsumes(&self, other: &IntegratedTuple) -> bool {
        other
            .values
            .iter()
            .zip(&self.values)
            .all(|(o, s)| o.is_null() || (s.is_present() && s == o))
    }

    /// Absorbs the provenance of another tuple (used when deduplicating
    /// value-identical tuples).
    pub fn absorb_provenance(&mut self, other: &ProvenanceSet) {
        self.provenance = self.provenance.union(other);
    }

    /// Re-pads the tuple into another integrated schema: the value of column
    /// `i` moves to column `mapping[i]`, every unmapped new column becomes
    /// null.  Used by [`ComponentCache`](crate::ComponentCache) to carry
    /// memoised closures across schema growth (an appended table adding new
    /// integrated columns widens every tuple without changing any cell).
    ///
    /// # Panics
    /// Panics if `mapping` is shorter than the tuple, maps outside
    /// `new_columns`, or maps two *present* values onto one column (a
    /// non-injective mapping would silently destroy a cell otherwise; null
    /// collisions are harmless and tolerated).
    pub fn remap_columns(&mut self, mapping: &[usize], new_columns: usize) {
        assert_eq!(mapping.len(), self.values.len(), "mapping must cover every column");
        let mut values = vec![Value::Null; new_columns];
        for (old, value) in self.values.drain(..).enumerate() {
            let target = mapping[old];
            if value.is_present() {
                assert!(
                    values[target].is_null(),
                    "column mapping sends two present values to column {target}"
                );
                values[target] = value;
            }
        }
        self.values = values;
    }
}

/// The result of integrating a set of tables: the integrated column names and
/// the integrated tuples.
#[derive(Debug, Clone, PartialEq)]
pub struct IntegratedTable {
    columns: Vec<String>,
    tuples: Vec<IntegratedTuple>,
}

impl IntegratedTable {
    /// Creates an integrated table.
    pub fn new(columns: Vec<String>, tuples: Vec<IntegratedTuple>) -> Self {
        IntegratedTable { columns, tuples }
    }

    /// Integrated column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Integrated tuples.
    pub fn tuples(&self) -> &[IntegratedTuple] {
        &self.tuples
    }

    /// Number of integrated tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` when the result holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Sorts tuples deterministically (by values, then provenance) so results
    /// can be compared across algorithms and runs.
    pub fn sorted(mut self) -> IntegratedTable {
        self.tuples.sort_by(|a, b| {
            a.values().cmp(b.values()).then_with(|| a.provenance().cmp(b.provenance()))
        });
        self
    }

    /// Converts to a plain [`Table`].  When `include_provenance` is true, a
    /// leading `TIDs` column lists the merged base tuples (the presentation
    /// used in the paper's Figure 1).
    pub fn to_table(&self, name: &str, include_provenance: bool) -> TableResult<Table> {
        let mut names: Vec<String> = Vec::new();
        if include_provenance {
            names.push("TIDs".to_string());
        }
        names.extend(self.columns.iter().cloned());
        let schema = Schema::from_names(names)?;
        let mut table = Table::new(name, schema);
        for tuple in &self.tuples {
            let mut row: Vec<Value> = Vec::with_capacity(self.columns.len() + 1);
            if include_provenance {
                row.push(Value::text(tuple.provenance().to_string()));
            }
            row.extend(tuple.values().iter().cloned());
            table.push_row(row)?;
        }
        Ok(table)
    }

    /// Checks that every base tuple of the inputs is represented by at least
    /// one output tuple that subsumes it — the "no tuple left behind"
    /// guarantee of Full Disjunction.  Returns the ids of unrepresented base
    /// tuples (empty = all good).  Rows with no present value are skipped,
    /// mirroring [`crate::outer_union::outer_union`].
    pub fn unrepresented_base_tuples(
        &self,
        schema: &IntegrationSchema,
        tables: &[Table],
    ) -> Vec<TupleId> {
        let mut missing = Vec::new();
        for (t_idx, table) in tables.iter().enumerate() {
            for (r_idx, row) in table.rows().iter().enumerate() {
                if row.iter().all(|v| v.is_null()) {
                    continue;
                }
                let base = IntegratedTuple::from_base(schema, t_idx, table.name(), r_idx, row);
                let covered = self
                    .tuples
                    .iter()
                    .any(|t| t.subsumes(&base) && t.provenance().is_superset(base.provenance()));
                if !covered {
                    missing.push(TupleId::new(table.name(), r_idx));
                }
            }
        }
        missing
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lake_table::TableBuilder;

    fn schema_and_tables() -> (IntegrationSchema, Vec<Table>) {
        let tables = vec![
            TableBuilder::new("T1", ["City", "Country"])
                .row(["Berlin", "Germany"])
                .row(["Toronto", "Canada"])
                .build()
                .unwrap(),
            TableBuilder::new("T2", ["City", "Rate"]).row(["Berlin", "63%"]).build().unwrap(),
        ];
        let schema = IntegrationSchema::from_matching_headers(&tables);
        (schema, tables)
    }

    fn tup(
        schema: &IntegrationSchema,
        t: usize,
        name: &str,
        r: usize,
        row: &[Value],
    ) -> IntegratedTuple {
        IntegratedTuple::from_base(schema, t, name, r, row)
    }

    #[test]
    fn base_tuple_padding() {
        let (schema, tables) = schema_and_tables();
        let t = tup(&schema, 0, "T1", 0, &tables[0].rows()[0]);
        assert_eq!(t.non_null_count(), 2);
        assert_eq!(t.values().len(), schema.num_columns());
        assert_eq!(t.provenance().len(), 1);
    }

    #[test]
    fn consistency_overlap_and_joinability() {
        let (schema, tables) = schema_and_tables();
        let berlin_t1 = tup(&schema, 0, "T1", 0, &tables[0].rows()[0]);
        let toronto_t1 = tup(&schema, 0, "T1", 1, &tables[0].rows()[1]);
        let berlin_t2 = tup(&schema, 1, "T2", 0, &tables[1].rows()[0]);

        assert!(berlin_t1.joinable_with(&berlin_t2));
        assert!(!berlin_t1.joinable_with(&toronto_t1)); // same column, different city
        assert!(!toronto_t1.consistent_with(&berlin_t2) || !toronto_t1.overlaps(&berlin_t2));
    }

    #[test]
    fn merge_combines_values_and_provenance() {
        let (schema, tables) = schema_and_tables();
        let a = tup(&schema, 0, "T1", 0, &tables[0].rows()[0]);
        let b = tup(&schema, 1, "T2", 0, &tables[1].rows()[0]);
        let m = a.merge(&b);
        assert_eq!(m.non_null_count(), 3); // City, Country, Rate
        assert_eq!(m.provenance().len(), 2);
        assert!(m.subsumes(&a));
        assert!(m.subsumes(&b));
        assert!(!a.subsumes(&m));
    }

    #[test]
    fn subsumption_is_reflexive_and_antisymmetric_on_values() {
        let (schema, tables) = schema_and_tables();
        let a = tup(&schema, 0, "T1", 0, &tables[0].rows()[0]);
        assert!(a.subsumes(&a));
        let b = tup(&schema, 1, "T2", 0, &tables[1].rows()[0]);
        let m = a.merge(&b);
        assert!(m.subsumes(&a) && !a.subsumes(&m));
    }

    #[test]
    fn tuples_with_disjoint_columns_do_not_overlap() {
        let (schema, _) = schema_and_tables();
        let a = IntegratedTuple::new(
            vec![Value::text("x"), Value::Null, Value::Null],
            ProvenanceSet::empty(),
        );
        let b = IntegratedTuple::new(
            vec![Value::Null, Value::text("y"), Value::Null],
            ProvenanceSet::empty(),
        );
        assert_eq!(schema.num_columns(), 3);
        assert!(a.consistent_with(&b));
        assert!(!a.overlaps(&b));
        assert!(!a.joinable_with(&b));
    }

    #[test]
    fn integrated_table_conversion_and_coverage() {
        let (schema, tables) = schema_and_tables();
        let a = tup(&schema, 0, "T1", 0, &tables[0].rows()[0]);
        let b = tup(&schema, 1, "T2", 0, &tables[1].rows()[0]);
        let toronto = tup(&schema, 0, "T1", 1, &tables[0].rows()[1]);
        let merged = a.merge(&b);
        let result =
            IntegratedTable::new(schema.column_names().to_vec(), vec![merged, toronto.clone()]);
        assert_eq!(result.len(), 2);
        assert!(result.unrepresented_base_tuples(&schema, &tables).is_empty());

        let with_prov = result.to_table("fd", true).unwrap();
        assert_eq!(with_prov.num_columns(), schema.num_columns() + 1);
        assert_eq!(with_prov.num_rows(), 2);
        let without = result.to_table("fd", false).unwrap();
        assert_eq!(without.num_columns(), schema.num_columns());

        // Dropping the Toronto tuple leaves T1#1 unrepresented.
        let partial = IntegratedTable::new(schema.column_names().to_vec(), vec![a.merge(&b)]);
        let missing = partial.unrepresented_base_tuples(&schema, &tables);
        assert_eq!(missing, vec![TupleId::new("T1", 1)]);
    }

    #[test]
    fn sorted_is_deterministic() {
        let (schema, tables) = schema_and_tables();
        let a = tup(&schema, 0, "T1", 0, &tables[0].rows()[0]);
        let b = tup(&schema, 0, "T1", 1, &tables[0].rows()[1]);
        let r1 = IntegratedTable::new(schema.column_names().to_vec(), vec![a.clone(), b.clone()])
            .sorted();
        let r2 = IntegratedTable::new(schema.column_names().to_vec(), vec![b, a]).sorted();
        assert_eq!(r1, r2);
    }
}
