//! The scalable, ALITE-style Full Disjunction operator.
//!
//! Pipeline: outer union → join-connectivity partitioning → per-component
//! complementation closure → subsumption removal (done inside the closure).
//! This mirrors the structure of the ALITE implementation the paper uses as
//! its equi-join FD engine, adapted to an in-memory Rust representation.

use lake_table::Table;

use crate::complement::component_closure;
use crate::components::join_components;
use crate::outer_union::outer_union;
use crate::schema::IntegrationSchema;
use crate::stats::FdStats;
use crate::tuple::{IntegratedTable, IntegratedTuple};

/// Options controlling the FD computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FdOptions {
    /// Partition tuples into join-connected components before running the
    /// closure (on by default; turning it off is an ablation that runs the
    /// closure over all tuples at once).
    pub partition: bool,
    /// Sort the output deterministically (small cost; on by default so runs
    /// are comparable).
    pub sort_output: bool,
}

impl Default for FdOptions {
    fn default() -> Self {
        FdOptions { partition: true, sort_output: true }
    }
}

/// Computes the Full Disjunction of `tables` under `schema`.
pub fn full_disjunction(schema: &IntegrationSchema, tables: &[Table]) -> IntegratedTable {
    full_disjunction_with(schema, tables, FdOptions::default()).0
}

/// Computes the Full Disjunction and returns execution statistics alongside
/// the result.
pub fn full_disjunction_with(
    schema: &IntegrationSchema,
    tables: &[Table],
    options: FdOptions,
) -> (IntegratedTable, FdStats) {
    let base = outer_union(schema, tables);
    let input_tuples = base.len();

    let (tuples, num_components, largest_component) = if options.partition {
        let components = join_components(&base);
        let num_components = components.len();
        let largest = components.iter().map(|c| c.len()).max().unwrap_or(0);
        let mut out: Vec<IntegratedTuple> = Vec::with_capacity(base.len());
        // Move tuples into per-component buckets without cloning.
        let mut slots: Vec<Option<IntegratedTuple>> = base.into_iter().map(Some).collect();
        for component in components {
            let members: Vec<IntegratedTuple> =
                component.iter().map(|&i| slots[i].take().expect("tuple moved twice")).collect();
            out.extend(component_closure(members));
        }
        (out, num_components, largest)
    } else {
        let n = base.len();
        (component_closure(base), 1, n)
    };

    let stats = FdStats {
        input_tuples,
        output_tuples: tuples.len(),
        components: num_components,
        largest_component,
        ..FdStats::default()
    };

    let result = IntegratedTable::new(schema.column_names().to_vec(), tuples);
    let result = if options.sort_output { result.sorted() } else { result };
    (result, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::specification_full_disjunction;
    use lake_table::{TableBuilder, Value};

    /// The three COVID tables of the paper's Figure 1 (equi-join values).
    fn figure1_tables() -> Vec<Table> {
        vec![
            TableBuilder::new("T1", ["City", "Country"])
                .row(["Berlinn", "Germany"])
                .row(["Toronto", "Canada"])
                .row(["Barcelona", "Spain"])
                .row(["New Delhi", "India"])
                .build()
                .unwrap(),
            TableBuilder::new("T2", ["Country", "City", "Vac. Rate (1+ dose)"])
                .row(["CA", "Toronto", "83%"])
                .row(["US", "Boston", "62%"])
                .row(["DE", "Berlin", "63%"])
                .row(["ES", "Barcelona", "82%"])
                .build()
                .unwrap(),
            TableBuilder::new("T3", ["City", "Total Cases", "Death Rate (per 100k)"])
                .row(["Berlin", "1.4M", "147"])
                .row(["barcelona", "2.68M", "275"])
                .row(["Boston", "263K", "335"])
                .build()
                .unwrap(),
        ]
    }

    #[test]
    fn equi_join_fd_reproduces_figure1_left_table() {
        // With literal (inconsistent) values, equi-join FD produces the nine
        // tuples f1..f9 of Figure 1.
        let tables = figure1_tables();
        let schema = IntegrationSchema::from_matching_headers(&tables);
        let fd = full_disjunction(&schema, &tables);
        assert_eq!(fd.len(), 9, "{:#?}", fd.tuples());
        assert!(fd.unrepresented_base_tuples(&schema, &tables).is_empty());

        // t6 (Boston, US, 62%) and t11 (Boston, 263K, 335) merge into f6.
        let boston = fd
            .tuples()
            .iter()
            .find(|t| t.values().contains(&Value::text("Boston")) && t.non_null_count() >= 5)
            .expect("merged Boston tuple");
        assert_eq!(boston.provenance().len(), 2);

        // The typo tuple "Berlinn" stays un-merged (that is the paper's point).
        let berlinn = fd
            .tuples()
            .iter()
            .find(|t| t.values().contains(&Value::text("Berlinn")))
            .expect("Berlinn tuple present");
        assert_eq!(berlinn.provenance().len(), 1);
    }

    #[test]
    fn matches_specification_on_small_inputs() {
        let tables = figure1_tables();
        let schema = IntegrationSchema::from_matching_headers(&tables);
        let fast = full_disjunction(&schema, &tables);
        let spec = specification_full_disjunction(&schema, &tables);
        // Compare value sets (provenance bookkeeping may differ in ordering).
        let fast_values: Vec<&[Value]> = fast.tuples().iter().map(|t| t.values()).collect();
        let spec_values: Vec<&[Value]> = spec.tuples().iter().map(|t| t.values()).collect();
        assert_eq!(fast_values, spec_values);
    }

    #[test]
    fn partitioning_does_not_change_the_result() {
        let tables = figure1_tables();
        let schema = IntegrationSchema::from_matching_headers(&tables);
        let (with, stats_with) = full_disjunction_with(
            &schema,
            &tables,
            FdOptions { partition: true, sort_output: true },
        );
        let (without, stats_without) = full_disjunction_with(
            &schema,
            &tables,
            FdOptions { partition: false, sort_output: true },
        );
        assert_eq!(with, without);
        assert!(stats_with.components > 1);
        assert_eq!(stats_without.components, 1);
        assert_eq!(stats_with.input_tuples, 11);
        assert_eq!(stats_with.output_tuples, 9);
    }

    #[test]
    fn empty_input_tables() {
        let tables = vec![
            TableBuilder::new("A", ["x"]).build().unwrap(),
            TableBuilder::new("B", ["x"]).build().unwrap(),
        ];
        let schema = IntegrationSchema::from_matching_headers(&tables);
        let fd = full_disjunction(&schema, &tables);
        assert!(fd.is_empty());
    }

    #[test]
    fn single_table_fd_is_the_table_itself_modulo_subsumption() {
        let tables = vec![TableBuilder::new("A", ["x", "y"])
            .row(["1", "2"])
            .row(["1", "2"]) // duplicate collapses
            .row(["3", "4"])
            .build()
            .unwrap()];
        let schema = IntegrationSchema::from_matching_headers(&tables);
        let fd = full_disjunction(&schema, &tables);
        assert_eq!(fd.len(), 2);
    }
}
