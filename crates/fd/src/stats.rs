//! Execution statistics reported by the FD operators.

use lake_runtime::RuntimeStats;

/// Counters describing one Full Disjunction execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FdStats {
    /// Number of base tuples across all input tables.
    pub input_tuples: usize,
    /// Number of tuples in the FD result.
    pub output_tuples: usize,
    /// Number of join-connected components (1 when partitioning is disabled).
    pub components: usize,
    /// Size of the largest component (in base tuples).
    pub largest_component: usize,
    /// Components whose closure was reused from a
    /// [`ComponentCache`](crate::ComponentCache) instead of recomputed
    /// (always `0` for the batch operators, which never consult a cache).
    pub reused_components: usize,
    /// How the component closures were scheduled (empty for the sequential
    /// operator, which never enters the executor; cache-reused components
    /// never reach the executor either).
    pub runtime: RuntimeStats,
}

impl FdStats {
    /// Compression ratio: output tuples per input tuple (1.0 = nothing
    /// merged, lower = more integration).
    pub fn compression(&self) -> f64 {
        if self.input_tuples == 0 {
            return 1.0;
        }
        self.output_tuples as f64 / self.input_tuples as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compression_ratio() {
        let stats = FdStats {
            input_tuples: 10,
            output_tuples: 6,
            components: 4,
            largest_component: 3,
            ..FdStats::default()
        };
        assert!((stats.compression() - 0.6).abs() < 1e-12);
        let empty = FdStats::default();
        assert_eq!(empty.compression(), 1.0);
    }
}
