//! Delta-aware Full Disjunction for lake-append workloads.
//!
//! An [`IntegrationSession`](../fuzzy_fd_core) appends tables against an
//! already-integrated lake, so successive FD runs see mostly the *same*
//! join-connected components: appended tuples touch only the components they
//! join into, and every other component's member list — and therefore its
//! closure, which is a pure function of the members — is unchanged.
//! [`incremental_full_disjunction_with`] exploits that by memoising
//! component closures in a [`ComponentCache`]: unchanged components are
//! served from the cache, and only changed or new components run the
//! (worst-case exponential) complementation closure, scheduled on the shared
//! work-stealing executor like the batch operator.
//!
//! Correctness does not depend on any diffing heuristic: a cache hit
//! requires the candidate entry's member tuples (values *and* provenance, in
//! outer-union order) to equal the component's members exactly, so a reused
//! closure is the closure the batch operator would have computed.  The final
//! table is assembled and sorted exactly like
//! [`parallel_full_disjunction_with`](crate::parallel_full_disjunction_with),
//! making the incremental operator byte-identical to the batch one by
//! construction.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use lake_runtime::ParallelPolicy;
use lake_table::Table;

use crate::complement::component_closure;
use crate::components::join_components;
use crate::outer_union::outer_union;
use crate::parallel::{component_cost, MIN_AUTO_CLOSURE_COST};
use crate::schema::IntegrationSchema;
use crate::stats::FdStats;
use crate::tuple::{IntegratedTable, IntegratedTuple};

/// One memoised closure: the exact member tuples it was computed from (the
/// verification key) and the closure output.
#[derive(Debug, Clone)]
struct CacheEntry {
    members: Vec<IntegratedTuple>,
    closure: Vec<IntegratedTuple>,
    last_used: u64,
}

/// A memo table of component closures, keyed by the components' exact member
/// tuples.
///
/// Lookups hash the member tuples (values and provenance) and verify full
/// equality before a hit is served, so hash collisions can never smuggle a
/// wrong closure in.  The cache is bounded: when an insert would exceed the
/// capacity, entries not used by the current generation (one generation per
/// [`incremental_full_disjunction_with`] call) are evicted first, and the
/// cache is cleared outright if the live set alone exceeds the bound.
///
/// ```
/// use lake_fd::{incremental_full_disjunction_with, ComponentCache, IntegrationSchema};
/// use lake_table::TableBuilder;
///
/// let tables = vec![
///     TableBuilder::new("A", ["id", "x"]).row(["k1", "x1"]).build().unwrap(),
///     TableBuilder::new("B", ["id", "y"]).row(["k1", "y1"]).build().unwrap(),
/// ];
/// let schema = IntegrationSchema::from_matching_headers(&tables);
/// let mut cache = ComponentCache::default();
/// let (first, stats) = incremental_full_disjunction_with(&schema, &tables, 1, &mut cache);
/// assert_eq!(stats.reused_components, 0, "a cold cache reuses nothing");
/// let (second, stats) = incremental_full_disjunction_with(&schema, &tables, 1, &mut cache);
/// assert_eq!(first, second);
/// assert_eq!(stats.reused_components, stats.components, "a warm re-run reuses everything");
/// ```
#[derive(Debug, Clone)]
pub struct ComponentCache {
    entries: HashMap<u64, Vec<CacheEntry>>,
    len: usize,
    capacity: usize,
    generation: u64,
    hits: u64,
    misses: u64,
}

impl Default for ComponentCache {
    fn default() -> Self {
        ComponentCache::with_capacity(Self::DEFAULT_CAPACITY)
    }
}

impl ComponentCache {
    /// Default closure-memo bound, shared with
    /// `IncrementalPolicy::max_cached_components` in `fuzzy-fd-core`: far
    /// above any benchmark lake (the IMDB fold peaks at ~20k components)
    /// while bounding worst-case memory on key-explosive inputs.
    pub const DEFAULT_CAPACITY: usize = 65_536;

    /// An empty cache holding at most `capacity` closures (`0` disables
    /// caching: every lookup misses and nothing is stored).
    pub fn with_capacity(capacity: usize) -> Self {
        ComponentCache {
            entries: HashMap::new(),
            len: 0,
            capacity,
            generation: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of memoised closures.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when nothing is memoised.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `(hits, misses)` counters over the cache's lifetime.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Drops every memoised closure (counters are kept — they describe
    /// lookups, not contents).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.len = 0;
    }

    /// Starts a new reuse generation (called once per incremental FD run so
    /// eviction can distinguish entries the current lake still produces from
    /// leftovers of rewritten history).
    fn advance_generation(&mut self) {
        self.generation += 1;
    }

    fn key_hash(members: &[IntegratedTuple]) -> u64 {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        members.len().hash(&mut hasher);
        for tuple in members {
            tuple.values().hash(&mut hasher);
            tuple.provenance().hash(&mut hasher);
        }
        hasher.finish()
    }

    /// The memoised closure of a component with exactly these members, if
    /// one is cached.
    fn lookup(&mut self, members: &[IntegratedTuple]) -> Option<Vec<IntegratedTuple>> {
        if self.capacity == 0 {
            self.misses += 1;
            return None;
        }
        let generation = self.generation;
        let found = self
            .entries
            .get_mut(&Self::key_hash(members))
            .and_then(|bucket| bucket.iter_mut().find(|entry| entry.members == members))
            .map(|entry| {
                entry.last_used = generation;
                entry.closure.clone()
            });
        match found {
            Some(closure) => {
                self.hits += 1;
                Some(closure)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Memoises one freshly computed closure, evicting stale generations if
    /// the bound would be exceeded.
    fn insert(&mut self, members: Vec<IntegratedTuple>, closure: Vec<IntegratedTuple>) {
        if self.capacity == 0 {
            return;
        }
        if self.len >= self.capacity {
            self.evict_stale();
        }
        if self.len >= self.capacity {
            // The live set alone overflows the bound: reset rather than
            // thrash (the next run simply recomputes).
            self.clear();
        }
        let hash = Self::key_hash(&members);
        self.entries.entry(hash).or_default().push(CacheEntry {
            members,
            closure,
            last_used: self.generation,
        });
        self.len += 1;
    }

    /// Evicts entries last used before the current generation.
    fn evict_stale(&mut self) {
        let generation = self.generation;
        self.entries.retain(|_, bucket| {
            bucket.retain(|entry| entry.last_used >= generation);
            !bucket.is_empty()
        });
        self.len = self.entries.values().map(Vec::len).sum();
    }

    /// Re-pads every memoised component into a new integrated-column space:
    /// old column `i` becomes column `mapping[i]` of a `new_columns`-wide
    /// schema.
    ///
    /// Appending tables usually *widens* the integration schema (new
    /// attribute columns, new aligned sets), which re-pads every outer-union
    /// tuple and would turn the whole cache stale.  Re-padding is
    /// position-only — no cell changes — so the cache migrates instead: a
    /// component untouched by the append then matches its remapped entry
    /// exactly.  An out-of-range or non-injective mapping (two old columns
    /// merging) cannot be migrated faithfully and clears the cache instead.
    pub fn remap_columns(&mut self, mapping: &[usize], new_columns: usize) {
        if mapping.len() == new_columns && mapping.iter().enumerate().all(|(i, &m)| i == m) {
            return;
        }
        let mut seen = vec![false; new_columns];
        for &target in mapping {
            if target >= new_columns || seen[target] {
                self.clear();
                return;
            }
            seen[target] = true;
        }
        // Remapping changes the member hashes, so the bucket map is rebuilt.
        let entries = std::mem::take(&mut self.entries);
        for (_, bucket) in entries {
            for mut entry in bucket {
                for tuple in entry.members.iter_mut().chain(entry.closure.iter_mut()) {
                    tuple.remap_columns(mapping, new_columns);
                }
                self.entries.entry(Self::key_hash(&entry.members)).or_default().push(entry);
            }
        }
    }
}

/// Computes the Full Disjunction like
/// [`parallel_full_disjunction_with`](crate::parallel_full_disjunction_with),
/// but serving unchanged component closures from `cache` and computing (and
/// memoising) only the changed or new components.
///
/// The result is byte-identical to the batch operators for any cache state;
/// [`FdStats::reused_components`] reports how many components were served
/// from the cache, and `stats.runtime` covers only the components that
/// actually ran.
pub fn incremental_full_disjunction_with(
    schema: &IntegrationSchema,
    tables: &[Table],
    threads: usize,
    cache: &mut ComponentCache,
) -> (IntegratedTable, FdStats) {
    cache.advance_generation();
    let base = outer_union(schema, tables);
    let input_tuples = base.len();
    let components = join_components(&base);
    let num_components = components.len();
    let largest_component = components.iter().map(|c| c.len()).max().unwrap_or(0);

    // Move tuples into per-component member lists (outer-union order within
    // each component, the same order the batch operators close over).
    let mut slots: Vec<Option<IntegratedTuple>> = base.into_iter().map(Some).collect();
    let work: Vec<Vec<IntegratedTuple>> = components
        .into_iter()
        .map(|component| {
            component.into_iter().map(|i| slots[i].take().expect("tuple moved twice")).collect()
        })
        .collect();

    // Serve unchanged components from the cache; queue the rest.
    let mut closures: Vec<Option<Vec<IntegratedTuple>>> = Vec::with_capacity(work.len());
    let mut missed: Vec<(usize, Vec<IntegratedTuple>)> = Vec::new();
    for (idx, members) in work.into_iter().enumerate() {
        match cache.lookup(&members) {
            Some(closure) => closures.push(Some(closure)),
            None => {
                closures.push(None);
                missed.push((idx, members));
            }
        }
    }
    let reused_components = num_components - missed.len();

    // Close the missed components on the shared executor (the cache key
    // needs the members back, so each task carries its slot index and
    // returns the members alongside the closure).
    let policy = ParallelPolicy { threads, min_auto_cost: MIN_AUTO_CLOSURE_COST };
    let (solved, runtime) = lake_runtime::run_scope(
        &policy,
        missed,
        |(_, members)| component_cost(members),
        |(idx, members)| {
            let closure = component_closure(members.clone());
            (idx, members, closure)
        },
    );
    for (idx, members, closure) in solved {
        cache.insert(members, closure.clone());
        closures[idx] = Some(closure);
    }

    let tuples: Vec<IntegratedTuple> = closures
        .into_iter()
        .flat_map(|closure| closure.expect("component neither reused nor computed"))
        .collect();
    let stats = FdStats {
        input_tuples,
        output_tuples: tuples.len(),
        components: num_components,
        largest_component,
        reused_components,
        runtime,
    };
    let result = IntegratedTable::new(schema.column_names().to_vec(), tuples).sorted();
    (result, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alite::full_disjunction;
    use crate::parallel::parallel_full_disjunction_with;
    use lake_table::{TableBuilder, Value};

    fn lake(rows: usize) -> Vec<Table> {
        let mut a = TableBuilder::new("A", ["id", "x"]);
        let mut b = TableBuilder::new("B", ["id", "y"]);
        for i in 0..rows {
            a = a.row([format!("k{i}"), format!("x{i}")]);
            if i % 2 == 0 {
                b = b.row([format!("k{i}"), format!("y{i}")]);
            }
        }
        vec![a.build().unwrap(), b.build().unwrap()]
    }

    #[test]
    fn cold_cache_matches_batch_and_warm_rerun_reuses_everything() {
        let tables = lake(30);
        let schema = IntegrationSchema::from_matching_headers(&tables);
        let batch = full_disjunction(&schema, &tables);
        let mut cache = ComponentCache::default();

        let (cold, cold_stats) = incremental_full_disjunction_with(&schema, &tables, 1, &mut cache);
        assert_eq!(cold, batch);
        assert_eq!(cold_stats.reused_components, 0);
        assert_eq!(cache.len(), cold_stats.components);

        let (warm, warm_stats) = incremental_full_disjunction_with(&schema, &tables, 1, &mut cache);
        assert_eq!(warm, batch);
        assert_eq!(warm_stats.reused_components, warm_stats.components);
        assert_eq!(warm_stats.runtime.tasks, 0, "nothing reaches the executor on a full reuse");
    }

    #[test]
    fn appending_a_table_recomputes_only_touched_components() {
        let mut tables = lake(30);
        let schema = IntegrationSchema::from_matching_headers(&tables);
        let mut cache = ComponentCache::default();
        let (_, first) = incremental_full_disjunction_with(&schema, &tables, 1, &mut cache);

        // A third table joining three existing keys: exactly those three
        // components change (the new table brings no new columns, so the
        // integration schema is unchanged).
        let c = TableBuilder::new("C", ["id", "x"])
            .row(["k1", "x1"])
            .row(["k3", "x3"])
            .row(["k5", "x5"])
            .build()
            .unwrap();
        tables.push(c);
        let schema2 = IntegrationSchema::from_matching_headers(&tables);
        assert_eq!(schema2.num_columns(), schema.num_columns());

        let (incremental, stats) =
            incremental_full_disjunction_with(&schema2, &tables, 1, &mut cache);
        assert_eq!(incremental, full_disjunction(&schema2, &tables));
        assert_eq!(stats.components, first.components);
        assert_eq!(
            stats.reused_components,
            first.components - 3,
            "only the three joined components may recompute: {stats:?}"
        );
    }

    #[test]
    fn equivalent_across_thread_counts_and_cache_states() {
        let tables = lake(40);
        let schema = IntegrationSchema::from_matching_headers(&tables);
        let (batch, _) = parallel_full_disjunction_with(&schema, &tables, 2);
        for threads in [0usize, 1, 2, 4] {
            let mut cache = ComponentCache::default();
            let (cold, _) =
                incremental_full_disjunction_with(&schema, &tables, threads, &mut cache);
            let (warm, _) =
                incremental_full_disjunction_with(&schema, &tables, threads, &mut cache);
            assert_eq!(cold, batch, "threads = {threads}");
            assert_eq!(warm, batch, "threads = {threads}");
        }
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let tables = lake(10);
        let schema = IntegrationSchema::from_matching_headers(&tables);
        let mut cache = ComponentCache::with_capacity(0);
        let (first, stats) = incremental_full_disjunction_with(&schema, &tables, 1, &mut cache);
        assert_eq!(stats.reused_components, 0);
        let (second, stats) = incremental_full_disjunction_with(&schema, &tables, 1, &mut cache);
        assert_eq!(stats.reused_components, 0, "capacity 0 must never reuse");
        assert!(cache.is_empty());
        assert_eq!(first, second);
    }

    #[test]
    fn provenance_differences_are_not_cache_hits() {
        // Two components with identical values but different provenance must
        // not collide: the closure output embeds provenance.
        let t1 = TableBuilder::new("T1", ["id"]).row(["k"]).build().unwrap();
        let t2 = TableBuilder::new("T2", ["id"]).row(["k"]).build().unwrap();
        let schema1 = IntegrationSchema::from_matching_headers(std::slice::from_ref(&t1));
        let mut cache = ComponentCache::default();
        let (only_t1, _) =
            incremental_full_disjunction_with(&schema1, std::slice::from_ref(&t1), 1, &mut cache);
        assert_eq!(only_t1.tuples()[0].provenance().len(), 1);

        let schema2 = IntegrationSchema::from_matching_headers(std::slice::from_ref(&t2));
        let (only_t2, stats) = incremental_full_disjunction_with(&schema2, &[t2], 1, &mut cache);
        assert_eq!(stats.reused_components, 0, "provenance differs, so no reuse");
        assert!(only_t2.tuples()[0].provenance().iter().all(|id| id.table == "T2"));
        drop(only_t1);
    }

    #[test]
    fn eviction_keeps_the_live_generation() {
        // Capacity 4, lake with 5 components: the first run overflows and
        // resets, but a stable smaller lake keeps hitting across runs.
        let tables = lake(4); // 4 key components
        let schema = IntegrationSchema::from_matching_headers(&tables);
        let mut cache = ComponentCache::with_capacity(4);
        let _ = incremental_full_disjunction_with(&schema, &tables, 1, &mut cache);
        assert_eq!(cache.len(), 4);
        let (_, stats) = incremental_full_disjunction_with(&schema, &tables, 1, &mut cache);
        assert_eq!(stats.reused_components, 4);

        // A different lake of the same size evicts the old generation
        // instead of refusing to cache.
        let other = vec![TableBuilder::new("D", ["id", "z"])
            .row(["p0", "z0"])
            .row(["p1", "z1"])
            .row(["p2", "z2"])
            .row(["p3", "z3"])
            .build()
            .unwrap()];
        let other_schema = IntegrationSchema::from_matching_headers(&other);
        let _ = incremental_full_disjunction_with(&other_schema, &other, 1, &mut cache);
        assert!(cache.len() <= 4);
        let (_, stats) = incremental_full_disjunction_with(&other_schema, &other, 1, &mut cache);
        assert!(stats.reused_components > 0, "{stats:?}");
    }

    #[test]
    fn remapped_cache_survives_schema_growth() {
        // A two-table lake, then a third table bringing a *new* column: the
        // integration schema widens, every padded tuple changes shape, but a
        // remapped cache still reuses the untouched components.
        let mut tables = lake(20);
        let schema = IntegrationSchema::from_matching_headers(&tables);
        let mut cache = ComponentCache::default();
        let (_, first) = incremental_full_disjunction_with(&schema, &tables, 1, &mut cache);

        let c = TableBuilder::new("C", ["id", "z"]).row(["k1", "z1"]).build().unwrap();
        tables.push(c);
        let wider = IntegrationSchema::from_matching_headers(&tables);
        assert!(wider.num_columns() > schema.num_columns());

        // old column i → the new position of any of its source columns.
        let mapping: Vec<usize> = schema
            .aligned_sets()
            .iter()
            .map(|sources| wider.integrated_column(sources[0].table, sources[0].column))
            .collect();
        cache.remap_columns(&mapping, wider.num_columns());

        let (incremental, stats) =
            incremental_full_disjunction_with(&wider, &tables, 1, &mut cache);
        assert_eq!(incremental, full_disjunction(&wider, &tables));
        assert_eq!(
            stats.reused_components,
            first.components - 1,
            "only the k1 component may recompute after the remap: {stats:?}"
        );
    }

    #[test]
    fn degenerate_remaps_clear_instead_of_corrupting() {
        let tables = lake(4);
        let schema = IntegrationSchema::from_matching_headers(&tables);
        let mut cache = ComponentCache::default();
        let _ = incremental_full_disjunction_with(&schema, &tables, 1, &mut cache);
        assert!(!cache.is_empty());
        // Identity remap is a no-op.
        let width = schema.num_columns();
        cache.remap_columns(&(0..width).collect::<Vec<_>>(), width);
        assert!(!cache.is_empty());
        // A non-injective mapping cannot be migrated: the cache resets.
        cache.remap_columns(&vec![0; width], width);
        assert!(cache.is_empty());
    }

    #[test]
    fn values_sharing_hash_buckets_verify_membership() {
        // Same values, different provenance → same value hash contribution
        // but full-equality verification must reject the pairing.
        let a = IntegratedTuple::new(
            vec![Value::text("x")],
            lake_table::ProvenanceSet::single(lake_table::TupleId::new("A", 0)),
        );
        let b = IntegratedTuple::new(
            vec![Value::text("x")],
            lake_table::ProvenanceSet::single(lake_table::TupleId::new("B", 0)),
        );
        let mut cache = ComponentCache::default();
        cache.insert(vec![a.clone()], vec![a.clone()]);
        assert!(cache.lookup(&[b]).is_none());
        assert!(cache.lookup(&[a]).is_some());
    }
}
