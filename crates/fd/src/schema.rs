//! The integrated (universal) schema and the source-column mapping.

use std::collections::BTreeMap;

use lake_table::{ColumnRef, Table};

/// Maps every column of every input table to a column of the integrated
/// schema.
///
/// An *aligned column set* (one per integrated column) contains at most one
/// column per table — columns of the same table never align with each other,
/// matching the assumption of the paper's §2.1.  Columns that align are given
/// one shared integrated column; columns that align with nothing get their
/// own integrated column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntegrationSchema {
    /// Names of the integrated columns (for display; derived from the first
    /// source column of each aligned set).
    column_names: Vec<String>,
    /// `mapping[table_idx][source_col_idx]` = integrated column index.
    mapping: Vec<Vec<usize>>,
}

impl IntegrationSchema {
    /// Builds an integration schema from explicit aligned column sets.
    ///
    /// `aligned_sets[k]` lists the source columns that map to integrated
    /// column `k`.  Source columns not mentioned in any set are appended as
    /// their own singleton integrated columns.
    ///
    /// # Panics
    /// Panics if a set contains two columns of the same table, if a column
    /// reference is out of range, or if a column appears in two sets.
    pub fn from_aligned_sets(tables: &[Table], aligned_sets: &[Vec<ColumnRef>]) -> Self {
        let mut mapping: Vec<Vec<Option<usize>>> =
            tables.iter().map(|t| vec![None; t.num_columns()]).collect();
        let mut column_names = Vec::new();

        for set in aligned_sets {
            assert!(!set.is_empty(), "aligned column set must not be empty");
            let integrated_idx = column_names.len();
            let mut tables_seen = BTreeMap::new();
            let mut name: Option<String> = None;
            for cref in set {
                assert!(cref.table < tables.len(), "table index {} out of range", cref.table);
                let table = &tables[cref.table];
                assert!(
                    cref.column < table.num_columns(),
                    "column index {} out of range for table `{}`",
                    cref.column,
                    table.name()
                );
                assert!(
                    tables_seen.insert(cref.table, cref.column).is_none(),
                    "aligned set contains two columns of table `{}`",
                    table.name()
                );
                assert!(
                    mapping[cref.table][cref.column].is_none(),
                    "column {:?} appears in more than one aligned set",
                    cref
                );
                mapping[cref.table][cref.column] = Some(integrated_idx);
                if name.is_none() {
                    let header = &table.schema().columns()[cref.column].name;
                    if !header.is_empty() {
                        name = Some(header.clone());
                    }
                }
            }
            column_names.push(name.unwrap_or_else(|| format!("col_{integrated_idx}")));
        }

        // Unaligned source columns become their own integrated columns.
        for (t_idx, table) in tables.iter().enumerate() {
            for (c_idx, slot) in mapping[t_idx].iter_mut().enumerate() {
                if slot.is_none() {
                    let integrated_idx = column_names.len();
                    let header = &table.schema().columns()[c_idx].name;
                    let name = if header.is_empty() {
                        format!("{}_{}", table.name(), c_idx)
                    } else {
                        header.to_string()
                    };
                    // Disambiguate duplicate display names.
                    let name = if column_names.contains(&name) {
                        format!("{}.{}", table.name(), name)
                    } else {
                        name
                    };
                    column_names.push(name);
                    *slot = Some(integrated_idx);
                }
            }
        }

        let mapping = mapping
            .into_iter()
            .map(|cols| cols.into_iter().map(|c| c.expect("mapped")).collect())
            .collect();
        IntegrationSchema { column_names, mapping }
    }

    /// Aligns columns purely by (case-insensitive) header equality — the
    /// baseline used when tables are known to share headers, e.g. the
    /// benchmark generators and the paper's Figure 1 example.
    pub fn from_matching_headers(tables: &[Table]) -> Self {
        // Group columns by normalised header; a header group contributes one
        // aligned set, but never two columns of the same table (later
        // duplicates start new sets).
        let mut sets: Vec<(String, Vec<ColumnRef>)> = Vec::new();
        for (t_idx, table) in tables.iter().enumerate() {
            for (c_idx, col) in table.schema().columns().iter().enumerate() {
                let key = col.name.trim().to_lowercase();
                if key.is_empty() {
                    continue;
                }
                let slot = sets
                    .iter_mut()
                    .find(|(k, refs)| *k == key && !refs.iter().any(|r| r.table == t_idx));
                match slot {
                    Some((_, refs)) => refs.push(ColumnRef::new(t_idx, c_idx)),
                    None => sets.push((key, vec![ColumnRef::new(t_idx, c_idx)])),
                }
            }
        }
        let aligned: Vec<Vec<ColumnRef>> =
            sets.into_iter().map(|(_, refs)| refs).filter(|refs| refs.len() > 1).collect();
        IntegrationSchema::from_aligned_sets(tables, &aligned)
    }

    /// Number of integrated columns.
    pub fn num_columns(&self) -> usize {
        self.column_names.len()
    }

    /// Names of the integrated columns.
    pub fn column_names(&self) -> &[String] {
        &self.column_names
    }

    /// Number of input tables the schema was built for.
    pub fn num_tables(&self) -> usize {
        self.mapping.len()
    }

    /// The integrated column that source column `column` of table `table`
    /// maps to.
    pub fn integrated_column(&self, table: usize, column: usize) -> usize {
        self.mapping[table][column]
    }

    /// The full mapping row for a table.
    pub fn table_mapping(&self, table: usize) -> &[usize] {
        &self.mapping[table]
    }

    /// The aligned source columns for every integrated column.
    pub fn aligned_sets(&self) -> Vec<Vec<ColumnRef>> {
        let mut sets = vec![Vec::new(); self.num_columns()];
        for (t, cols) in self.mapping.iter().enumerate() {
            for (c, &icol) in cols.iter().enumerate() {
                sets[icol].push(ColumnRef::new(t, c));
            }
        }
        sets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lake_table::TableBuilder;

    fn tables() -> Vec<Table> {
        vec![
            TableBuilder::new("T1", ["City", "Country"])
                .row(["Berlin", "Germany"])
                .build()
                .unwrap(),
            TableBuilder::new("T2", ["Country", "City", "Rate"])
                .row(["CA", "Toronto", "83%"])
                .build()
                .unwrap(),
            TableBuilder::new("T3", ["City", "Cases"]).row(["Berlin", "1.4M"]).build().unwrap(),
        ]
    }

    #[test]
    fn header_based_alignment() {
        let tables = tables();
        let schema = IntegrationSchema::from_matching_headers(&tables);
        // Integrated columns: City, Country, Rate, Cases.
        assert_eq!(schema.num_columns(), 4);
        assert_eq!(schema.num_tables(), 3);
        // City of T1, T2, T3 all map to the same integrated column.
        let city = schema.integrated_column(0, 0);
        assert_eq!(schema.integrated_column(1, 1), city);
        assert_eq!(schema.integrated_column(2, 0), city);
        // Country of T1 and T2 share a column distinct from City.
        let country = schema.integrated_column(0, 1);
        assert_eq!(schema.integrated_column(1, 0), country);
        assert_ne!(country, city);
        // Rate and Cases are singletons.
        assert_ne!(schema.integrated_column(1, 2), schema.integrated_column(2, 1));
    }

    #[test]
    fn explicit_aligned_sets() {
        let tables = tables();
        let sets = vec![
            vec![ColumnRef::new(0, 0), ColumnRef::new(1, 1), ColumnRef::new(2, 0)],
            vec![ColumnRef::new(0, 1), ColumnRef::new(1, 0)],
        ];
        let schema = IntegrationSchema::from_aligned_sets(&tables, &sets);
        assert_eq!(schema.num_columns(), 4);
        assert_eq!(schema.column_names()[0], "City");
        assert_eq!(schema.column_names()[1], "Country");
        let aligned = schema.aligned_sets();
        assert_eq!(aligned[0].len(), 3);
        assert_eq!(aligned[1].len(), 2);
        assert_eq!(aligned[2].len(), 1);
    }

    #[test]
    #[should_panic(expected = "two columns of table")]
    fn same_table_twice_in_a_set_panics() {
        let tables = tables();
        let sets = vec![vec![ColumnRef::new(0, 0), ColumnRef::new(0, 1)]];
        IntegrationSchema::from_aligned_sets(&tables, &sets);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_column_panics() {
        let tables = tables();
        let sets = vec![vec![ColumnRef::new(0, 7)]];
        IntegrationSchema::from_aligned_sets(&tables, &sets);
    }

    #[test]
    fn duplicate_unaligned_names_are_disambiguated() {
        let ts = vec![
            TableBuilder::new("A", ["id", "x"]).row(["1", "2"]).build().unwrap(),
            TableBuilder::new("B", ["id", "x"]).row(["1", "2"]).build().unwrap(),
        ];
        // Align only `id`; both `x` columns stay separate and must not end up
        // with colliding display names.
        let sets = vec![vec![ColumnRef::new(0, 0), ColumnRef::new(1, 0)]];
        let schema = IntegrationSchema::from_aligned_sets(&ts, &sets);
        assert_eq!(schema.num_columns(), 3);
        let names = schema.column_names();
        assert_eq!(names.len(), 3);
        let unique: std::collections::HashSet<&String> = names.iter().collect();
        assert_eq!(unique.len(), 3, "column names must be unique: {names:?}");
    }

    #[test]
    fn header_alignment_is_case_insensitive() {
        let ts = vec![
            TableBuilder::new("A", ["city"]).row(["x"]).build().unwrap(),
            TableBuilder::new("B", ["CITY"]).row(["y"]).build().unwrap(),
        ];
        let schema = IntegrationSchema::from_matching_headers(&ts);
        assert_eq!(schema.num_columns(), 1);
    }
}
