//! Parallel Full Disjunction.
//!
//! Join-connected components are independent, so their closures can run on
//! separate threads (Paganelli et al. 2019 parallelise FD along the same
//! lines).  Components are distributed over a fixed pool of `std::thread`
//! scoped threads in round-robin chunks; results are concatenated and sorted
//! for determinism.

use lake_table::Table;

use crate::alite::FdOptions;
use crate::complement::component_closure;
use crate::components::join_components;
use crate::outer_union::outer_union;
use crate::schema::IntegrationSchema;
use crate::stats::FdStats;
use crate::tuple::{IntegratedTable, IntegratedTuple};

/// Computes the Full Disjunction using `threads` worker threads
/// (`threads == 0` or `1` falls back to the sequential path).
pub fn parallel_full_disjunction(
    schema: &IntegrationSchema,
    tables: &[Table],
    threads: usize,
) -> IntegratedTable {
    parallel_full_disjunction_with(schema, tables, threads).0
}

/// As [`parallel_full_disjunction`], also returning execution statistics.
pub fn parallel_full_disjunction_with(
    schema: &IntegrationSchema,
    tables: &[Table],
    threads: usize,
) -> (IntegratedTable, FdStats) {
    if threads <= 1 {
        return crate::alite::full_disjunction_with(schema, tables, FdOptions::default());
    }

    let base = outer_union(schema, tables);
    let input_tuples = base.len();
    let components = join_components(&base);
    let num_components = components.len();
    let largest_component = components.iter().map(|c| c.len()).max().unwrap_or(0);

    // Move tuples into per-component work items.
    let mut slots: Vec<Option<IntegratedTuple>> = base.into_iter().map(Some).collect();
    let work: Vec<Vec<IntegratedTuple>> = components
        .into_iter()
        .map(|component| {
            component.into_iter().map(|i| slots[i].take().expect("tuple moved twice")).collect()
        })
        .collect();

    // Round-robin assignment keeps the load roughly balanced even when
    // component sizes are skewed.
    let mut buckets: Vec<Vec<Vec<IntegratedTuple>>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, item) in work.into_iter().enumerate() {
        buckets[i % threads].push(item);
    }

    let mut results: Vec<Vec<IntegratedTuple>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = buckets
            .into_iter()
            .map(|bucket| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    for component in bucket {
                        out.extend(component_closure(component));
                    }
                    out
                })
            })
            .collect();
        for handle in handles {
            results.push(handle.join().expect("FD worker thread panicked"));
        }
    });

    let tuples: Vec<IntegratedTuple> = results.into_iter().flatten().collect();
    let stats = FdStats {
        input_tuples,
        output_tuples: tuples.len(),
        components: num_components,
        largest_component,
    };
    let result = IntegratedTable::new(schema.column_names().to_vec(), tuples).sorted();
    (result, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alite::full_disjunction;
    use lake_table::TableBuilder;

    fn tables() -> Vec<Table> {
        let mut a = TableBuilder::new("A", ["id", "x"]);
        let mut b = TableBuilder::new("B", ["id", "y"]);
        for i in 0..40 {
            a = a.row([format!("k{i}"), format!("x{i}")]);
            if i % 2 == 0 {
                b = b.row([format!("k{i}"), format!("y{i}")]);
            }
        }
        vec![a.build().unwrap(), b.build().unwrap()]
    }

    #[test]
    fn parallel_matches_sequential() {
        let tables = tables();
        let schema = IntegrationSchema::from_matching_headers(&tables);
        let sequential = full_disjunction(&schema, &tables);
        for threads in [2, 3, 4] {
            let parallel = parallel_full_disjunction(&schema, &tables, threads);
            assert_eq!(parallel, sequential, "threads = {threads}");
        }
    }

    #[test]
    fn single_thread_falls_back() {
        let tables = tables();
        let schema = IntegrationSchema::from_matching_headers(&tables);
        let (result, stats) = parallel_full_disjunction_with(&schema, &tables, 1);
        assert_eq!(result, full_disjunction(&schema, &tables));
        assert_eq!(stats.input_tuples, 60);
    }

    #[test]
    fn stats_are_reported() {
        let tables = tables();
        let schema = IntegrationSchema::from_matching_headers(&tables);
        let (_, stats) = parallel_full_disjunction_with(&schema, &tables, 2);
        assert_eq!(stats.input_tuples, 60);
        assert_eq!(stats.components, 40);
        assert_eq!(stats.output_tuples, 40);
        assert_eq!(stats.largest_component, 2);
    }
}
