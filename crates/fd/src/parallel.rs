//! Parallel Full Disjunction.
//!
//! Join-connected components are independent, so their closures can run on
//! separate threads (Paganelli et al. 2019 parallelise FD along the same
//! lines).  Components are scheduled on the workspace's shared work-stealing
//! executor ([`lake_runtime::run_scope`]): seeded largest-first by a
//! quadratic cost hint, with stealing correcting any skew the hint missed —
//! one giant component can no longer serialise a whole bucket the way the
//! old static round-robin assignment allowed.  Outputs come back in
//! component order and are concatenated and sorted, so the result is
//! byte-identical across worker counts.

use lake_runtime::{ParallelPolicy, RuntimeStats};
use lake_table::Table;

use crate::alite::FdOptions;
use crate::complement::component_closure;
use crate::components::join_components;
use crate::outer_union::outer_union;
use crate::schema::IntegrationSchema;
use crate::stats::FdStats;
use crate::tuple::{IntegratedTable, IntegratedTuple};

/// Auto-gate floor for `threads == 0`, in cost-hint units (squared component
/// tuple counts): below the equivalent of one 64-tuple component the scoped
/// workers cost more than the closures they would run.
pub(crate) const MIN_AUTO_CLOSURE_COST: u64 = 4_096;

/// Cost hint for one component: closure work (join attempts + subsumption)
/// grows quadratically with the component's tuple count, and a quadratic
/// hint also ranks the giants first for LPT seeding.
pub(crate) fn component_cost(component: &[IntegratedTuple]) -> u64 {
    let len = component.len() as u64;
    len.saturating_mul(len)
}

/// Computes the Full Disjunction using `threads` worker threads: `1` runs
/// the sequential operator, an explicit count ≥ 2 is a command, and `0`
/// auto-gates on the components' total closure cost (the semantics of
/// [`ParallelPolicy`]).
pub fn parallel_full_disjunction(
    schema: &IntegrationSchema,
    tables: &[Table],
    threads: usize,
) -> IntegratedTable {
    parallel_full_disjunction_with(schema, tables, threads).0
}

/// As [`parallel_full_disjunction`], also returning execution statistics
/// (including [`RuntimeStats`] describing how the closures were scheduled).
pub fn parallel_full_disjunction_with(
    schema: &IntegrationSchema,
    tables: &[Table],
    threads: usize,
) -> (IntegratedTable, FdStats) {
    if threads == 1 {
        return crate::alite::full_disjunction_with(schema, tables, FdOptions::default());
    }

    let base = outer_union(schema, tables);
    let input_tuples = base.len();
    let components = join_components(&base);
    let num_components = components.len();
    let largest_component = components.iter().map(|c| c.len()).max().unwrap_or(0);

    // Move tuples into per-component work items.
    let mut slots: Vec<Option<IntegratedTuple>> = base.into_iter().map(Some).collect();
    let work: Vec<Vec<IntegratedTuple>> = components
        .into_iter()
        .map(|component| {
            component.into_iter().map(|i| slots[i].take().expect("tuple moved twice")).collect()
        })
        .collect();

    let policy = ParallelPolicy { threads, min_auto_cost: MIN_AUTO_CLOSURE_COST };
    let (closures, runtime): (Vec<Vec<IntegratedTuple>>, RuntimeStats) =
        lake_runtime::run_scope(&policy, work, |c| component_cost(c), component_closure);

    let tuples: Vec<IntegratedTuple> = closures.into_iter().flatten().collect();
    let stats = FdStats {
        input_tuples,
        output_tuples: tuples.len(),
        components: num_components,
        largest_component,
        runtime,
        ..FdStats::default()
    };
    let result = IntegratedTable::new(schema.column_names().to_vec(), tuples).sorted();
    (result, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alite::full_disjunction;
    use lake_table::TableBuilder;

    fn tables() -> Vec<Table> {
        let mut a = TableBuilder::new("A", ["id", "x"]);
        let mut b = TableBuilder::new("B", ["id", "y"]);
        for i in 0..40 {
            a = a.row([format!("k{i}"), format!("x{i}")]);
            if i % 2 == 0 {
                b = b.row([format!("k{i}"), format!("y{i}")]);
            }
        }
        vec![a.build().unwrap(), b.build().unwrap()]
    }

    #[test]
    fn parallel_matches_sequential() {
        let tables = tables();
        let schema = IntegrationSchema::from_matching_headers(&tables);
        let sequential = full_disjunction(&schema, &tables);
        for threads in [0, 2, 3, 4] {
            let parallel = parallel_full_disjunction(&schema, &tables, threads);
            assert_eq!(parallel, sequential, "threads = {threads}");
        }
    }

    #[test]
    fn single_thread_falls_back() {
        let tables = tables();
        let schema = IntegrationSchema::from_matching_headers(&tables);
        let (result, stats) = parallel_full_disjunction_with(&schema, &tables, 1);
        assert_eq!(result, full_disjunction(&schema, &tables));
        assert_eq!(stats.input_tuples, 60);
        assert_eq!(stats.runtime.tasks, 0, "the sequential operator never schedules");
    }

    #[test]
    fn stats_are_reported() {
        let tables = tables();
        let schema = IntegrationSchema::from_matching_headers(&tables);
        let (_, stats) = parallel_full_disjunction_with(&schema, &tables, 2);
        assert_eq!(stats.input_tuples, 60);
        assert_eq!(stats.components, 40);
        assert_eq!(stats.output_tuples, 40);
        assert_eq!(stats.largest_component, 2);
        // Every component closure went through the executor on two workers.
        assert_eq!(stats.runtime.tasks, 40);
        assert_eq!(stats.runtime.workers(), 2);
    }

    #[test]
    fn auto_mode_gates_tiny_inputs_to_one_worker() {
        let tables = tables();
        let schema = IntegrationSchema::from_matching_headers(&tables);
        // 40 components of ≤ 2 tuples: total closure cost ≈ 140 units, far
        // below the floor, so auto mode stays inline (but still schedules).
        let (result, stats) = parallel_full_disjunction_with(&schema, &tables, 0);
        assert_eq!(result, full_disjunction(&schema, &tables));
        assert_eq!(stats.runtime.tasks, 40);
        assert_eq!(stats.runtime.workers(), 1, "tiny batches must not spawn workers");
    }
}
