//! Brute-force specification of Full Disjunction.
//!
//! Enumerates every subset of base tuples, keeps the subsets that are
//! pairwise consistent and join-connected, merges each, and removes subsumed
//! results.  Exponential — usable only on tiny inputs — but it is a direct
//! transcription of the FD definition and therefore the oracle the property
//! tests compare the scalable algorithm against.

use lake_table::Table;

use crate::outer_union::outer_union;
use crate::schema::IntegrationSchema;
use crate::subsume::remove_subsumed;
use crate::tuple::{IntegratedTable, IntegratedTuple};

/// Maximum number of base tuples the oracle accepts (2^n subsets).
pub const MAX_SPEC_TUPLES: usize = 18;

/// Computes the Full Disjunction by exhaustive enumeration.
///
/// # Panics
/// Panics when the inputs contain more than [`MAX_SPEC_TUPLES`] tuples.
pub fn specification_full_disjunction(
    schema: &IntegrationSchema,
    tables: &[Table],
) -> IntegratedTable {
    let base = outer_union(schema, tables);
    assert!(
        base.len() <= MAX_SPEC_TUPLES,
        "specification FD is exponential; got {} tuples (max {MAX_SPEC_TUPLES})",
        base.len()
    );

    let n = base.len();
    let mut results: Vec<IntegratedTuple> = Vec::new();
    for mask in 1u32..(1u32 << n) {
        let members: Vec<&IntegratedTuple> =
            (0..n).filter(|i| mask & (1 << i) != 0).map(|i| &base[i]).collect();
        if !pairwise_consistent(&members) || !join_connected(&members) {
            continue;
        }
        let mut merged = members[0].clone();
        for m in &members[1..] {
            merged = merged.merge(m);
        }
        results.push(merged);
    }

    let tuples = remove_subsumed(results);
    IntegratedTable::new(schema.column_names().to_vec(), tuples).sorted()
}

fn pairwise_consistent(members: &[&IntegratedTuple]) -> bool {
    for i in 0..members.len() {
        for j in (i + 1)..members.len() {
            if !members[i].consistent_with(members[j]) {
                return false;
            }
        }
    }
    true
}

/// Whether the overlap graph over the members is connected (single tuples are
/// trivially connected).
fn join_connected(members: &[&IntegratedTuple]) -> bool {
    let n = members.len();
    if n <= 1 {
        return true;
    }
    let mut visited = vec![false; n];
    let mut stack = vec![0usize];
    visited[0] = true;
    let mut seen = 1usize;
    while let Some(i) = stack.pop() {
        for j in 0..n {
            if !visited[j] && members[i].overlaps(members[j]) {
                visited[j] = true;
                seen += 1;
                stack.push(j);
            }
        }
    }
    seen == n
}

#[cfg(test)]
mod tests {
    use super::*;
    use lake_table::TableBuilder;

    #[test]
    fn figure1_style_example() {
        let tables = vec![
            TableBuilder::new("T1", ["City", "Country"])
                .row(["Berlin", "Germany"])
                .row(["Toronto", "Canada"])
                .build()
                .unwrap(),
            TableBuilder::new("T2", ["City", "Rate"])
                .row(["Berlin", "63%"])
                .row(["Boston", "62%"])
                .build()
                .unwrap(),
        ];
        let schema = IntegrationSchema::from_matching_headers(&tables);
        let fd = specification_full_disjunction(&schema, &tables);
        // Berlin merges; Toronto and Boston stay partial: 3 tuples.
        assert_eq!(fd.len(), 3);
        assert!(fd.unrepresented_base_tuples(&schema, &tables).is_empty());
    }

    #[test]
    fn no_joinable_tuples_yields_outer_union() {
        let tables = vec![
            TableBuilder::new("A", ["x"]).row(["1"]).row(["2"]).build().unwrap(),
            TableBuilder::new("B", ["y"]).row(["3"]).build().unwrap(),
        ];
        let schema = IntegrationSchema::from_matching_headers(&tables);
        let fd = specification_full_disjunction(&schema, &tables);
        assert_eq!(fd.len(), 3);
    }

    #[test]
    #[should_panic(expected = "exponential")]
    fn refuses_large_inputs() {
        let mut builder = TableBuilder::new("big", ["x"]);
        for i in 0..30 {
            builder = builder.row([i.to_string()]);
        }
        let tables = vec![builder.build().unwrap()];
        let schema = IntegrationSchema::from_matching_headers(&tables);
        specification_full_disjunction(&schema, &tables);
    }
}
