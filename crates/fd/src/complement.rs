//! Complementation closure: the exact Full Disjunction inside one
//! join-connected component.
//!
//! Starting from the padded base tuples, the closure repeatedly merges every
//! pair of *joinable* tuples (consistent and overlapping) until no new tuple
//! can be produced, then removes subsumed tuples.  Because any inconsistency
//! between base tuples is preserved by merging, the closure generates exactly
//! the merges of connected-consistent sets of base tuples, and subsumption
//! removal keeps the maximal ones — the Full Disjunction semantics.
//!
//! The closure is worst-case exponential (Full Disjunction output can be),
//! but on key-joinable data lake tables components are small; the
//! `(column, value)` candidate index keeps the common case near-linear.

use std::collections::HashMap;

use lake_table::Value;

use crate::subsume::remove_subsumed;
use crate::tuple::IntegratedTuple;

/// Safety valve: components whose closure generates more than this many
/// distinct tuples abort with a panic rather than exhausting memory.  Real
/// workloads stay far below this; the limit exists to surface pathological
/// inputs loudly instead of hanging.
pub const MAX_CLOSURE_TUPLES: usize = 2_000_000;

/// Computes the Full Disjunction of the tuples of one component.
pub fn component_closure(tuples: Vec<IntegratedTuple>) -> Vec<IntegratedTuple> {
    if tuples.len() <= 1 {
        return tuples;
    }

    // All tuples generated so far, deduplicated by values.
    let mut all: Vec<IntegratedTuple> = Vec::with_capacity(tuples.len() * 2);
    let mut by_values: HashMap<Vec<Value>, usize> = HashMap::new();
    // Candidate index: (column, value) -> tuple indices having that cell.
    let mut by_cell: HashMap<(usize, Value), Vec<usize>> = HashMap::new();
    // Work queue of tuple indices whose join partners have not been explored.
    let mut queue: Vec<usize> = Vec::new();

    let push = |tuple: IntegratedTuple,
                all: &mut Vec<IntegratedTuple>,
                by_values: &mut HashMap<Vec<Value>, usize>,
                by_cell: &mut HashMap<(usize, Value), Vec<usize>>,
                queue: &mut Vec<usize>| {
        match by_values.get(tuple.values()) {
            Some(&idx) => {
                let prov = tuple.provenance().clone();
                all[idx].absorb_provenance(&prov);
            }
            None => {
                let idx = all.len();
                assert!(
                    idx < MAX_CLOSURE_TUPLES,
                    "Full Disjunction closure exceeded {MAX_CLOSURE_TUPLES} tuples in one component"
                );
                by_values.insert(tuple.values().to_vec(), idx);
                for col in tuple.non_null_columns() {
                    by_cell.entry((col, tuple.value(col).clone())).or_default().push(idx);
                }
                all.push(tuple);
                queue.push(idx);
            }
        }
    };

    for tuple in tuples {
        push(tuple, &mut all, &mut by_values, &mut by_cell, &mut queue);
    }

    while let Some(i) = queue.pop() {
        // Collect candidate partners: tuples sharing at least one cell.
        let mut candidates: Vec<usize> = Vec::new();
        {
            let tuple = &all[i];
            for col in tuple.non_null_columns() {
                if let Some(idxs) = by_cell.get(&(col, tuple.value(col).clone())) {
                    candidates.extend(idxs.iter().copied().filter(|&j| j != i));
                }
            }
        }
        candidates.sort_unstable();
        candidates.dedup();

        for j in candidates {
            let (a, b) = (&all[i], &all[j]);
            if a.joinable_with(b) {
                let merged = a.merge(b);
                if !by_values.contains_key(merged.values()) {
                    push(merged, &mut all, &mut by_values, &mut by_cell, &mut queue);
                } else {
                    // Known values: still fold in the provenance.
                    let idx = by_values[merged.values()];
                    let prov = merged.provenance().clone();
                    all[idx].absorb_provenance(&prov);
                }
            }
        }
    }

    remove_subsumed(all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lake_table::{ProvenanceSet, TupleId};

    fn tuple(values: &[&str], table: &str, row: usize) -> IntegratedTuple {
        let values = values
            .iter()
            .map(|s| if s.is_empty() { Value::Null } else { Value::text(*s) })
            .collect();
        IntegratedTuple::new(values, ProvenanceSet::single(TupleId::new(table, row)))
    }

    #[test]
    fn two_joinable_tuples_merge_into_one() {
        let out = component_closure(vec![
            tuple(&["Berlin", "Germany", ""], "T1", 0),
            tuple(&["Berlin", "", "63%"], "T2", 0),
        ]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].non_null_count(), 3);
        assert_eq!(out[0].provenance().len(), 2);
    }

    #[test]
    fn inconsistent_tuples_stay_apart() {
        let out = component_closure(vec![
            tuple(&["Berlin", "Germany"], "T1", 0),
            tuple(&["Berlin", "France"], "T2", 0),
        ]);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn transitive_merge_via_a_bridge_tuple() {
        // a: (x, -, -), b: (x, y, -), c: (-, y, z) — a and c only join through b.
        let out = component_closure(vec![
            tuple(&["x", "", ""], "A", 0),
            tuple(&["x", "y", ""], "B", 0),
            tuple(&["", "y", "z"], "C", 0),
        ]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].non_null_count(), 3);
        assert_eq!(out[0].provenance().len(), 3);
    }

    #[test]
    fn branching_produces_multiple_maximal_tuples() {
        // One "hub" tuple joins with two mutually inconsistent tuples:
        // FD keeps both maximal combinations.
        let out = component_closure(vec![
            tuple(&["k", "", ""], "Hub", 0),
            tuple(&["k", "a", ""], "L", 0),
            tuple(&["k", "b", ""], "R", 0),
        ]);
        assert_eq!(out.len(), 2);
        for t in &out {
            assert_eq!(t.non_null_count(), 2);
            // Both maximal tuples contain the hub.
            assert!(t.provenance().contains(&TupleId::new("Hub", 0)));
        }
    }

    #[test]
    fn diamond_join_merges_everything_consistent() {
        // Classic FD example: two attributes bridge four tuples into one.
        let out = component_closure(vec![
            tuple(&["a", "b", "", ""], "T1", 0),
            tuple(&["a", "", "c", ""], "T2", 0),
            tuple(&["", "b", "", "d"], "T3", 0),
            tuple(&["", "", "c", "d"], "T4", 0),
        ]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].non_null_count(), 4);
        assert_eq!(out[0].provenance().len(), 4);
    }

    #[test]
    fn singleton_component_is_returned_unchanged() {
        let input = vec![tuple(&["only"], "T", 0)];
        let out = component_closure(input.clone());
        assert_eq!(out, input);
        assert!(component_closure(Vec::new()).is_empty());
    }

    #[test]
    fn duplicate_base_tuples_collapse_with_union_provenance() {
        let out = component_closure(vec![
            tuple(&["same", "row"], "T1", 0),
            tuple(&["same", "row"], "T2", 5),
        ]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].provenance().len(), 2);
    }
}
