//! Blocking: cheap candidate-pair generation.
//!
//! Comparing every pair of integrated tuples is quadratic; blocking restricts
//! comparisons to tuples that share at least one *blocking key* — a
//! normalised word token or a character-trigram of one of their values.

use std::collections::{BTreeSet, HashMap, HashSet};

use lake_fd::IntegratedTuple;
use lake_text::{string_block_keys, BlockKeyOptions};

/// The blocking keys of one integrated tuple: every normalised word token of
/// every non-null value, plus the leading character trigram of each token
/// (which lets typo variants land in the same block).  Key generation is
/// shared with the fuzzy value matcher via
/// [`lake_text::string_block_keys`]; this profile is
/// [`BlockKeyOptions::default`].
pub fn blocking_keys(tuple: &IntegratedTuple) -> BTreeSet<String> {
    let options = BlockKeyOptions::default();
    let mut keys = BTreeSet::new();
    for value in tuple.values() {
        if value.is_null() {
            continue;
        }
        keys.extend(string_block_keys(&value.render(), &options));
    }
    keys
}

/// Candidate pairs of tuple indices that share at least one blocking key.
/// Oversized blocks (more than `max_block_size` members) are skipped — they
/// correspond to uninformative keys such as "the" and would reintroduce the
/// quadratic blow-up blocking exists to avoid.
pub fn candidate_pairs(tuples: &[IntegratedTuple], max_block_size: usize) -> Vec<(usize, usize)> {
    let mut blocks: HashMap<String, Vec<usize>> = HashMap::new();
    for (idx, tuple) in tuples.iter().enumerate() {
        for key in blocking_keys(tuple) {
            blocks.entry(key).or_default().push(idx);
        }
    }
    let mut pairs: HashSet<(usize, usize)> = HashSet::new();
    for members in blocks.values() {
        if members.len() < 2 || members.len() > max_block_size {
            continue;
        }
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                let (a, b) = (members[i].min(members[j]), members[i].max(members[j]));
                pairs.insert((a, b));
            }
        }
    }
    let mut out: Vec<(usize, usize)> = pairs.into_iter().collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lake_table::{ProvenanceSet, Value};

    fn tuple(values: &[&str]) -> IntegratedTuple {
        IntegratedTuple::new(
            values
                .iter()
                .map(|s| if s.is_empty() { Value::Null } else { Value::text(*s) })
                .collect(),
            ProvenanceSet::empty(),
        )
    }

    #[test]
    fn keys_cover_tokens_and_trigrams() {
        let keys = blocking_keys(&tuple(&["New York", ""]));
        assert!(keys.contains("t:new"));
        assert!(keys.contains("t:york"));
        assert!(keys.contains("g:new"));
        assert!(keys.contains("g:yor"));
    }

    #[test]
    fn null_only_tuples_have_no_keys() {
        assert!(blocking_keys(&tuple(&["", ""])).is_empty());
    }

    #[test]
    fn candidates_require_a_shared_key() {
        let tuples = vec![
            tuple(&["Berlin", "Germany"]),
            tuple(&["Berlim", "Germany"]), // typo still shares "ber" trigram / "germany"
            tuple(&["Toronto", "Canada"]),
        ];
        let pairs = candidate_pairs(&tuples, 50);
        assert!(pairs.contains(&(0, 1)));
        assert!(!pairs.contains(&(0, 2)));
        assert!(!pairs.contains(&(1, 2)));
    }

    #[test]
    fn oversized_blocks_are_skipped() {
        let tuples: Vec<IntegratedTuple> = (0..20).map(|_| tuple(&["common"])).collect();
        let pairs = candidate_pairs(&tuples, 5);
        assert!(pairs.is_empty());
        let pairs = candidate_pairs(&tuples, 100);
        assert_eq!(pairs.len(), 20 * 19 / 2);
    }

    #[test]
    fn typo_variants_share_a_trigram_block() {
        let tuples = vec![tuple(&["Barcelona"]), tuple(&["Barcelonna"])];
        let pairs = candidate_pairs(&tuples, 10);
        assert_eq!(pairs, vec![(0, 1)]);
    }

    #[test]
    fn empty_input_yields_no_pairs() {
        assert!(candidate_pairs(&[], 10).is_empty());
        // A single tuple has nothing to pair with.
        assert!(candidate_pairs(&[tuple(&["Berlin"])], 10).is_empty());
        // Tuples with no keys (all-null) never pair, even with themselves.
        assert!(candidate_pairs(&[tuple(&["", ""]), tuple(&["", ""])], 10).is_empty());
    }

    #[test]
    fn max_block_size_boundary_is_inclusive() {
        // Five tuples all share the block of "common": a block of exactly
        // `max_block_size` members is kept, one member more drops it.
        let tuples: Vec<IntegratedTuple> = (0..5).map(|_| tuple(&["common"])).collect();
        assert_eq!(candidate_pairs(&tuples, 5).len(), 5 * 4 / 2);
        assert!(candidate_pairs(&tuples, 4).is_empty());
    }

    #[test]
    fn zero_max_block_size_prunes_everything() {
        let tuples = vec![tuple(&["Berlin"]), tuple(&["Berlin"])];
        assert!(candidate_pairs(&tuples, 0).is_empty());
    }

    #[test]
    fn duplicate_keys_across_values_do_not_duplicate_pairs() {
        // Both tuples repeat the same token in two columns, so the pair is
        // reachable through several identical keys — it must appear once.
        let tuples = vec![tuple(&["Berlin", "Berlin West"]), tuple(&["Berlin", "Berlin East"])];
        let pairs = candidate_pairs(&tuples, 10);
        assert_eq!(pairs, vec![(0, 1)]);
    }

    #[test]
    fn pairs_are_sorted_and_unique() {
        let tuples = vec![
            tuple(&["Berlin", "Germany"]),
            tuple(&["Berlin", "Prussia"]),
            tuple(&["Berlin", "Europe"]),
        ];
        let pairs = candidate_pairs(&tuples, 10);
        assert_eq!(pairs, vec![(0, 1), (0, 2), (1, 2)]);
    }
}
