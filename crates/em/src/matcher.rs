//! Thresholded matching, clustering and evaluation.

use lake_fd::components::UnionFind;
use lake_fd::IntegratedTable;
use lake_metrics::{ConfusionCounts, PairSet, PrecisionRecall};
use lake_table::TupleId;

use crate::blocking::candidate_pairs;
use crate::similarity::weighted_record_similarity;

/// Parameters of the entity matcher.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmOptions {
    /// Minimum record similarity for a candidate pair to be declared a match.
    pub threshold: f64,
    /// Maximum block size considered during blocking.
    pub max_block_size: usize,
    /// Weight columns by their value distinctiveness (distinct / non-null).
    /// Low-cardinality attributes (country codes, job titles) then cannot
    /// make two different entities look alike on their own.  On by default.
    pub distinctiveness_weights: bool,
}

impl Default for EmOptions {
    fn default() -> Self {
        EmOptions { threshold: 0.86, max_block_size: 64, distinctiveness_weights: true }
    }
}

/// Per-column weights derived from value distinctiveness: the fraction of
/// distinct values among the column's non-null cells (clamped to a small
/// positive floor so no shared column is ignored completely).
pub fn column_weights(table: &IntegratedTable) -> Vec<f64> {
    let num_columns = table.columns().len();
    let mut distinct: Vec<std::collections::HashSet<&lake_table::Value>> =
        vec![std::collections::HashSet::new(); num_columns];
    let mut non_null = vec![0usize; num_columns];
    for tuple in table.tuples() {
        for (c, value) in tuple.values().iter().enumerate() {
            if value.is_present() {
                non_null[c] += 1;
                distinct[c].insert(value);
            }
        }
    }
    (0..num_columns)
        .map(|c| {
            if non_null[c] == 0 {
                0.0
            } else {
                (distinct[c].len() as f64 / non_null[c] as f64).max(0.02)
            }
        })
        .collect()
}

/// The output of entity matching over an integrated table.
#[derive(Debug, Clone)]
pub struct EmResult {
    /// Matched pairs of tuple indices (above threshold), sorted.
    pub matched_pairs: Vec<(usize, usize)>,
    /// Entity clusters (connected components of the match graph), each a
    /// sorted list of tuple indices; singletons included.
    pub clusters: Vec<Vec<usize>>,
}

impl EmResult {
    /// Expands the clusters to pairs of *base tuples* using the integrated
    /// tuples' provenance.  Two base tuples are predicted to be the same
    /// entity when their integrated tuples fall in the same cluster — in
    /// particular, base tuples already merged into one integrated tuple by FD
    /// are automatically predicted as matches.
    pub fn base_tuple_pairs(&self, table: &IntegratedTable) -> PairSet<TupleId> {
        let mut pairs = PairSet::new();
        for cluster in &self.clusters {
            let mut members: Vec<TupleId> = Vec::new();
            for &idx in cluster {
                members.extend(table.tuples()[idx].provenance().iter().cloned());
            }
            members.sort();
            members.dedup();
            pairs.insert_cluster(&members);
        }
        pairs
    }

    /// Evaluates the base-tuple pair predictions against gold pairs.
    pub fn evaluate(&self, table: &IntegratedTable, gold: &PairSet<TupleId>) -> PrecisionRecall {
        self.confusion(table, gold).scores()
    }

    /// Confusion counts of the base-tuple pair predictions against gold pairs.
    pub fn confusion(&self, table: &IntegratedTable, gold: &PairSet<TupleId>) -> ConfusionCounts {
        self.base_tuple_pairs(table).confusion_against(gold)
    }
}

/// Runs blocking, scoring, thresholding and clustering over an integrated
/// table.
pub fn match_entities(table: &IntegratedTable, options: EmOptions) -> EmResult {
    let tuples = table.tuples();
    let candidates = candidate_pairs(tuples, options.max_block_size);
    let weights = if options.distinctiveness_weights {
        column_weights(table)
    } else {
        vec![1.0; table.columns().len()]
    };

    let mut matched_pairs = Vec::new();
    let mut uf = UnionFind::new(tuples.len());
    for (i, j) in candidates {
        let sim = weighted_record_similarity(&tuples[i], &tuples[j], &weights);
        if sim >= options.threshold {
            matched_pairs.push((i, j));
            uf.union(i, j);
        }
    }
    matched_pairs.sort_unstable();
    let clusters = uf.groups();
    EmResult { matched_pairs, clusters }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lake_fd::{full_disjunction, IntegrationSchema};
    use lake_table::TableBuilder;

    /// Two source tables describing the same three people, with a typo in one
    /// name; gold says row i of A matches row i of B.
    fn people_setup() -> (IntegratedTable, PairSet<TupleId>) {
        let tables = vec![
            TableBuilder::new("A", ["name", "city"])
                .row(["Alice Johnson", "Boston"])
                .row(["Bob Smith", "Denver"])
                .row(["Carol Diaz", "Austin"])
                .build()
                .unwrap(),
            TableBuilder::new("B", ["name", "email"])
                .row(["Alice Jonson", "alice@example.com"])
                .row(["Bob Smith", "bob@example.com"])
                .row(["Carol Diaz", "carol@example.com"])
                .build()
                .unwrap(),
        ];
        let schema = IntegrationSchema::from_matching_headers(&tables);
        let integrated = full_disjunction(&schema, &tables);
        let mut gold = PairSet::new();
        for i in 0..3 {
            gold.insert(TupleId::new("A", i), TupleId::new("B", i));
        }
        (integrated, gold)
    }

    #[test]
    fn matches_equal_and_typo_names() {
        let (integrated, gold) = people_setup();
        let result = match_entities(&integrated, EmOptions::default());
        let scores = result.evaluate(&integrated, &gold);
        assert!(scores.recall > 0.9, "recall {scores:?}");
        assert!(scores.precision > 0.9, "precision {scores:?}");
    }

    #[test]
    fn fd_merged_tuples_count_as_matches_automatically() {
        let (integrated, gold) = people_setup();
        // Even a matcher that never matches anything gets the exact-name
        // pairs right, because FD already merged them.
        let result =
            match_entities(&integrated, EmOptions { threshold: 1.1, ..EmOptions::default() });
        let pairs = result.base_tuple_pairs(&integrated);
        assert!(pairs.len() >= 2, "FD provenance should produce base pairs");
        let scores = result.evaluate(&integrated, &gold);
        assert!(scores.precision > 0.99);
        assert!(scores.recall >= 0.6);
    }

    #[test]
    fn clusters_cover_all_tuples() {
        let (integrated, _) = people_setup();
        let result = match_entities(&integrated, EmOptions::default());
        let covered: usize = result.clusters.iter().map(|c| c.len()).sum();
        assert_eq!(covered, integrated.len());
    }

    #[test]
    fn low_threshold_overmatches_and_hurts_precision() {
        let (integrated, gold) = people_setup();
        let strict = match_entities(&integrated, EmOptions::default()).evaluate(&integrated, &gold);
        let sloppy =
            match_entities(&integrated, EmOptions { threshold: 0.01, ..EmOptions::default() })
                .evaluate(&integrated, &gold);
        assert!(sloppy.precision <= strict.precision);
        assert!(sloppy.recall >= strict.recall);
    }
}
