//! Attribute-wise similarity between integrated tuples.

use lake_fd::IntegratedTuple;
use lake_text::{levenshtein_similarity, monge_elkan, normalize};

/// Similarity between two integrated tuples in `[0, 1]` with uniform column
/// weights.  See [`weighted_record_similarity`] for the weighted form the
/// matcher uses.
pub fn record_similarity(a: &IntegratedTuple, b: &IntegratedTuple) -> f64 {
    let weights = vec![1.0; a.values().len()];
    weighted_record_similarity(a, b, &weights)
}

/// Weighted similarity between two integrated tuples in `[0, 1]`.
///
/// For every integrated column where both tuples have a value, the column
/// contributes the better of Monge–Elkan (token-order tolerant, averaged over
/// both directions) and normalised Levenshtein similarity of the rendered
/// values, scaled by the column's weight.  Columns where only one tuple has a
/// value are skipped: partial tuples are compared only on their common
/// evidence, which is exactly why partially-integrated tables make entity
/// matching harder (less common evidence → noisier scores).
///
/// `weights[c]` is the weight of integrated column `c`; the matcher derives
/// them from each column's value distinctiveness so that low-cardinality
/// attributes (a `country` column with eight values, a `title` column with
/// six) cannot make two different entities look alike on their own.
///
/// Returns 0.0 when the tuples share no non-null column with positive weight.
pub fn weighted_record_similarity(
    a: &IntegratedTuple,
    b: &IntegratedTuple,
    weights: &[f64],
) -> f64 {
    debug_assert_eq!(a.values().len(), weights.len(), "one weight per integrated column");
    let mut total = 0.0;
    let mut weight_sum = 0.0;
    for (c, (va, vb)) in a.values().iter().zip(b.values()).enumerate() {
        if va.is_null() || vb.is_null() {
            continue;
        }
        let weight = weights.get(c).copied().unwrap_or(1.0);
        if weight <= 0.0 {
            continue;
        }
        let sa = normalize(&va.render());
        let sb = normalize(&vb.render());
        let sim = if sa == sb {
            1.0
        } else {
            // Monge–Elkan is asymmetric; average both directions so the
            // record similarity is symmetric.
            let me = 0.5 * (monge_elkan(&sa, &sb) + monge_elkan(&sb, &sa));
            me.max(levenshtein_similarity(&sa, &sb))
        };
        total += weight * sim;
        weight_sum += weight;
    }
    if weight_sum == 0.0 {
        0.0
    } else {
        total / weight_sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lake_table::{ProvenanceSet, Value};

    fn tuple(values: &[&str]) -> IntegratedTuple {
        IntegratedTuple::new(
            values
                .iter()
                .map(|s| if s.is_empty() { Value::Null } else { Value::text(*s) })
                .collect(),
            ProvenanceSet::empty(),
        )
    }

    #[test]
    fn identical_tuples_have_similarity_one() {
        let a = tuple(&["Berlin", "Germany"]);
        assert!((record_similarity(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn typos_score_high_unrelated_scores_low() {
        let a = tuple(&["Berlin", "Germany"]);
        let b = tuple(&["Berlinn", "Germany"]);
        let c = tuple(&["Toronto", "Canada"]);
        assert!(record_similarity(&a, &b) > 0.85);
        assert!(record_similarity(&a, &c) < 0.5);
    }

    #[test]
    fn comparison_uses_only_shared_columns() {
        let a = tuple(&["Berlin", "Germany", ""]);
        let b = tuple(&["Berlin", "", "63%"]);
        // Only the first column is shared and it matches exactly.
        assert!((record_similarity(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_tuples_score_zero() {
        let a = tuple(&["Berlin", ""]);
        let b = tuple(&["", "Germany"]);
        assert_eq!(record_similarity(&a, &b), 0.0);
    }

    #[test]
    fn partial_tuples_can_be_deceptively_similar() {
        // The false-positive mechanism of the paper's §3.2: two different
        // entities look identical when the distinguishing attribute is
        // missing from one of the partial tuples.
        let springfield_il = tuple(&["Springfield", "Illinois"]);
        let springfield_mo_partial = tuple(&["Springfield", ""]);
        assert!((record_similarity(&springfield_il, &springfield_mo_partial) - 1.0).abs() < 1e-12);
        // With the full tuple the difference is visible.
        let springfield_mo = tuple(&["Springfield", "Missouri"]);
        assert!(record_similarity(&springfield_il, &springfield_mo) < 0.9);
    }

    #[test]
    fn symmetric() {
        let a = tuple(&["Jane Doe", "NYC"]);
        let b = tuple(&["Doe, Jane", "New York"]);
        assert!((record_similarity(&a, &b) - record_similarity(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn weights_shift_the_score_toward_distinctive_columns() {
        // Same low-cardinality attribute (column 1), different names (column 0).
        let a = tuple(&["Alice Johnson", "Engineer"]);
        let b = tuple(&["Robert Miller", "Engineer"]);
        let uniform = record_similarity(&a, &b);
        let weighted = weighted_record_similarity(&a, &b, &[1.0, 0.05]);
        assert!(weighted < uniform, "down-weighting the shared title must lower the score");
        // Zero-weight columns are ignored entirely.
        let only_title = weighted_record_similarity(&a, &b, &[0.0, 1.0]);
        assert!((only_title - 1.0).abs() < 1e-12);
        // No shared positively-weighted column → 0.
        assert_eq!(weighted_record_similarity(&a, &b, &[0.0, 0.0]), 0.0);
    }
}
