//! # lake-em
//!
//! Downstream entity matching over integrated tables.
//!
//! The paper's §3.2 evaluates integration quality *extrinsically*: run an
//! entity-matching (EM) algorithm over the table produced by regular FD and
//! by Fuzzy FD, and compare precision/recall/F1 against gold entity labels.
//! A better-integrated table gives the matcher more complete tuples, which
//! both removes false positives (partial tuples are easy to confuse) and
//! recovers false negatives (tuples already merged by FD are trivially
//! matched through their provenance).
//!
//! The implementation is a classical, dependency-free EM pipeline:
//! n-gram/token blocking → attribute-wise string similarity scoring →
//! thresholded matching → union–find clustering → pairwise evaluation at the
//! *base tuple* level (so integration and matching quality are measured on
//! the same units as the gold standard).

pub mod blocking;
pub mod matcher;
pub mod similarity;

pub use blocking::{blocking_keys, candidate_pairs};
pub use matcher::{column_weights, match_entities, EmOptions, EmResult};
pub use similarity::{record_similarity, weighted_record_similarity};
