//! The Match Values component (paper §2.1–2.2).
//!
//! Given a set of aligned columns, partition their values into disjoint
//! groups of fuzzily-matching values (Definition 2) and pick a representative
//! per group.  The implementation follows the paper's iterative procedure:
//! start from the first column, bipartite-match the current *combined column*
//! against the next column (linear sum assignment over cosine distances,
//! discarding assignments at distance ≥ θ), merge matched values, and repeat
//! until every column has been folded in.

use std::collections::HashMap;

use lake_assign::{solve, Assignment, AssignmentAlgorithm, CostMatrix};
use lake_embed::{Embedder, Vector};
use lake_table::Value;

use crate::config::{AssignmentStrategy, FuzzyFdConfig};

/// Index of a column within one aligned column set (0 = first/earliest table).
pub type ColumnPosition = usize;

/// A group of values (across aligned columns) determined to denote the same
/// thing, together with the representative value that will replace all of
/// them before the equi-join Full Disjunction runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueGroup {
    /// The member values, tagged with the column they came from.
    pub members: Vec<(ColumnPosition, Value)>,
    /// The representative (most frequent member; ties go to the earliest
    /// column, per the paper's rule).
    pub representative: Value,
}

impl ValueGroup {
    /// All cross-column member pairs of this group — the unit the Table 1
    /// experiment scores against gold pairs.
    pub fn cross_column_pairs(&self) -> Vec<((ColumnPosition, Value), (ColumnPosition, Value))> {
        let mut out = Vec::new();
        for i in 0..self.members.len() {
            for j in (i + 1)..self.members.len() {
                if self.members[i].0 != self.members[j].0 {
                    out.push((self.members[i].clone(), self.members[j].clone()));
                }
            }
        }
        out
    }

    /// Number of member values.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` when the group has no members (never produced by the matcher,
    /// but provided alongside [`len`](Self::len) for API completeness).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// `true` when the group has a single member (nothing was matched to it).
    pub fn is_singleton(&self) -> bool {
        self.members.len() <= 1
    }
}

/// Matches values across aligned columns using a configured embedder.
pub struct ValueMatcher<'a> {
    embedder: &'a dyn Embedder,
    config: FuzzyFdConfig,
}

/// Internal working state of one group during the iterative matching.
struct WorkingGroup {
    members: Vec<(ColumnPosition, Value)>,
    representative: Value,
    embedding: Vector,
}

impl<'a> ValueMatcher<'a> {
    /// Creates a matcher.
    pub fn new(embedder: &'a dyn Embedder, config: FuzzyFdConfig) -> Self {
        ValueMatcher { embedder, config }
    }

    /// Matches the values of a set of aligned columns.
    ///
    /// `columns[i]` holds the values of the i-th aligned column in table
    /// order; duplicates and nulls are tolerated (nulls are ignored, and the
    /// clean-clean assumption means duplicates within a column are simply
    /// collapsed).
    pub fn match_values(&self, columns: &[Vec<Value>]) -> Vec<ValueGroup> {
        // Global occurrence counts drive representative selection.
        let mut counts: HashMap<Value, usize> = HashMap::new();
        for column in columns {
            for value in column {
                if value.is_present() {
                    *counts.entry(value.clone()).or_insert(0) += 1;
                }
            }
        }

        let mut groups: Vec<WorkingGroup> = Vec::new();
        for (position, column) in columns.iter().enumerate() {
            let distinct = distinct_present(column);
            if position == 0 || groups.is_empty() {
                for value in distinct {
                    groups.push(self.singleton(position, value));
                }
                continue;
            }
            self.fold_column(&mut groups, position, distinct, &counts);
        }

        groups
            .into_iter()
            .map(|g| ValueGroup { members: g.members, representative: g.representative })
            .collect()
    }

    /// Folds one more column into the current combined column (the groups).
    fn fold_column(
        &self,
        groups: &mut Vec<WorkingGroup>,
        position: ColumnPosition,
        values: Vec<Value>,
        counts: &HashMap<Value, usize>,
    ) {
        // Which groups already absorbed a value from this column (bipartite
        // constraint: at most one value per column per group).
        let mut group_taken = vec![false; groups.len()];
        let mut leftover: Vec<Value> = Vec::new();

        // Pass 1: exact matches (identical values are at distance 0, so the
        // assignment would match them anyway — doing it first is the
        // optimisation that keeps equi-join workloads cheap).
        if self.config.exact_match_first {
            let mut member_index: HashMap<Value, usize> = HashMap::new();
            for (g_idx, group) in groups.iter().enumerate() {
                for (_, member) in &group.members {
                    member_index.entry(member.clone()).or_insert(g_idx);
                }
            }
            for value in values {
                match member_index.get(&value) {
                    Some(&g_idx) if !group_taken[g_idx] => {
                        groups[g_idx].members.push((position, value));
                        group_taken[g_idx] = true;
                        self.refresh_representative(&mut groups[g_idx], counts);
                    }
                    _ => leftover.push(value),
                }
            }
        } else {
            leftover = values;
        }

        // Pass 2: fuzzy matching of the leftovers against the untaken groups.
        let candidate_groups: Vec<usize> = (0..groups.len()).filter(|&i| !group_taken[i]).collect();
        let fuzzy_values: Vec<Value> = leftover
            .iter()
            .filter(|v| v.render().chars().count() >= self.config.min_fuzzy_length)
            .cloned()
            .collect();
        let mut matched_values: Vec<bool> = vec![false; leftover.len()];

        if !candidate_groups.is_empty() && !fuzzy_values.is_empty() {
            let value_embeddings: Vec<Vector> =
                fuzzy_values.iter().map(|v| self.embedder.embed(&v.render())).collect();
            let matrix = CostMatrix::from_fn(candidate_groups.len(), fuzzy_values.len(), |r, c| {
                groups[candidate_groups[r]].embedding.cosine_distance(&value_embeddings[c]) as f64
            });
            let assignment = self.solve_assignment(&matrix);
            let accepted = assignment.threshold(&matrix, self.config.theta as f64);
            for (row, col) in &accepted.pairs {
                let g_idx = candidate_groups[*row];
                let value = fuzzy_values[*col].clone();
                groups[g_idx].members.push((position, value.clone()));
                self.refresh_representative(&mut groups[g_idx], counts);
                // Mark the original leftover slot as matched.
                if let Some(slot) =
                    leftover.iter().enumerate().position(|(i, v)| !matched_values[i] && *v == value)
                {
                    matched_values[slot] = true;
                }
            }
        }

        // Pass 3: everything still unmatched becomes a new singleton group —
        // "left in a singleton set represented by its embedding".
        for (idx, value) in leftover.into_iter().enumerate() {
            if !matched_values[idx] {
                groups.push(self.singleton(position, value));
            }
        }
    }

    fn solve_assignment(&self, matrix: &CostMatrix) -> Assignment {
        let algorithm = match self.config.assignment_strategy {
            AssignmentStrategy::AlwaysExact => self.config.assignment_algorithm,
            AssignmentStrategy::ExactUpTo { max_side } => {
                if matrix.rows().max(matrix.cols()) <= max_side {
                    self.config.assignment_algorithm
                } else {
                    AssignmentAlgorithm::Greedy
                }
            }
        };
        solve(matrix, algorithm)
    }

    fn singleton(&self, position: ColumnPosition, value: Value) -> WorkingGroup {
        let embedding = self.embedder.embed(&value.render());
        WorkingGroup { members: vec![(position, value.clone())], representative: value, embedding }
    }

    /// Recomputes the representative (most frequent member, ties to the
    /// earliest column) and its embedding.
    fn refresh_representative(&self, group: &mut WorkingGroup, counts: &HashMap<Value, usize>) {
        let mut best: Option<(&(ColumnPosition, Value), usize)> = None;
        for member in &group.members {
            let count = counts.get(&member.1).copied().unwrap_or(1);
            let better = match best {
                None => true,
                Some((current, current_count)) => {
                    count > current_count || (count == current_count && member.0 < current.0)
                }
            };
            if better {
                best = Some((member, count));
            }
        }
        if let Some(((_, value), _)) = best {
            if *value != group.representative {
                group.representative = value.clone();
                group.embedding = self.embedder.embed(&group.representative.render());
            }
        }
    }
}

/// Convenience wrapper: match the values of aligned columns with a given
/// embedder and configuration.
pub fn match_column_values(
    columns: &[Vec<Value>],
    embedder: &dyn Embedder,
    config: FuzzyFdConfig,
) -> Vec<ValueGroup> {
    ValueMatcher::new(embedder, config).match_values(columns)
}

fn distinct_present(column: &[Value]) -> Vec<Value> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for value in column {
        if value.is_present() && seen.insert(value.clone()) {
            out.push(value.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lake_embed::EmbeddingModel;

    fn values(strings: &[&str]) -> Vec<Value> {
        strings.iter().map(|s| Value::text(*s)).collect()
    }

    fn mistral_groups(columns: &[Vec<Value>]) -> Vec<ValueGroup> {
        let embedder = EmbeddingModel::Mistral.build();
        match_column_values(columns, embedder.as_ref(), FuzzyFdConfig::default())
    }

    #[test]
    fn example4_city_columns() {
        // Figure 2 / Example 4 of the paper: three aligned City columns.
        let columns = vec![
            values(&["Berlinn", "Toronto", "Barcelona", "New Delhi"]),
            values(&["Toronto", "Boston", "Berlin", "Barcelona"]),
            values(&["Berlin", "barcelona", "Boston"]),
        ];
        let groups = mistral_groups(&columns);

        // Expected combined column: Berlin, Toronto, Barcelona, New Delhi, Boston.
        assert_eq!(groups.len(), 5, "{groups:#?}");

        let rep_of = |needle: &str| {
            groups
                .iter()
                .find(|g| g.members.iter().any(|(_, v)| v == &Value::text(needle)))
                .map(|g| g.representative.clone())
        };
        // Berlin appears twice, Berlinn once → Berlin is the representative.
        assert_eq!(rep_of("Berlinn"), Some(Value::text("Berlin")));
        // barcelona (lower case) resolves to the majority spelling Barcelona.
        assert_eq!(rep_of("barcelona"), Some(Value::text("Barcelona")));
        // New Delhi stays a singleton.
        let delhi = groups.iter().find(|g| g.representative == Value::text("New Delhi")).unwrap();
        assert!(delhi.is_singleton());
        // Boston appears in two columns and groups together.
        let boston = groups.iter().find(|g| g.representative == Value::text("Boston")).unwrap();
        assert_eq!(boston.len(), 2);
    }

    #[test]
    fn country_codes_match_with_semantic_embedder_only() {
        let columns = vec![
            values(&["Germany", "Canada", "Spain", "India"]),
            values(&["CA", "US", "DE", "ES"]),
        ];
        let semantic = mistral_groups(&columns);
        // Germany–DE, Canada–CA, Spain–ES matched; India and US unmatched:
        // 4 + 2 - 3 = hold on: groups = 4 originals, DE/CA/ES join them, US new → 5.
        assert_eq!(semantic.len(), 5, "{semantic:#?}");
        let canada = semantic
            .iter()
            .find(|g| g.members.iter().any(|(_, v)| v == &Value::text("CA")))
            .unwrap();
        assert!(canada.members.iter().any(|(_, v)| v == &Value::text("Canada")));

        // The surface-only embedder bridges at most as many code pairs as the
        // semantic one (codes like "DE" share no surface with "Germany"), and
        // it must not correctly resolve the full Germany↔DE pair.
        let fasttext = EmbeddingModel::FastText.build();
        let surface = match_column_values(&columns, fasttext.as_ref(), FuzzyFdConfig::default());
        let matched = |groups: &[ValueGroup]| groups.iter().filter(|g| !g.is_singleton()).count();
        assert!(matched(&surface) <= matched(&semantic));
        let germany_surface = surface
            .iter()
            .find(|g| g.members.iter().any(|(_, v)| v == &Value::text("Germany")))
            .unwrap();
        assert!(
            !germany_surface.members.iter().any(|(_, v)| v == &Value::text("DE")),
            "FastText should not resolve Germany ↔ DE: {surface:#?}"
        );
    }

    #[test]
    fn exact_matches_group_without_fuzzy_work() {
        let columns = vec![values(&["alpha", "beta"]), values(&["beta", "gamma"])];
        let embedder = EmbeddingModel::FastText.build();
        let config = FuzzyFdConfig { theta: 0.0, ..FuzzyFdConfig::default() }; // fuzzy disabled
        let groups = match_column_values(&columns, embedder.as_ref(), config);
        assert_eq!(groups.len(), 3);
        let beta = groups.iter().find(|g| g.representative == Value::text("beta")).unwrap();
        assert_eq!(beta.len(), 2);
    }

    #[test]
    fn bipartite_constraint_prevents_double_matching() {
        // Two near-identical variants in the second column both want "Berlin";
        // only one of them may join the group (clean-clean: they must denote
        // different things because they are in the same column).
        let columns = vec![values(&["Berlin"]), values(&["Berlinn", "Berlln"])];
        let groups = mistral_groups(&columns);
        let berlin_groups: Vec<&ValueGroup> = groups
            .iter()
            .filter(|g| g.members.iter().any(|(_, v)| v == &Value::text("Berlin")))
            .collect();
        assert_eq!(berlin_groups.len(), 1);
        assert_eq!(berlin_groups[0].len(), 2, "exactly one variant joins: {groups:#?}");
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn representative_ties_prefer_the_earlier_column() {
        let columns = vec![values(&["Colour"]), values(&["Color"])];
        let embedder = EmbeddingModel::Mistral.build();
        let groups = match_column_values(&columns, embedder.as_ref(), FuzzyFdConfig::default());
        if groups.len() == 1 {
            // Both appear once; the tie goes to the first column's value.
            assert_eq!(groups[0].representative, Value::text("Colour"));
        }
    }

    #[test]
    fn nulls_and_duplicates_are_ignored() {
        let columns = vec![
            vec![Value::text("x"), Value::Null, Value::text("x")],
            vec![Value::Null, Value::text("x")],
        ];
        let groups = mistral_groups(&columns);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 2);
    }

    #[test]
    fn empty_input() {
        assert!(mistral_groups(&[]).is_empty());
        assert!(mistral_groups(&[vec![], vec![]]).is_empty());
        // First column empty, second column seeds the groups.
        let groups = mistral_groups(&[vec![], values(&["a", "b"])]);
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn cross_column_pairs_enumerates_matches() {
        let group = ValueGroup {
            members: vec![
                (0, Value::text("Canada")),
                (1, Value::text("CA")),
                (2, Value::text("CAN")),
            ],
            representative: Value::text("Canada"),
        };
        assert_eq!(group.cross_column_pairs().len(), 3);
        let singleton =
            ValueGroup { members: vec![(0, Value::text("x"))], representative: Value::text("x") };
        assert!(singleton.cross_column_pairs().is_empty());
    }

    #[test]
    fn strict_threshold_disables_fuzzy_matching() {
        let columns = vec![values(&["Berlinn"]), values(&["Berlin"])];
        let embedder = EmbeddingModel::Mistral.build();
        let none = match_column_values(
            &columns,
            embedder.as_ref(),
            FuzzyFdConfig { theta: 0.0, ..FuzzyFdConfig::default() },
        );
        assert_eq!(none.len(), 2);
        let loose = match_column_values(
            &columns,
            embedder.as_ref(),
            FuzzyFdConfig { theta: 0.7, ..FuzzyFdConfig::default() },
        );
        assert_eq!(loose.len(), 1);
    }
}
