//! The Match Values component (paper §2.1–2.2).
//!
//! Given a set of aligned columns, partition their values into disjoint
//! groups of fuzzily-matching values (Definition 2) and pick a representative
//! per group.  The implementation follows the paper's iterative procedure:
//! start from the first column, bipartite-match the current *combined column*
//! against the next column (linear sum assignment over cosine distances,
//! discarding assignments at distance ≥ θ), merge matched values, and repeat
//! until every column has been folded in.
//!
//! Each bipartite step first partitions its candidate space into independent
//! blocks (see [`crate::blocking`]); the dense cartesian matrix of the paper
//! is the fallback for small steps and for
//! [`BlockingPolicy::Exhaustive`](crate::config::BlockingPolicy).

use std::collections::HashMap;

use lake_assign::{
    solve, sparse_shortest_augmenting_path, AssignmentAlgorithm, CostMatrix, SparseCostMatrix,
};
use lake_embed::{Embedder, Vector};
use lake_metrics::Stopwatch;
use lake_runtime::{ParallelPolicy, RuntimeStats};
use lake_table::Value;

use crate::blocking::{
    hashed_value_block_keys, plan_blocks, plan_cartesian, Block, BlockingStats, FoldInputs,
};
use crate::config::{AssignmentStrategy, BlockingPolicy, FuzzyFdConfig, SemanticBlocking};

/// Cost assigned to masked (non-candidate) combinations inside a block.
/// Far above any cosine distance (≤ 2) and any sane θ, so a masked pair can
/// be assigned (the solver must produce a maximum matching) but never
/// survives thresholding.
const PRUNED_COST: f64 = 1.0e6;

/// Index of a column within one aligned column set (0 = first/earliest table).
pub type ColumnPosition = usize;

/// A group of values (across aligned columns) determined to denote the same
/// thing, together with the representative value that will replace all of
/// them before the equi-join Full Disjunction runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueGroup {
    /// The member values, tagged with the column they came from.
    pub members: Vec<(ColumnPosition, Value)>,
    /// The representative (most frequent member; ties go to the earliest
    /// column, per the paper's rule).
    pub representative: Value,
}

impl ValueGroup {
    /// All cross-column member pairs of this group — the unit the Table 1
    /// experiment scores against gold pairs.
    pub fn cross_column_pairs(&self) -> Vec<((ColumnPosition, Value), (ColumnPosition, Value))> {
        let mut out = Vec::new();
        for i in 0..self.members.len() {
            for j in (i + 1)..self.members.len() {
                if self.members[i].0 != self.members[j].0 {
                    out.push((self.members[i].clone(), self.members[j].clone()));
                }
            }
        }
        out
    }

    /// Number of member values.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` when the group has no members (never produced by the matcher,
    /// but provided alongside [`len`](Self::len) for API completeness).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// `true` when the group has exactly one member (nothing was matched to
    /// it).  An empty group is *not* a singleton — use
    /// [`is_empty`](Self::is_empty) for that; the two states are distinct so
    /// `is_empty() || is_singleton()` is the "no actual match" predicate.
    pub fn is_singleton(&self) -> bool {
        self.members.len() == 1
    }
}

/// Matches values across aligned columns using a configured embedder.
pub struct ValueMatcher<'a> {
    embedder: &'a dyn Embedder,
    config: FuzzyFdConfig,
}

/// Internal working state of one group during the iterative matching.
#[derive(Debug, Clone)]
struct WorkingGroup {
    members: Vec<(ColumnPosition, Value)>,
    representative: Value,
    embedding: Vector,
    /// Hashed surface blocking keys of all members, maintained incrementally
    /// so key-based planners never re-normalise/re-hash a member on later
    /// folds.  Left empty when the policy's semantic channel does not use
    /// surface keys (duplicates are fine — the planner dedups).
    surface_keys: Vec<u64>,
}

/// Persistent matching state of one aligned column set: the working groups,
/// the per-value occurrence counts that drive representative selection, and
/// how many columns have been folded in so far.
///
/// Batch matching ([`ValueMatcher::match_values`]) builds one, folds every
/// column and throws it away.  An
/// [`IntegrationSession`](crate::IntegrationSession) instead retains the
/// state between calls and folds *appended* columns into it via
/// [`ValueMatcher::extend`] — the groups of the already-folded columns are
/// never recomputed, only their representatives are re-checked against the
/// updated occurrence counts.
#[derive(Debug, Clone, Default)]
pub struct MatcherState {
    groups: Vec<WorkingGroup>,
    counts: HashMap<Value, usize>,
    columns_folded: usize,
}

impl MatcherState {
    /// Number of value groups held so far.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// `true` before any column carrying present values has been folded.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Number of columns folded into this state (including the seeding
    /// column and columns that turned out empty).
    pub fn columns_folded(&self) -> usize {
        self.columns_folded
    }

    /// The current value groups, cloned out of the working state (the state
    /// itself stays usable for further [`ValueMatcher::extend`] calls).
    pub fn groups(&self) -> Vec<ValueGroup> {
        self.groups
            .iter()
            .map(|g| ValueGroup {
                members: g.members.clone(),
                representative: g.representative.clone(),
            })
            .collect()
    }

    /// Consumes the state into its value groups (the batch path, where no
    /// further folds will happen).
    pub fn into_groups(self) -> Vec<ValueGroup> {
        self.groups
            .into_iter()
            .map(|g| ValueGroup { members: g.members, representative: g.representative })
            .collect()
    }
}

impl<'a> ValueMatcher<'a> {
    /// Creates a matcher.
    pub fn new(embedder: &'a dyn Embedder, config: FuzzyFdConfig) -> Self {
        ValueMatcher { embedder, config }
    }

    /// Matches the values of a set of aligned columns.
    ///
    /// `columns[i]` holds the values of the i-th aligned column in table
    /// order; duplicates and nulls are tolerated (nulls are ignored, and the
    /// clean-clean assumption means duplicates within a column are simply
    /// collapsed).
    pub fn match_values(&self, columns: &[Vec<Value>]) -> Vec<ValueGroup> {
        self.match_values_with_stats(columns).0
    }

    /// As [`match_values`](Self::match_values), additionally reporting how
    /// the candidate space was blocked and pruned across all fold steps.
    pub fn match_values_with_stats(
        &self,
        columns: &[Vec<Value>],
    ) -> (Vec<ValueGroup>, BlockingStats) {
        let (state, stats) = self.begin(columns);
        (state.into_groups(), stats)
    }

    /// Builds a fresh [`MatcherState`] by folding every column, returning
    /// the state (reusable by [`extend`](Self::extend)) alongside the
    /// blocking statistics.  `begin(columns)` performs exactly the folds of
    /// [`match_values`](Self::match_values).
    pub fn begin(&self, columns: &[Vec<Value>]) -> (MatcherState, BlockingStats) {
        let mut state = MatcherState::default();
        let stats = self.extend(&mut state, columns);
        (state, stats)
    }

    /// Folds additional columns into retained state, continuing the column
    /// positions where the previous folds stopped.
    ///
    /// Occurrence counts are extended with the appended columns' values
    /// first, and every existing group's representative is re-checked
    /// against the updated counts before any fold runs.  The groups of
    /// already-folded columns are otherwise untouched: only the appended
    /// columns are planned, which is why an incremental append re-plans
    /// strictly fewer folds than re-matching the whole set.
    ///
    /// The earlier folds themselves are *not* re-run, so a count change
    /// that re-elects a representative can leave the retained groups
    /// different from what a batch run under the final counts would have
    /// built.  Callers needing batch equivalence must gate on
    /// [`representatives_stable`](Self::representatives_stable) and fall
    /// back to [`begin`](Self::begin) over all columns when it reports
    /// drift — which is exactly what
    /// [`IntegrationSession`](crate::IntegrationSession) does.
    pub fn extend(&self, state: &mut MatcherState, columns: &[Vec<Value>]) -> BlockingStats {
        for column in columns {
            for value in column {
                if value.is_present() {
                    *state.counts.entry(value.clone()).or_insert(0) += 1;
                }
            }
        }
        if !state.groups.is_empty() && !columns.is_empty() {
            for group in &mut state.groups {
                self.refresh_representative(group, &state.counts);
            }
        }

        let mut stats = BlockingStats::default();
        for column in columns {
            let position = state.columns_folded;
            state.columns_folded += 1;
            let distinct = distinct_present(column);
            if state.groups.is_empty() {
                for value in distinct {
                    state.groups.push(self.singleton(position, value));
                }
                continue;
            }
            stats.merge(&self.fold_column(&mut state.groups, position, distinct, &state.counts));
        }
        stats
    }

    /// Folds one more column into the current combined column (the groups),
    /// returning the blocking statistics of the fuzzy pass.
    fn fold_column(
        &self,
        groups: &mut Vec<WorkingGroup>,
        position: ColumnPosition,
        values: Vec<Value>,
        counts: &HashMap<Value, usize>,
    ) -> BlockingStats {
        // Which groups already absorbed a value from this column (bipartite
        // constraint: at most one value per column per group).
        let mut group_taken = vec![false; groups.len()];
        let mut leftover: Vec<Value> = Vec::new();

        // Pass 1: exact matches (identical values are at distance 0, so the
        // assignment would match them anyway — doing it first is the
        // optimisation that keeps equi-join workloads cheap).
        if self.config.exact_match_first {
            let mut member_index: HashMap<Value, usize> = HashMap::new();
            for (g_idx, group) in groups.iter().enumerate() {
                for (_, member) in &group.members {
                    member_index.entry(member.clone()).or_insert(g_idx);
                }
            }
            for value in values {
                match member_index.get(&value) {
                    Some(&g_idx) if !group_taken[g_idx] => {
                        let keys = self.value_surface_keys(&value);
                        groups[g_idx].members.push((position, value));
                        groups[g_idx].surface_keys.extend(keys);
                        group_taken[g_idx] = true;
                        self.refresh_representative(&mut groups[g_idx], counts);
                    }
                    _ => leftover.push(value),
                }
            }
        } else {
            leftover = values;
        }

        // Pass 2: fuzzy matching of the leftovers against the untaken groups.
        // The candidate space is partitioned into blocks first; each block is
        // an independent assignment sub-problem (see `crate::blocking`).
        let candidate_groups: Vec<usize> = (0..groups.len()).filter(|&i| !group_taken[i]).collect();
        // Leftover slots long enough to participate in fuzzy matching, paired
        // with their index back into `leftover`.
        let mut fuzzy_values: Vec<Value> = Vec::new();
        let mut fuzzy_slots: Vec<usize> = Vec::new();
        for (slot, value) in leftover.iter().enumerate() {
            if value.render().chars().count() >= self.config.min_fuzzy_length {
                fuzzy_values.push(value.clone());
                fuzzy_slots.push(slot);
            }
        }
        let mut matched_values: Vec<bool> = vec![false; leftover.len()];
        let mut stats = BlockingStats::default();

        let mut leftover_embeddings: Vec<Option<Vector>> = vec![None; leftover.len()];
        if !candidate_groups.is_empty() && !fuzzy_values.is_empty() {
            let value_embeddings: Vec<Vector> =
                fuzzy_values.iter().map(|v| self.embedder.embed(&v.render())).collect();
            let plan = self.plan_fold(&candidate_groups, groups, &fuzzy_values, &value_embeddings);
            let ((accepted, scheduling), solve_time) = Stopwatch::time(|| {
                self.solve_blocks(&plan.blocks, &candidate_groups, groups, &value_embeddings)
            });
            stats = plan.stats;
            stats.runtime.merge(&scheduling);
            // The assignment solve happens outside the planner, so its wall
            // clock is appended to both the phase and the fold total here.
            stats.phase.assign += solve_time;
            stats.phase.total += solve_time;
            for (row, col) in accepted {
                let g_idx = candidate_groups[row];
                let keys = self.value_surface_keys(&fuzzy_values[col]);
                groups[g_idx].members.push((position, fuzzy_values[col].clone()));
                groups[g_idx].surface_keys.extend(keys);
                self.refresh_representative(&mut groups[g_idx], counts);
                matched_values[fuzzy_slots[col]] = true;
            }
            // Keep the embeddings of unmatched fuzzy values: pass 3 turns
            // them into singletons and must not embed them a second time.
            for (f_idx, embedding) in value_embeddings.into_iter().enumerate() {
                leftover_embeddings[fuzzy_slots[f_idx]] = Some(embedding);
            }
        }

        // Pass 3: everything still unmatched becomes a new singleton group —
        // "left in a singleton set represented by its embedding".
        for (idx, value) in leftover.into_iter().enumerate() {
            if !matched_values[idx] {
                let group = match leftover_embeddings[idx].take() {
                    Some(embedding) => WorkingGroup {
                        surface_keys: self.value_surface_keys(&value),
                        members: vec![(position, value.clone())],
                        representative: value,
                        embedding,
                    },
                    None => self.singleton(position, value),
                };
                groups.push(group);
            }
        }
        stats
    }

    /// Plans the blocks of one fuzzy pass.  Key extraction is skipped
    /// entirely when the policy resolves to a cartesian block anyway, and
    /// also under [`SemanticBlocking::ExactBelow`] for folds below the
    /// escalation threshold, whose candidacy test is purely distance-based;
    /// an escalating fold rebuilds its group keys from the members on
    /// demand so the surface-key channel can back the ANN index up.
    fn plan_fold(
        &self,
        candidate_groups: &[usize],
        groups: &[WorkingGroup],
        fuzzy_values: &[Value],
        value_embeddings: &[Vector],
    ) -> crate::blocking::BlockPlan {
        let rows = candidate_groups.len();
        let cols = fuzzy_values.len();
        let keyed = match self.config.blocking {
            BlockingPolicy::Keyed(keyed) if rows * cols >= keyed.min_blocked_pairs => keyed,
            _ => return plan_cartesian(rows, cols),
        };
        let escalates = matches!(keyed.semantic, SemanticBlocking::ExactBelow { .. })
            && keyed.escalation.applies_to(rows, cols);

        let row_embeddings: Vec<&Vector> =
            candidate_groups.iter().map(|&g_idx| &groups[g_idx].embedding).collect();
        let col_embeddings: Vec<&Vector> = value_embeddings.iter().collect();
        // Group keys are maintained incrementally on the working groups, so
        // key-based channels only hash this fold's new values here.  An
        // escalating exact-channel fold has no maintained keys and rebuilds
        // them from the members (duplicates are fine — the planner dedups).
        let key_watch = Stopwatch::start();
        let row_keys: Vec<Vec<u64>> = if self.uses_surface_keys() {
            candidate_groups.iter().map(|&g_idx| groups[g_idx].surface_keys.clone()).collect()
        } else if escalates {
            candidate_groups
                .iter()
                .map(|&g_idx| {
                    let mut keys = Vec::new();
                    for (_, member) in &groups[g_idx].members {
                        keys.extend(hashed_value_block_keys(&member.render()));
                    }
                    keys
                })
                .collect()
        } else {
            Vec::new()
        };
        let col_keys: Vec<Vec<u64>> = if self.uses_surface_keys() || escalates {
            fuzzy_values.iter().map(|value| hashed_value_block_keys(&value.render())).collect()
        } else {
            Vec::new()
        };
        let key_time = key_watch.total();
        let input = FoldInputs {
            row_keys: &row_keys,
            col_keys: &col_keys,
            row_embeddings: &row_embeddings,
            col_embeddings: &col_embeddings,
            theta: self.config.theta,
        };
        let mut plan = plan_blocks(&input, &BlockingPolicy::Keyed(keyed));
        // Key extraction above is hashing work the planner did not see —
        // fold it into the hash phase so the attribution covers the whole
        // planning wall clock.
        plan.stats.phase.hash += key_time;
        plan.stats.phase.total += key_time;
        plan
    }

    /// Solves every block and returns the accepted `(row, col)` pairs, where
    /// `row` indexes `candidate_groups` and `col` indexes the fuzzy values,
    /// together with the scheduling statistics of the solve.  Blocks share
    /// no row and no column, so they are solved independently — on the
    /// shared work-stealing executor ([`lake_runtime::run_scope`]) when the
    /// [`ParallelPolicy`] derived from `matching_threads` says the batch is
    /// worth it, seeded largest-cost-first by solver cells so one giant
    /// block cannot serialise a bucket the way static round-robin
    /// assignment used to.
    ///
    /// Combinations that are not candidate pairs of their block (they share
    /// no blocking key) are masked with [`PRUNED_COST`]: their distance is
    /// never computed and, being far above any θ, a masked assignment is
    /// always discarded — blocked mode can only ever match key-sharing pairs.
    fn solve_blocks(
        &self,
        blocks: &[Block],
        candidate_groups: &[usize],
        groups: &[WorkingGroup],
        value_embeddings: &[Vector],
    ) -> (Vec<(usize, usize)>, RuntimeStats) {
        // Norms are reused across every matrix entry a vector appears in.
        let group_norms: Vec<f32> =
            candidate_groups.iter().map(|&g| groups[g].embedding.norm()).collect();
        let value_norms: Vec<f32> = value_embeddings.iter().map(Vector::norm).collect();

        /// What one cost-matrix cell needs: masking, a fresh distance, or a
        /// distance the planner already measured.
        #[derive(Clone, Copy)]
        enum Cell {
            Masked,
            Compute,
            Known(f32),
        }

        let solve_one = |block: &Block| -> Vec<(usize, usize)> {
            let n_cols = block.cols.len();
            let algorithm = self.resolved_algorithm(block.rows.len(), n_cols);
            // Sparse fast path: a plan that enumerated its candidate pairs
            // needs no dense matrix under the SAP solver — the sparse solver
            // replays the dense big-M arithmetic over candidate cells only,
            // bit-identical by construction (see `lake_assign::sparse`).
            // Hungarian and Greedy (incl. ExactUpTo demotions) keep the dense
            // path, as do cartesian blocks, which have no pair list.
            if algorithm == AssignmentAlgorithm::ShortestAugmentingPath {
                if let Some(pairs) = &block.pairs {
                    let mut entries: Vec<(usize, usize, f64)> = Vec::with_capacity(pairs.len());
                    for (idx, &(r, c)) in pairs.iter().enumerate() {
                        let lr = block.rows.binary_search(&r).expect("pair row outside block");
                        let lc = block.cols.binary_search(&c).expect("pair col outside block");
                        let cost = match &block.costs {
                            Some(costs) => costs[idx] as f64,
                            None => {
                                groups[candidate_groups[r]].embedding.cosine_distance_given_norms(
                                    group_norms[r],
                                    &value_embeddings[c],
                                    value_norms[c],
                                ) as f64
                            }
                        };
                        entries.push((lr, lc, cost));
                    }
                    // Canonical plans arrive row-major already; sorting a
                    // sorted run is O(n) and keeps the invariant local.
                    entries.sort_unstable_by_key(|&(r, c, _)| (r, c));
                    let matrix = SparseCostMatrix::from_entries(
                        block.rows.len(),
                        n_cols,
                        PRUNED_COST,
                        &entries,
                    )
                    .expect("planner pairs are deduplicated and in range");
                    let assignment = sparse_shortest_augmenting_path(&matrix);
                    let accepted = assignment
                        .threshold_with(|r, c| matrix.get(r, c), self.config.theta as f64);
                    return accepted
                        .pairs
                        .iter()
                        .map(|&(r, c)| (block.rows[r], block.cols[c]))
                        .collect();
                }
            }
            // Local-index grid of the block's candidate pairs; rows/cols are
            // sorted, so global→local is a binary search.  An exact-channel
            // plan already measured each candidate's distance — reuse it so
            // the matrix entry is bit-identical and computed exactly once.
            let grid: Option<Vec<Cell>> = block.pairs.as_ref().map(|pairs| {
                let mut grid = vec![Cell::Masked; block.rows.len() * n_cols];
                for (idx, &(r, c)) in pairs.iter().enumerate() {
                    let lr = block.rows.binary_search(&r).expect("pair row outside block");
                    let lc = block.cols.binary_search(&c).expect("pair col outside block");
                    grid[lr * n_cols + lc] = match &block.costs {
                        Some(costs) => Cell::Known(costs[idx]),
                        None => Cell::Compute,
                    };
                }
                grid
            });
            let matrix = CostMatrix::from_fn(block.rows.len(), n_cols, |r, c| {
                if let Some(grid) = &grid {
                    match grid[r * n_cols + c] {
                        Cell::Masked => return PRUNED_COST,
                        Cell::Known(cost) => return cost as f64,
                        Cell::Compute => {}
                    }
                }
                let (row, col) = (block.rows[r], block.cols[c]);
                groups[candidate_groups[row]].embedding.cosine_distance_given_norms(
                    group_norms[row],
                    &value_embeddings[col],
                    value_norms[col],
                ) as f64
            });
            let assignment = solve(&matrix, algorithm);
            let accepted = assignment.threshold(&matrix, self.config.theta as f64);
            accepted.pairs.iter().map(|&(r, c)| (block.rows[r], block.cols[c])).collect()
        };

        // The thread-count semantics ("explicit ≥ 2 is a command, 0
        // auto-gates on solver cells") live in `lake_runtime::ParallelPolicy`
        // and are shared with `lake_fd::parallel`; the cost hint is the
        // block's dense cell count, the same unit the auto floor is
        // calibrated in.
        let policy = self.parallel_policy();
        let (solved, runtime) = lake_runtime::run_scope(
            &policy,
            blocks.iter().collect::<Vec<&Block>>(),
            |block| (block.rows.len() * block.cols.len()) as u64,
            solve_one,
        );
        let mut accepted: Vec<(usize, usize)> = solved.into_iter().flatten().collect();
        // Blocks are disjoint, so ordering only affects the order in which
        // members are appended — sort for run-to-run and thread-count
        // determinism.
        accepted.sort_unstable();
        (accepted, runtime)
    }

    /// The executor policy of this matcher: `matching_threads` with the
    /// default cells-based auto floor.
    fn parallel_policy(&self) -> ParallelPolicy {
        ParallelPolicy {
            threads: self.config.matching_threads,
            min_auto_cost: ParallelPolicy::DEFAULT_MIN_AUTO_COST,
        }
    }

    /// The algorithm the configured strategy resolves to for a block of the
    /// given shape (`ExactUpTo` demotes oversized blocks to Greedy).
    fn resolved_algorithm(&self, rows: usize, cols: usize) -> AssignmentAlgorithm {
        match self.config.assignment_strategy {
            AssignmentStrategy::AlwaysExact => self.config.assignment_algorithm,
            AssignmentStrategy::ExactUpTo { max_side } => {
                if rows.max(cols) <= max_side {
                    self.config.assignment_algorithm
                } else {
                    AssignmentAlgorithm::Greedy
                }
            }
        }
    }

    fn singleton(&self, position: ColumnPosition, value: Value) -> WorkingGroup {
        let embedding = self.embedder.embed(&value.render());
        WorkingGroup {
            surface_keys: self.value_surface_keys(&value),
            members: vec![(position, value.clone())],
            representative: value,
            embedding,
        }
    }

    /// Whether the configured policy plans with surface blocking keys on
    /// *every* fold (and therefore maintains group keys incrementally).  The
    /// exact semantic channel is purely distance-based and skips all key
    /// work; when one of its folds escalates to the ANN tier, the keys for
    /// that fold are rebuilt from the group members on demand instead
    /// (escalated folds are rare and large, so the rebuild is noise there,
    /// while every non-escalating fold stays key-free).
    fn uses_surface_keys(&self) -> bool {
        match self.config.blocking {
            BlockingPolicy::Keyed(keyed) => {
                !matches!(keyed.semantic, SemanticBlocking::ExactBelow { .. })
            }
            BlockingPolicy::Exhaustive => false,
        }
    }

    /// The hashed surface keys of one value, or nothing when the policy does
    /// not block on keys.
    fn value_surface_keys(&self, value: &Value) -> Vec<u64> {
        if self.uses_surface_keys() {
            hashed_value_block_keys(&value.render())
        } else {
            Vec::new()
        }
    }

    /// Recomputes the representative (most frequent member, ties to the
    /// earliest column) and its embedding.
    fn refresh_representative(&self, group: &mut WorkingGroup, counts: &HashMap<Value, usize>) {
        if let Some((_, value)) = elect_representative(&group.members, counts) {
            if *value != group.representative {
                group.representative = value.clone();
                group.embedding = self.embedder.embed(&group.representative.render());
            }
        }
    }

    /// Whether folding `columns`' occurrence counts into `state` would leave
    /// every representative election the retained folds *consumed*
    /// unchanged.
    ///
    /// The retained groups were folded under the counts of the columns
    /// present at the time; an appended duplicate can flip a
    /// most-frequent-member election, and a fold that matched against the
    /// old representative's embedding may then differ from what a batch run
    /// under the final counts would have built.  Counts influence matching
    /// *only* through these elections, and the election a fold consumes is
    /// the one over each group's members **before that fold ran** — so this
    /// checks, per group, the election over every members-prefix at a fold
    /// boundary (members are stored in join order and tagged with their
    /// column position).  The full-member-set election is included whenever
    /// any retained fold ran after the group's last member joined (such
    /// folds matched against it under the old counts); it is exempt only
    /// when the group gained a member in the final retained fold, because
    /// then its next consumer is the appended fold, which re-elects under
    /// the updated counts before running ([`extend`](Self::extend)
    /// refreshes first), exactly as batch would.
    ///
    /// A caller that needs batch equivalence (notably
    /// [`IntegrationSession`](crate::IntegrationSession)) checks this before
    /// [`extend`](Self::extend) and re-matches the whole set from scratch
    /// when it returns `false`: stability here means every retained fold
    /// would have made identical decisions under the appended counts.
    pub fn representatives_stable(&self, state: &MatcherState, columns: &[Vec<Value>]) -> bool {
        // Count only the appended occurrences; the retained totals stay in
        // `state.counts` and are combined per member below (no clone of the
        // full map on the per-append fast path).
        let mut delta: HashMap<&Value, usize> = HashMap::new();
        for column in columns {
            for value in column {
                if value.is_present() {
                    *delta.entry(value).or_insert(0) += 1;
                }
            }
        }
        if delta.is_empty() {
            return true;
        }
        state.groups.iter().all(|group| {
            // Running elections over the join-ordered members, under the old
            // and the appended counts side by side; at each fold boundary
            // (position increase) the consumed election must agree.
            let mut best_old: Option<(&(ColumnPosition, Value), usize)> = None;
            let mut best_new: Option<(&(ColumnPosition, Value), usize)> = None;
            let mut prev_position: Option<ColumnPosition> = None;
            for member in &group.members {
                if prev_position.is_some_and(|p| member.0 > p) {
                    let old = best_old.map(|(m, _)| &m.1);
                    let new = best_new.map(|(m, _)| &m.1);
                    if old != new {
                        return false;
                    }
                }
                prev_position = Some(member.0);
                let count_old = state.counts.get(&member.1).copied().unwrap_or(1);
                let count_new =
                    count_old.saturating_add(delta.get(&member.1).copied().unwrap_or(0));
                let better =
                    |best: &Option<(&(ColumnPosition, Value), usize)>, count: usize| match best {
                        None => true,
                        Some((current, current_count)) => {
                            count > *current_count
                                || (count == *current_count && member.0 < current.0)
                        }
                    };
                if better(&best_old, count_old) {
                    best_old = Some((member, count_old));
                }
                if better(&best_new, count_new) {
                    best_new = Some((member, count_new));
                }
            }
            // The full-member-set election was consumed by every retained
            // fold that ran after the last member joined; only a group that
            // gained a member in the final retained fold has no such
            // consumer (its next one is the appended fold, which re-elects
            // under the new counts first).
            match group.members.last() {
                Some(last) if last.0 + 1 < state.columns_folded => {
                    best_old.map(|(m, _)| &m.1) == best_new.map(|(m, _)| &m.1)
                }
                _ => true,
            }
        })
    }
}

/// The member a group elects as representative under `counts`: most
/// frequent, ties to the earliest column (the paper's rule).
fn elect_representative<'a>(
    members: &'a [(ColumnPosition, Value)],
    counts: &HashMap<Value, usize>,
) -> Option<&'a (ColumnPosition, Value)> {
    let mut best: Option<(&(ColumnPosition, Value), usize)> = None;
    for member in members {
        let count = counts.get(&member.1).copied().unwrap_or(1);
        let better = match best {
            None => true,
            Some((current, current_count)) => {
                count > current_count || (count == current_count && member.0 < current.0)
            }
        };
        if better {
            best = Some((member, count));
        }
    }
    best.map(|(member, _)| member)
}

/// Convenience wrapper: match the values of aligned columns with a given
/// embedder and configuration.
pub fn match_column_values(
    columns: &[Vec<Value>],
    embedder: &dyn Embedder,
    config: FuzzyFdConfig,
) -> Vec<ValueGroup> {
    ValueMatcher::new(embedder, config).match_values(columns)
}

/// As [`match_column_values`], additionally returning blocking statistics.
pub fn match_column_values_with_stats(
    columns: &[Vec<Value>],
    embedder: &dyn Embedder,
    config: FuzzyFdConfig,
) -> (Vec<ValueGroup>, BlockingStats) {
    ValueMatcher::new(embedder, config).match_values_with_stats(columns)
}

fn distinct_present(column: &[Value]) -> Vec<Value> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for value in column {
        if value.is_present() && seen.insert(value.clone()) {
            out.push(value.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lake_embed::EmbeddingModel;

    fn values(strings: &[&str]) -> Vec<Value> {
        strings.iter().map(|s| Value::text(*s)).collect()
    }

    fn mistral_groups(columns: &[Vec<Value>]) -> Vec<ValueGroup> {
        let embedder = EmbeddingModel::Mistral.build();
        match_column_values(columns, embedder.as_ref(), FuzzyFdConfig::default())
    }

    #[test]
    fn example4_city_columns() {
        // Figure 2 / Example 4 of the paper: three aligned City columns.
        let columns = vec![
            values(&["Berlinn", "Toronto", "Barcelona", "New Delhi"]),
            values(&["Toronto", "Boston", "Berlin", "Barcelona"]),
            values(&["Berlin", "barcelona", "Boston"]),
        ];
        let groups = mistral_groups(&columns);

        // Expected combined column: Berlin, Toronto, Barcelona, New Delhi, Boston.
        assert_eq!(groups.len(), 5, "{groups:#?}");

        let rep_of = |needle: &str| {
            groups
                .iter()
                .find(|g| g.members.iter().any(|(_, v)| v == &Value::text(needle)))
                .map(|g| g.representative.clone())
        };
        // Berlin appears twice, Berlinn once → Berlin is the representative.
        assert_eq!(rep_of("Berlinn"), Some(Value::text("Berlin")));
        // barcelona (lower case) resolves to the majority spelling Barcelona.
        assert_eq!(rep_of("barcelona"), Some(Value::text("Barcelona")));
        // New Delhi stays a singleton.
        let delhi = groups.iter().find(|g| g.representative == Value::text("New Delhi")).unwrap();
        assert!(delhi.is_singleton());
        // Boston appears in two columns and groups together.
        let boston = groups.iter().find(|g| g.representative == Value::text("Boston")).unwrap();
        assert_eq!(boston.len(), 2);
    }

    #[test]
    fn extending_retained_state_matches_batch_matching() {
        // Folding these columns through begin + extend lands on exactly the
        // groups one batch call produces at every split point.  (Column 2
        // does flip the Berlin representative, but benignly — the earlier
        // folds' matching decisions are unaffected.  `IntegrationSession`
        // does not rely on such luck: it gates on `representatives_stable`
        // and rebuilds on any flip; the harmful-flip case is covered at
        // session level in `tests/incremental_session.rs`.)
        let columns = vec![
            values(&["Berlinn", "Toronto", "Barcelona", "New Delhi"]),
            values(&["Toronto", "Boston", "Berlin", "Barcelona"]),
            values(&["Berlin", "barcelona", "Boston"]),
        ];
        let embedder = EmbeddingModel::Mistral.build();
        let matcher = ValueMatcher::new(embedder.as_ref(), FuzzyFdConfig::default());
        let (batch, batch_stats) = matcher.match_values_with_stats(&columns);

        for split in 0..=columns.len() {
            let (mut state, mut stats) = matcher.begin(&columns[..split]);
            for column in &columns[split..] {
                stats.merge(&matcher.extend(&mut state, std::slice::from_ref(column)));
            }
            assert_eq!(state.columns_folded(), columns.len());
            assert_eq!(state.groups(), batch, "split at {split}");
            assert_eq!(state.into_groups(), batch, "split at {split}");
            // The fold count is the same work, just partitioned differently.
            assert_eq!(stats.folds, batch_stats.folds, "split at {split}");
        }
    }

    #[test]
    fn extend_refreshes_representatives_under_new_counts() {
        // After folding ["Colour"], ["Color"], the tie goes to the earlier
        // column.  A third column repeating "Color" flips the majority; the
        // extended fold must re-elect the representative exactly like a
        // batch run over all three columns would.
        let columns = vec![values(&["Colour"]), values(&["Color"]), values(&["Color"])];
        let embedder = EmbeddingModel::Mistral.build();
        let matcher = ValueMatcher::new(embedder.as_ref(), FuzzyFdConfig::default());
        let batch = matcher.match_values(&columns);

        let (mut state, _) = matcher.begin(&columns[..2]);
        matcher.extend(&mut state, &columns[2..]);
        assert_eq!(state.groups(), batch);
        if batch.len() == 1 {
            assert_eq!(batch[0].representative, Value::text("Color"));
        }
    }

    #[test]
    fn empty_matcher_state_reports_itself() {
        let state = MatcherState::default();
        assert!(state.is_empty());
        assert_eq!(state.len(), 0);
        assert_eq!(state.columns_folded(), 0);
        assert!(state.groups().is_empty());
    }

    #[test]
    fn country_codes_match_with_semantic_embedder_only() {
        let columns = vec![
            values(&["Germany", "Canada", "Spain", "India"]),
            values(&["CA", "US", "DE", "ES"]),
        ];
        let semantic = mistral_groups(&columns);
        // Germany–DE, Canada–CA, Spain–ES matched; India and US unmatched:
        // 4 + 2 - 3 = hold on: groups = 4 originals, DE/CA/ES join them, US new → 5.
        assert_eq!(semantic.len(), 5, "{semantic:#?}");
        let canada = semantic
            .iter()
            .find(|g| g.members.iter().any(|(_, v)| v == &Value::text("CA")))
            .unwrap();
        assert!(canada.members.iter().any(|(_, v)| v == &Value::text("Canada")));

        // The surface-only embedder bridges at most as many code pairs as the
        // semantic one (codes like "DE" share no surface with "Germany"), and
        // it must not correctly resolve the full Germany↔DE pair.
        let fasttext = EmbeddingModel::FastText.build();
        let surface = match_column_values(&columns, fasttext.as_ref(), FuzzyFdConfig::default());
        let matched = |groups: &[ValueGroup]| groups.iter().filter(|g| !g.is_singleton()).count();
        assert!(matched(&surface) <= matched(&semantic));
        let germany_surface = surface
            .iter()
            .find(|g| g.members.iter().any(|(_, v)| v == &Value::text("Germany")))
            .unwrap();
        assert!(
            !germany_surface.members.iter().any(|(_, v)| v == &Value::text("DE")),
            "FastText should not resolve Germany ↔ DE: {surface:#?}"
        );
    }

    #[test]
    fn exact_matches_group_without_fuzzy_work() {
        let columns = vec![values(&["alpha", "beta"]), values(&["beta", "gamma"])];
        let embedder = EmbeddingModel::FastText.build();
        let config = FuzzyFdConfig { theta: 0.0, ..FuzzyFdConfig::default() }; // fuzzy disabled
        let groups = match_column_values(&columns, embedder.as_ref(), config);
        assert_eq!(groups.len(), 3);
        let beta = groups.iter().find(|g| g.representative == Value::text("beta")).unwrap();
        assert_eq!(beta.len(), 2);
    }

    #[test]
    fn bipartite_constraint_prevents_double_matching() {
        // Two near-identical variants in the second column both want "Berlin";
        // only one of them may join the group (clean-clean: they must denote
        // different things because they are in the same column).
        let columns = vec![values(&["Berlin"]), values(&["Berlinn", "Berlln"])];
        let groups = mistral_groups(&columns);
        let berlin_groups: Vec<&ValueGroup> = groups
            .iter()
            .filter(|g| g.members.iter().any(|(_, v)| v == &Value::text("Berlin")))
            .collect();
        assert_eq!(berlin_groups.len(), 1);
        assert_eq!(berlin_groups[0].len(), 2, "exactly one variant joins: {groups:#?}");
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn representative_ties_prefer_the_earlier_column() {
        let columns = vec![values(&["Colour"]), values(&["Color"])];
        let embedder = EmbeddingModel::Mistral.build();
        let groups = match_column_values(&columns, embedder.as_ref(), FuzzyFdConfig::default());
        if groups.len() == 1 {
            // Both appear once; the tie goes to the first column's value.
            assert_eq!(groups[0].representative, Value::text("Colour"));
        }
    }

    #[test]
    fn nulls_and_duplicates_are_ignored() {
        let columns = vec![
            vec![Value::text("x"), Value::Null, Value::text("x")],
            vec![Value::Null, Value::text("x")],
        ];
        let groups = mistral_groups(&columns);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 2);
    }

    #[test]
    fn empty_input() {
        assert!(mistral_groups(&[]).is_empty());
        assert!(mistral_groups(&[vec![], vec![]]).is_empty());
        // First column empty, second column seeds the groups.
        let groups = mistral_groups(&[vec![], values(&["a", "b"])]);
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn cross_column_pairs_enumerates_matches() {
        let group = ValueGroup {
            members: vec![
                (0, Value::text("Canada")),
                (1, Value::text("CA")),
                (2, Value::text("CAN")),
            ],
            representative: Value::text("Canada"),
        };
        assert_eq!(group.cross_column_pairs().len(), 3);
        let singleton =
            ValueGroup { members: vec![(0, Value::text("x"))], representative: Value::text("x") };
        assert!(singleton.cross_column_pairs().is_empty());
    }

    #[test]
    fn cross_column_pairs_preserve_member_order_and_never_duplicate() {
        // Pairs must come out in member order ((i, j) with i < j), skipping
        // same-column combinations, with no pair enumerated twice.
        let group = ValueGroup {
            members: vec![
                (0, Value::text("a")),
                (1, Value::text("b")),
                (0, Value::text("c")), // same column as the first member
                (2, Value::text("d")),
            ],
            representative: Value::text("a"),
        };
        let pairs = group.cross_column_pairs();
        let expected = vec![
            ((0, Value::text("a")), (1, Value::text("b"))),
            ((0, Value::text("a")), (2, Value::text("d"))),
            ((1, Value::text("b")), (0, Value::text("c"))),
            ((1, Value::text("b")), (2, Value::text("d"))),
            ((0, Value::text("c")), (2, Value::text("d"))),
        ];
        assert_eq!(pairs, expected);
        let unique: std::collections::HashSet<_> = pairs.iter().cloned().collect();
        assert_eq!(unique.len(), pairs.len(), "cross-column pairs must be unique");
    }

    #[test]
    fn empty_and_singleton_are_distinct_states() {
        let empty = ValueGroup { members: vec![], representative: Value::text("x") };
        assert!(empty.is_empty());
        assert!(!empty.is_singleton(), "an empty group is not a singleton");
        assert_eq!(empty.len(), 0);

        let singleton =
            ValueGroup { members: vec![(0, Value::text("x"))], representative: Value::text("x") };
        assert!(!singleton.is_empty());
        assert!(singleton.is_singleton());

        let pair = ValueGroup {
            members: vec![(0, Value::text("x")), (1, Value::text("y"))],
            representative: Value::text("x"),
        };
        assert!(!pair.is_empty());
        assert!(!pair.is_singleton());
    }

    #[test]
    fn matcher_reports_cartesian_stats_on_small_inputs() {
        // Under the default config, a figure-1-sized input stays below the
        // blocking floor: one cartesian block per fold, nothing pruned.
        let columns = vec![values(&["Berlinn", "Toronto"]), values(&["Berlin", "Boston"])];
        let embedder = EmbeddingModel::Mistral.build();
        let matcher = ValueMatcher::new(embedder.as_ref(), FuzzyFdConfig::default());
        let (groups, stats) = matcher.match_values_with_stats(&columns);
        assert!(!groups.is_empty());
        assert_eq!(stats.folds, 1);
        assert_eq!(stats.blocks, 1);
        assert_eq!(stats.pruned_pairs, 0);
        assert!(stats.candidate_pairs > 0);
    }

    #[test]
    fn forced_blocking_prunes_disjoint_values_and_still_matches_typos() {
        let columns = vec![
            values(&["Berlin", "Toronto", "Barcelona", "Quito"]),
            values(&["Berlinn", "Torontoo", "Barcelonna", "Lagos"]),
        ];
        let embedder = EmbeddingModel::FastText.build();
        // Surface keys only: on a handful of values a semantic channel can
        // glue everything into one block by chance, which would hide the
        // pruning this test is about.
        let config = FuzzyFdConfig {
            blocking: crate::config::BlockingPolicy::Keyed(crate::config::KeyedBlockingConfig {
                semantic: SemanticBlocking::Off,
                min_blocked_pairs: 0,
                ..crate::config::KeyedBlockingConfig::default()
            }),
            ..FuzzyFdConfig::default()
        };
        let (groups, stats) = match_column_values_with_stats(&columns, embedder.as_ref(), config);
        assert!(stats.pruned_pairs > 0, "{stats:?}");
        assert!(stats.blocks >= 2, "{stats:?}");
        for (city, typo) in
            [("Berlin", "Berlinn"), ("Toronto", "Torontoo"), ("Barcelona", "Barcelonna")]
        {
            let group = groups
                .iter()
                .find(|g| g.members.iter().any(|(_, v)| v == &Value::text(city)))
                .unwrap();
            assert!(
                group.members.iter().any(|(_, v)| v == &Value::text(typo)),
                "{city} did not absorb {typo}: {groups:#?}"
            );
        }
    }

    #[test]
    fn kernel_stats_flow_through_matcher_stats() {
        // With blocking forced on, the exact tier runs the quantized scoring
        // kernel and its counters must surface through the matcher report.
        let columns = vec![
            values(&["Berlin", "Toronto", "Barcelona", "Quito"]),
            values(&["Berlinn", "Torontoo", "Barcelonna", "Lagos"]),
        ];
        let embedder = EmbeddingModel::FastText.build();
        let config = FuzzyFdConfig::default().force_blocking();
        let (_, stats) = match_column_values_with_stats(&columns, embedder.as_ref(), config);
        assert!(stats.kernel.classified() > 0, "{stats:?}");
        assert_eq!(stats.kernel.int8_scored, stats.kernel.skipped + stats.kernel.rescored);
        // Fewer exact f32 dot products than classified pairs is the whole
        // point of the int8 tier.
        assert!(stats.kernel.rescored <= stats.kernel.int8_scored, "{stats:?}");
    }

    #[test]
    fn parallel_block_solving_matches_sequential() {
        let columns = vec![
            values(&["Berlin", "Toronto", "Barcelona", "Quito", "Lima", "Dallas"]),
            values(&["Berlinn", "Torontoo", "Barcelonna", "Quitoo", "Limaa", "Dalas"]),
        ];
        let embedder = EmbeddingModel::FastText.build();
        let sequential = match_column_values(
            &columns,
            embedder.as_ref(),
            FuzzyFdConfig::default().force_blocking(),
        );
        for threads in [0, 2, 4] {
            let config = FuzzyFdConfig { matching_threads: threads, ..FuzzyFdConfig::default() }
                .force_blocking();
            let parallel = match_column_values(&columns, embedder.as_ref(), config);
            assert_eq!(parallel, sequential, "threads = {threads}");
        }
    }

    #[test]
    fn strict_threshold_disables_fuzzy_matching() {
        let columns = vec![values(&["Berlinn"]), values(&["Berlin"])];
        let embedder = EmbeddingModel::Mistral.build();
        let none = match_column_values(
            &columns,
            embedder.as_ref(),
            FuzzyFdConfig { theta: 0.0, ..FuzzyFdConfig::default() },
        );
        assert_eq!(none.len(), 2);
        let loose = match_column_values(
            &columns,
            embedder.as_ref(),
            FuzzyFdConfig { theta: 0.7, ..FuzzyFdConfig::default() },
        );
        assert_eq!(loose.len(), 1);
    }
}
