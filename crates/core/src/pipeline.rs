//! The end-to-end Fuzzy Full Disjunction pipeline.

use std::time::{Duration, Instant};

use lake_embed::EmbeddingCache;
use lake_fd::{full_disjunction, IntegratedTable, IntegrationSchema};
use lake_runtime::{ParallelPolicy, RuntimeStats};
use lake_schema_match::{align_by_headers, align_columns, Alignment, AlignmentOptions};
use lake_table::{ColumnRef, Table, TableResult, Value};

use crate::blocking::BlockingStats;
use crate::config::FuzzyFdConfig;
use crate::rewrite::{apply_substitutions, build_substitutions};
use crate::value_match::{ValueGroup, ValueMatcher};

/// Statistics of one Fuzzy FD execution, reported next to the result.
#[derive(Debug, Clone, Default)]
pub struct FuzzyFdReport {
    /// Number of aligned column sets that spanned more than one table.
    pub aligned_sets: usize,
    /// Total number of value groups produced by the Match Values component.
    pub value_groups: usize,
    /// Value groups with more than one member (an actual match happened).
    pub matched_groups: usize,
    /// Number of cells rewritten to a representative value.
    pub rewritten_cells: usize,
    /// How the value-matching candidate space was blocked and pruned,
    /// accumulated over every aligned set and fold step (its `runtime`
    /// field covers the block solves).
    pub blocking: BlockingStats,
    /// How the embedding-cache warm-up batches were scheduled (empty under
    /// `matching_threads == 1`, where no warm-up runs).
    pub embed_runtime: RuntimeStats,
    /// Wall-clock time spent matching and rewriting values.
    pub matching_time: Duration,
    /// Wall-clock time spent computing the Full Disjunction.
    pub fd_time: Duration,
    /// Statistics of the FD computation itself (its `runtime` field covers
    /// the component closures).
    pub fd_stats: lake_fd::FdStats,
}

impl FuzzyFdReport {
    /// All shared-executor activity of the run — embedding warm-up, block
    /// solving and FD component closures — merged into one set of counters
    /// (tasks, steals, injected, busy time).  The per-worker busy vector
    /// adds positionally across the three independent stage pools, so the
    /// merged [`RuntimeStats::imbalance`] is indicative only (and reports
    /// `1.0` outright once any merged stage ran sequentially — see
    /// [`RuntimeStats::sequential_batches`]); inspect `embed_runtime`,
    /// `blocking.runtime` and `fd_stats.runtime` for a per-stage imbalance
    /// that reflects one actual schedule.
    pub fn runtime(&self) -> RuntimeStats {
        let mut total = self.embed_runtime.clone();
        total.merge(&self.blocking.runtime);
        total.merge(&self.fd_stats.runtime);
        total
    }
}

/// The result of an integration: the integrated table, the per-aligned-set
/// value groups (for evaluation against gold matches), and the report.
#[derive(Debug, Clone)]
pub struct IntegrationOutcome {
    /// The integrated (Full Disjunction) table.
    pub table: IntegratedTable,
    /// For every multi-table aligned set: the source columns (in matching
    /// order) and the value groups found for them.
    pub value_groups: Vec<(Vec<ColumnRef>, Vec<ValueGroup>)>,
    /// Execution statistics.
    pub report: FuzzyFdReport,
}

/// The Fuzzy Full Disjunction operator.
#[derive(Debug, Clone)]
pub struct FuzzyFullDisjunction {
    config: FuzzyFdConfig,
}

impl Default for FuzzyFullDisjunction {
    fn default() -> Self {
        FuzzyFullDisjunction::new(FuzzyFdConfig::default())
    }
}

impl FuzzyFullDisjunction {
    /// Creates the operator with the given configuration.
    ///
    /// # Panics
    /// Panics when the configuration's floating-point parameters are invalid
    /// (see [`FuzzyFdConfig::validate`]) — a `NaN` threshold or slack would
    /// otherwise poison distance ordering silently.  Use
    /// [`try_new`](Self::try_new) to handle the error instead.
    pub fn new(config: FuzzyFdConfig) -> Self {
        match FuzzyFullDisjunction::try_new(config) {
            Ok(operator) => operator,
            Err(error) => panic!("invalid FuzzyFdConfig: {error}"),
        }
    }

    /// As [`new`](Self::new), returning the validation error instead of
    /// panicking.
    pub fn try_new(config: FuzzyFdConfig) -> Result<Self, String> {
        config.validate()?;
        Ok(FuzzyFullDisjunction { config })
    }

    /// The operator's configuration.
    pub fn config(&self) -> &FuzzyFdConfig {
        &self.config
    }

    /// Integrates tables whose columns are aligned by matching headers
    /// (suitable for benchmark data and the Figure 1 example, where headers
    /// are consistent by construction).
    pub fn integrate_by_headers(&self, tables: &[Table]) -> TableResult<IntegrationOutcome> {
        let alignment = align_by_headers(tables);
        self.integrate(tables, &alignment)
    }

    /// Integrates tables, discovering the column alignment automatically with
    /// holistic schema matching over the configured embedding model (the
    /// fully automatic ALITE-style pipeline).
    pub fn integrate_auto(&self, tables: &[Table]) -> TableResult<IntegrationOutcome> {
        let embedder = self.config.model.build();
        let alignment = align_columns(tables, embedder.as_ref(), AlignmentOptions::default());
        self.integrate(tables, &alignment)
    }

    /// Integrates tables under an explicit column alignment.
    pub fn integrate(
        &self,
        tables: &[Table],
        alignment: &Alignment,
    ) -> TableResult<IntegrationOutcome> {
        let embedder = EmbeddingCache::new(self.config.model.build());
        let matcher = ValueMatcher::new(&embedder, self.config);

        let matching_start = Instant::now();
        let mut all_groups: Vec<(Vec<ColumnRef>, Vec<ValueGroup>)> = Vec::new();
        let mut substitutions = std::collections::HashMap::new();
        let mut aligned_sets = 0usize;
        let mut blocking = BlockingStats::default();
        let mut embed_runtime = RuntimeStats::default();

        for group in alignment.multi_table_groups() {
            aligned_sets += 1;
            let mut columns: Vec<ColumnRef> = group.clone();
            columns.sort();
            let column_values: Vec<Vec<Value>> = columns
                .iter()
                .map(|cref| {
                    tables[cref.table]
                        .column_values(cref.column)
                        .map(|vs| vs.into_iter().cloned().collect())
                })
                .collect::<TableResult<_>>()?;
            embed_runtime.merge(&warm_embedding_cache(&self.config, &embedder, &column_values));
            let (groups, set_stats) = matcher.match_values_with_stats(&column_values);
            blocking.merge(&set_stats);
            for (column, mapping) in build_substitutions(&columns, &groups) {
                let entry: &mut std::collections::HashMap<Value, Value> =
                    substitutions.entry(column).or_default();
                entry.extend(mapping);
            }
            all_groups.push((columns, groups));
        }

        let (rewritten_tables, rewritten_cells) = apply_substitutions(tables, &substitutions)?;
        let matching_time = matching_start.elapsed();

        let fd_start = Instant::now();
        let schema = IntegrationSchema::from_aligned_sets(&rewritten_tables, alignment.groups());
        // The FD stage shares the operator's thread semantics: component
        // closures run on the same work-stealing executor as the block
        // solves, and the result is identical across worker counts.
        let (table, fd_stats) = lake_fd::parallel_full_disjunction_with(
            &schema,
            &rewritten_tables,
            self.config.matching_threads,
        );
        let fd_time = fd_start.elapsed();

        let report = FuzzyFdReport {
            aligned_sets,
            value_groups: all_groups.iter().map(|(_, g)| g.len()).sum(),
            matched_groups: all_groups
                .iter()
                .flat_map(|(_, g)| g.iter())
                .filter(|g| !g.is_singleton())
                .count(),
            rewritten_cells,
            blocking,
            embed_runtime,
            matching_time,
            fd_time,
            fd_stats,
        };

        Ok(IntegrationOutcome { table, value_groups: all_groups, report })
    }
}

/// Warms the embedding cache for one aligned set's columns on the shared
/// executor, so the fold loop's embed calls all hit.
///
/// Every distinct present value string is eventually embedded by the
/// matcher (as a singleton, fuzzy candidate or representative), so
/// warming embeds nothing extra — it only moves the work ahead of the
/// sequential fold loop, where it can spread across workers.  Under
/// `matching_threads == 1` there is nothing to spread and the warm-up is
/// skipped entirely; in auto mode it gates on the total rendered length.
/// Shared by the batch operator and [`crate::IntegrationSession`] (where
/// already-cached values make the warm-up a cheap no-op).
pub(crate) fn warm_embedding_cache(
    config: &FuzzyFdConfig,
    embedder: &EmbeddingCache<Box<dyn lake_embed::Embedder>>,
    column_values: &[Vec<Value>],
) -> RuntimeStats {
    /// Auto-gate floor for the warm-up batch, in rendered characters
    /// (the cost hint of one embedding task).
    const MIN_AUTO_EMBED_CHARS: u64 = 16_384;
    if config.matching_threads == 1 {
        return RuntimeStats::default();
    }
    let policy =
        ParallelPolicy { threads: config.matching_threads, min_auto_cost: MIN_AUTO_EMBED_CHARS };
    let mut seen = std::collections::HashSet::new();
    let mut rendered: Vec<String> = Vec::new();
    for column in column_values {
        for value in column {
            if value.is_present() {
                let text = value.render().into_owned();
                if seen.insert(text.clone()) {
                    rendered.push(text);
                }
            }
        }
    }
    let values: Vec<&str> = rendered.iter().map(String::as_str).collect();
    embedder.embed_batch_with_stats(&values, &policy).1
}

/// The equi-join baseline: ALITE-style Full Disjunction without any value
/// matching, under the same alignment.  This is the "regular FD" every
/// experiment compares against.
pub fn regular_full_disjunction(tables: &[Table], alignment: &Alignment) -> IntegratedTable {
    let schema = IntegrationSchema::from_aligned_sets(tables, alignment.groups());
    full_disjunction(&schema, tables)
}

/// Regular FD with header-based alignment (convenience for benchmarks).
pub fn regular_full_disjunction_by_headers(tables: &[Table]) -> IntegratedTable {
    let alignment = align_by_headers(tables);
    regular_full_disjunction(tables, &alignment)
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use lake_table::TableBuilder;

    /// The three COVID tables of the paper's Figure 1.
    pub(crate) fn figure1_tables() -> Vec<Table> {
        vec![
            TableBuilder::new("T1", ["City", "Country"])
                .row(["Berlinn", "Germany"])
                .row(["Toronto", "Canada"])
                .row(["Barcelona", "Spain"])
                .row(["New Delhi", "India"])
                .build()
                .unwrap(),
            TableBuilder::new("T2", ["Country", "City", "Vac. Rate (1+ dose)"])
                .row(["CA", "Toronto", "83%"])
                .row(["US", "Boston", "62%"])
                .row(["DE", "Berlin", "63%"])
                .row(["ES", "Barcelona", "82%"])
                .build()
                .unwrap(),
            TableBuilder::new("T3", ["City", "Total Cases", "Death Rate (per 100k)"])
                .row(["Berlin", "1.4M", "147"])
                .row(["barcelona", "2.68M", "275"])
                .row(["Boston", "263K", "335"])
                .build()
                .unwrap(),
        ]
    }

    #[test]
    fn figure1_fuzzy_fd_produces_five_tuples() {
        let tables = figure1_tables();
        let fuzzy = FuzzyFullDisjunction::default();
        let outcome = fuzzy.integrate_by_headers(&tables).unwrap();
        // Fuzzy FD(T1, T2, T3) of Figure 1: f10..f14 — exactly 5 tuples.
        assert_eq!(outcome.table.len(), 5, "{:#?}", outcome.table.tuples());

        // The Berlin tuple merges t1, t7 and t9.
        let berlin = outcome
            .table
            .tuples()
            .iter()
            .find(|t| t.values().contains(&Value::text("Berlin")))
            .expect("berlin tuple");
        assert_eq!(berlin.provenance().len(), 3);

        // The report reflects actual fuzzy work.
        assert_eq!(outcome.report.aligned_sets, 2);
        assert!(outcome.report.matched_groups >= 5);
        assert!(outcome.report.rewritten_cells >= 4);
        // City folds twice, Country folds once; at this size every fold is a
        // single cartesian block below the blocking floor.
        assert_eq!(outcome.report.blocking.folds, 3);
        assert!(outcome.report.blocking.blocks >= 3);
        assert!(outcome.report.blocking.candidate_pairs > 0);
        assert_eq!(outcome.report.blocking.pruned_pairs, 0);
    }

    #[test]
    fn figure1_regular_fd_produces_nine_tuples() {
        let tables = figure1_tables();
        let alignment = align_by_headers(&tables);
        let regular = regular_full_disjunction(&tables, &alignment);
        assert_eq!(regular.len(), 9);
        // Fuzzy integrates strictly more: fewer, more complete tuples.
        let fuzzy = FuzzyFullDisjunction::default().integrate(&tables, &alignment).unwrap();
        assert!(fuzzy.table.len() < regular.len());
        let max_nonnull_fuzzy =
            fuzzy.table.tuples().iter().map(|t| t.non_null_count()).max().unwrap();
        let max_nonnull_regular =
            regular.tuples().iter().map(|t| t.non_null_count()).max().unwrap();
        assert!(max_nonnull_fuzzy >= max_nonnull_regular);
    }

    #[test]
    fn equi_join_inputs_are_unaffected_by_fuzzy_matching() {
        // When values are already consistent, Fuzzy FD and regular FD agree.
        let tables = vec![
            TableBuilder::new("A", ["id", "x"])
                .row(["k1", "x1"])
                .row(["k2", "x2"])
                .build()
                .unwrap(),
            TableBuilder::new("B", ["id", "y"])
                .row(["k1", "y1"])
                .row(["k3", "y3"])
                .build()
                .unwrap(),
        ];
        let alignment = align_by_headers(&tables);
        let fuzzy = FuzzyFullDisjunction::default().integrate(&tables, &alignment).unwrap();
        let regular = regular_full_disjunction(&tables, &alignment);
        let fuzzy_values: Vec<_> =
            fuzzy.table.tuples().iter().map(|t| t.values().to_vec()).collect();
        let regular_values: Vec<_> = regular.tuples().iter().map(|t| t.values().to_vec()).collect();
        assert_eq!(fuzzy_values, regular_values);
        assert_eq!(fuzzy.report.rewritten_cells, 0);
    }

    #[test]
    fn empty_alignment_degenerates_to_outer_union() {
        let tables = vec![
            TableBuilder::new("A", ["a"]).row(["1"]).build().unwrap(),
            TableBuilder::new("B", ["b"]).row(["2"]).build().unwrap(),
        ];
        let outcome = FuzzyFullDisjunction::default().integrate_by_headers(&tables).unwrap();
        assert_eq!(outcome.table.len(), 2);
        assert_eq!(outcome.report.aligned_sets, 0);
        assert_eq!(outcome.report.value_groups, 0);
    }

    #[test]
    fn automatic_alignment_pipeline_runs_end_to_end() {
        // Same data, but headers give no hint — alignment must come from the
        // value embeddings.
        let tables = vec![
            TableBuilder::new("T1", ["col_a", "col_b"])
                .row(["Berlin", "Germany"])
                .row(["Toronto", "Canada"])
                .row(["Boston", "United States"])
                .row(["Barcelona", "Spain"])
                .build()
                .unwrap(),
            TableBuilder::new("T2", ["f1", "f2"])
                .row(["Germany", "Berlin"])
                .row(["Canada", "Toronto"])
                .row(["Spain", "Barcelona"])
                .row(["United States", "Boston"])
                .build()
                .unwrap(),
        ];
        let outcome = FuzzyFullDisjunction::default().integrate_auto(&tables).unwrap();
        // The two tables describe the same four entities: a good automatic
        // alignment integrates them into four complete tuples.
        assert_eq!(outcome.table.len(), 4, "{:#?}", outcome.table.tuples());
        for t in outcome.table.tuples() {
            assert_eq!(t.provenance().len(), 2);
        }
    }

    #[test]
    fn threshold_zero_reduces_to_regular_fd() {
        let tables = figure1_tables();
        let alignment = align_by_headers(&tables);
        let strict = FuzzyFullDisjunction::new(FuzzyFdConfig { theta: 0.0, ..Default::default() })
            .integrate(&tables, &alignment)
            .unwrap();
        let regular = regular_full_disjunction(&tables, &alignment);
        assert_eq!(strict.table.len(), regular.len());
    }
}
