//! Incremental integration sessions for lake-append workloads.
//!
//! [`FuzzyFullDisjunction::integrate`] is a batch operator: every call
//! re-embeds every value, re-plans every fold and re-closes every FD
//! component from scratch.  Data lakes do not arrive like that — new tables
//! land against an already-integrated lake.  An [`IntegrationSession`] is
//! the stateful counterpart: created from an initial integration, it keeps
//!
//! * the **warmed embedding cache** — values seen in any earlier call are
//!   never re-embedded (embedding is the simulated-LLM cost the paper
//!   amortises, so this is the dominant saving);
//! * the **column alignment** — header-keyed, so appended columns join
//!   their aligned sets without re-clustering anything;
//! * the **matcher state of every aligned set** — groups, representatives
//!   and occurrence counts survive, and an appended column folds *into*
//!   them ([`ValueMatcher::extend`]) instead of re-running the whole fold
//!   chain: only folds touching the appended tables' columns are
//!   re-planned and re-solved on the shared `lake-runtime` executor;
//! * the **FD component cache** ([`lake_fd::ComponentCache`]) — join
//!   components whose member tuples are unchanged reuse their closure
//!   verbatim.
//!
//! The reuse guarantees are layered: cache reuse and FD-component reuse are
//! *exact by construction* (pure functions of their inputs, verified before
//! a hit is served), and matcher-state reuse is *guarded*: occurrence
//! counts influence matching only through representative elections, so
//! before extending a set the session re-verifies every election the
//! retained folds consumed under the appended counts
//! ([`ValueMatcher::representatives_stable`]) and re-matches the whole set
//! from scratch on any difference — extension happens only when the
//! retained folds would have made identical decisions under the final
//! counts.  The equivalence harness (`tests/incremental_session.rs`)
//! additionally asserts byte-identical output against
//! [`FuzzyFullDisjunction::integrate`] on the Auto-Join benchmark sets and
//! on representative-flip counterexamples, for every [`IncrementalPolicy`]
//! switch and across worker-thread counts.
//!
//! ```
//! use fuzzy_fd_core::{FuzzyFdConfig, IntegrationSession};
//! use lake_table::TableBuilder;
//!
//! let cases = TableBuilder::new("cases", ["City", "Total Cases"])
//!     .row(["Berlin", "1.4M"])
//!     .row(["Boston", "263K"])
//!     .build()
//!     .unwrap();
//! let rates = TableBuilder::new("rates", ["City", "Vaccination Rate"])
//!     .row(["Berlinn", "63%"])
//!     .row(["Boston", "62%"])
//!     .build()
//!     .unwrap();
//! let mut session = IntegrationSession::begin(FuzzyFdConfig::default(), &[cases, rates]).unwrap();
//! assert_eq!(session.current().table.len(), 2);
//!
//! // A new portal arrives later: only its folds are planned, everything
//! // already embedded stays cached.
//! let deaths = TableBuilder::new("deaths", ["City", "Death Rate"])
//!     .row(["berlin", "147"])
//!     .build()
//!     .unwrap();
//! let outcome = session.add_table(&deaths).unwrap();
//! assert_eq!(outcome.table.len(), 2); // berlin merges into the Berlin tuple
//! assert_eq!(outcome.incremental.appended_tables, 1);
//! ```

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use lake_embed::EmbeddingCache;
use lake_fd::{ComponentCache, IntegrationSchema};
use lake_runtime::RuntimeStats;
use lake_schema_match::align_by_headers;
use lake_table::{ColumnRef, Table, TableResult, Value};

use crate::blocking::BlockingStats;
use crate::config::{FuzzyFdConfig, IncrementalPolicy};
use crate::pipeline::{warm_embedding_cache, FuzzyFdReport, FuzzyFullDisjunction};
use crate::rewrite::{apply_substitutions, build_substitutions};
use crate::value_match::{MatcherState, ValueGroup, ValueMatcher};

/// What one [`IntegrationSession::add_tables`] call reused and what it had
/// to recompute.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Tables appended by this call.
    pub appended_tables: usize,
    /// Aligned sets whose retained matcher state absorbed at least one
    /// appended column (only the appended folds were planned).
    pub refolded_sets: usize,
    /// Aligned sets matched from scratch — newly multi-table sets, and every
    /// set when [`IncrementalPolicy::reuse_untouched_sets`] is off.
    pub rebuilt_sets: usize,
    /// Aligned sets untouched by the appended tables, reused without
    /// planning a single fold.
    pub reused_sets: usize,
    /// Embedding-cache hits during this call (appended values already seen
    /// in an earlier call, plus representative re-checks).
    pub embed_hits: u64,
    /// Embedding-cache misses during this call (genuinely new values).
    pub embed_misses: u64,
}

/// The result of one incremental step: the full current integration plus
/// what this step actually cost.
///
/// `table` and `value_groups` describe the whole session lake — kept equal
/// to what batch re-integration of all session tables would return, via the
/// session's drift guard (see the [module docs](self) for the exact
/// guarantee layering); `report` and `incremental` describe only this
/// call's work — in particular `report.blocking.folds` counts the folds
/// this call re-planned, which for an append is strictly fewer than a batch
/// run would plan.
#[derive(Debug, Clone)]
pub struct IncrementalOutcome {
    /// The integrated (Full Disjunction) table over every session table.
    pub table: lake_fd::IntegratedTable,
    /// For every multi-table aligned set: the source columns (in matching
    /// order) and the current value groups.
    pub value_groups: Vec<(Vec<ColumnRef>, Vec<ValueGroup>)>,
    /// Execution statistics of this call (blocking/fold counters cover only
    /// the folds this call planned).
    pub report: FuzzyFdReport,
    /// Reuse accounting of this call.
    pub incremental: IncrementalStats,
}

/// Retained per-aligned-set state: the columns folded so far (sorted, the
/// fold order) and the live matcher state (group snapshots are derived from
/// it on demand — see [`MatcherState::groups`]).
#[derive(Debug, Clone)]
struct SetState {
    columns: Vec<ColumnRef>,
    state: MatcherState,
}

/// A stateful integration handle over a growing set of tables.
///
/// Columns are aligned by matching headers (the alignment that is
/// incremental by construction: an appended column joins the set its header
/// names, or starts a new one).  See the [module docs](self) for the reuse
/// architecture and the equivalence guarantees, and
/// [`IncrementalPolicy`] for the A/B switches.
pub struct IntegrationSession {
    config: FuzzyFdConfig,
    policy: IncrementalPolicy,
    tables: Vec<Table>,
    embedder: EmbeddingCache<Box<dyn lake_embed::Embedder>>,
    /// Live matcher state keyed by `(header key, ordinal)` — the ordinal
    /// disambiguates the rare case of several aligned sets sharing one
    /// header (duplicate headers within a table).
    sets: HashMap<(String, usize), SetState>,
    fd_cache: ComponentCache,
    /// The integration schema of the previous call, kept so the FD cache can
    /// be remapped when an append widens the schema.
    last_schema: Option<IntegrationSchema>,
    latest: Arc<IncrementalOutcome>,
    /// Number of tables appended by each `add_tables` call, in call order
    /// (the first entry is the `begin` batch).  The session is a pure,
    /// deterministic function of these batch boundaries, which is what lets
    /// `lake-store` restore a session — warmed caches included — by
    /// replaying the same calls.
    batch_sizes: Vec<usize>,
}

impl std::fmt::Debug for IntegrationSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IntegrationSession")
            .field("tables", &self.tables.len())
            .field("sets", &self.sets.len())
            .field("cached_embeddings", &self.embedder.len())
            .field("cached_components", &self.fd_cache.len())
            .finish()
    }
}

impl IntegrationSession {
    /// Opens a session by integrating `tables` (the initial lake; may be
    /// empty), under the default [`IncrementalPolicy`].
    ///
    /// # Errors
    /// Returns an error when the configuration is invalid
    /// ([`FuzzyFdConfig::validate`]) or a table lookup fails.
    pub fn begin(config: FuzzyFdConfig, tables: &[Table]) -> TableResult<Self> {
        IntegrationSession::begin_with_policy(config, IncrementalPolicy::default(), tables)
    }

    /// As [`begin`](Self::begin) with an explicit reuse policy.
    pub fn begin_with_policy(
        config: FuzzyFdConfig,
        policy: IncrementalPolicy,
        tables: &[Table],
    ) -> TableResult<Self> {
        if let Err(error) = config.validate() {
            return Err(lake_table::TableError::InvalidConfig(error));
        }
        let mut session = IntegrationSession {
            config,
            policy,
            tables: Vec::new(),
            embedder: EmbeddingCache::new(config.model.build()),
            sets: HashMap::new(),
            fd_cache: ComponentCache::with_capacity(policy.max_cached_components),
            last_schema: None,
            batch_sizes: Vec::new(),
            latest: Arc::new(IncrementalOutcome {
                table: lake_fd::IntegratedTable::new(Vec::new(), Vec::new()),
                value_groups: Vec::new(),
                report: FuzzyFdReport::default(),
                incremental: IncrementalStats::default(),
            }),
        };
        session.add_tables(tables)?;
        Ok(session)
    }

    /// The session's configuration.
    pub fn config(&self) -> &FuzzyFdConfig {
        &self.config
    }

    /// The session's reuse policy.
    pub fn policy(&self) -> &IncrementalPolicy {
        &self.policy
    }

    /// Every table integrated so far, in arrival order.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// The most recent integration outcome (initially the outcome of the
    /// tables the session was opened with).
    ///
    /// Serving this accessor costs one retained copy of each outcome at
    /// `add_tables` time — linear in the output table, the same order as
    /// the append's own FD assembly work.
    pub fn current(&self) -> &IncrementalOutcome {
        &self.latest
    }

    /// A shared handle to the most recent outcome.
    ///
    /// The retained outcome lives behind an `Arc`, so taking a snapshot is
    /// a reference-count bump — no copy of the integrated table.  This is
    /// the accessor the serving layer publishes to concurrent readers:
    /// they hold the `Arc` while the session mutates on, and the snapshot
    /// they observed stays immutable and valid.
    pub fn snapshot(&self) -> Arc<IncrementalOutcome> {
        Arc::clone(&self.latest)
    }

    /// The integration schema of the most recent call: which base-table
    /// columns landed in which integrated column.  `None` only before the
    /// first (possibly empty) integration finishes — i.e. never on a
    /// constructed session, since `begin` integrates its initial tables.
    pub fn schema(&self) -> Option<&IntegrationSchema> {
        self.last_schema.as_ref()
    }

    /// `(hits, misses)` of the session's embedding cache, accumulated over
    /// every call.
    pub fn embedding_stats(&self) -> (u64, u64) {
        self.embedder.stats()
    }

    /// `(hits, misses)` of the session's FD component cache, accumulated
    /// over every call.
    pub fn fd_cache_stats(&self) -> (u64, u64) {
        self.fd_cache.stats()
    }

    /// Number of tables appended by each `add_tables` call so far, in call
    /// order; the first entry is the batch `begin` integrated (possibly 0).
    ///
    /// Together with [`tables`](Self::tables) this fully determines the
    /// session: replaying the same tables with the same call boundaries
    /// reproduces every outcome, cache counter and retained state exactly —
    /// the contract `lake-store` snapshot/restore is built on.
    pub fn batch_sizes(&self) -> &[usize] {
        &self.batch_sizes
    }

    /// Appends one table and re-integrates incrementally.
    pub fn add_table(&mut self, table: &Table) -> TableResult<IncrementalOutcome> {
        self.add_tables(std::slice::from_ref(table))
    }

    /// Appends a batch of tables and re-integrates incrementally: every
    /// aligned set touched by the appended columns folds them in (one
    /// planned fold per appended column), untouched sets are reused
    /// outright, and the Full Disjunction recomputes only the join
    /// components the rewrites actually changed.
    pub fn add_tables(&mut self, new_tables: &[Table]) -> TableResult<IncrementalOutcome> {
        let first_new = self.tables.len();
        self.tables.extend(new_tables.iter().cloned());
        self.batch_sizes.push(new_tables.len());
        let (embed_hits_before, embed_misses_before) = self.embedder.stats();

        let alignment = align_by_headers(&self.tables);
        let matcher = ValueMatcher::new(&self.embedder, self.config);

        // lint:allow(wallclock-in-replay): observability only — the elapsed time feeds IncrementalStats phase attribution and never flows into integrated state, so replay stays deterministic
        let matching_start = Instant::now();
        let mut incremental =
            IncrementalStats { appended_tables: new_tables.len(), ..IncrementalStats::default() };
        let mut blocking = BlockingStats::default();
        let mut embed_runtime = RuntimeStats::default();
        let mut next_sets: HashMap<(String, usize), SetState> = HashMap::new();
        let mut all_groups: Vec<(Vec<ColumnRef>, Vec<ValueGroup>)> = Vec::new();
        let mut substitutions: HashMap<ColumnRef, HashMap<Value, Value>> = HashMap::new();
        let mut ordinals: HashMap<String, usize> = HashMap::new();
        let mut aligned_sets = 0usize;

        for group in alignment.multi_table_groups() {
            aligned_sets += 1;
            let mut columns: Vec<ColumnRef> = group.clone();
            columns.sort();
            let key = {
                let first = columns[0];
                let name = &self.tables[first.table].schema().columns()[first.column].name;
                let ordinal = ordinals.entry(name.trim().to_lowercase()).or_insert(0);
                let key = (name.trim().to_lowercase(), *ordinal);
                *ordinal += 1;
                key
            };
            let split = columns.partition_point(|cref| cref.table < first_new);
            let (old_columns, new_columns) = columns.split_at(split);

            let prior = self
                .policy
                .reuse_untouched_sets
                .then(|| self.sets.remove(&key))
                .flatten()
                // The retained state is only valid if it was folded over
                // exactly the columns that precede the appended ones.
                .filter(|entry| entry.columns == old_columns);

            // Drift guard: retained folds ran under the occurrence counts of
            // their time.  If the appended columns' counts would change any
            // representative election a retained fold consumed, that fold
            // would have matched differently under the final counts — so
            // the set re-matches from scratch instead of extending (the
            // equivalence the session promises beats the saved folds).
            let (prior, new_values) = match prior {
                Some(entry) if !new_columns.is_empty() => {
                    let new_values = column_values(&self.tables, new_columns)?;
                    if matcher.representatives_stable(&entry.state, &new_values) {
                        (Some(entry), Some(new_values))
                    } else {
                        (None, None)
                    }
                }
                prior => (prior, None),
            };

            let entry = match prior {
                Some(mut entry) => {
                    if new_columns.is_empty() {
                        incremental.reused_sets += 1;
                        entry
                    } else {
                        let new_values = new_values.expect("extend path extracted the columns");
                        embed_runtime.merge(&warm_embedding_cache(
                            &self.config,
                            &self.embedder,
                            &new_values,
                        ));
                        blocking.merge(&matcher.extend(&mut entry.state, &new_values));
                        incremental.refolded_sets += 1;
                        entry.columns = columns.clone();
                        entry
                    }
                }
                None => {
                    let values = column_values(&self.tables, &columns)?;
                    embed_runtime.merge(&warm_embedding_cache(
                        &self.config,
                        &self.embedder,
                        &values,
                    ));
                    let (state, stats) = matcher.begin(&values);
                    blocking.merge(&stats);
                    incremental.rebuilt_sets += 1;
                    SetState { columns: columns.clone(), state }
                }
            };

            let groups = entry.state.groups();
            for (column, mapping) in build_substitutions(&columns, &groups) {
                substitutions.entry(column).or_default().extend(mapping);
            }
            all_groups.push((columns, groups));
            next_sets.insert(key, entry);
        }
        self.sets = next_sets;

        let (rewritten_tables, rewritten_cells) =
            apply_substitutions(&self.tables, &substitutions)?;
        let matching_time = matching_start.elapsed();

        // lint:allow(wallclock-in-replay): observability only — phase timing for stats, not replayed state
        let fd_start = Instant::now();
        let schema = IntegrationSchema::from_aligned_sets(&rewritten_tables, alignment.groups());
        let (table, fd_stats) = if self.policy.reuse_fd_components {
            // An append usually widens the integration schema (new attribute
            // columns, newly aligned sets), which re-pads every outer-union
            // tuple.  Re-padding moves columns without changing cells, so
            // the memoised closures migrate instead of going stale: old
            // integrated column `i` lands wherever any of its source columns
            // maps in the new schema (header alignment never merges or drops
            // existing integrated columns on append, so the mapping is total
            // and injective — and the cache double-checks).
            if let Some(old_schema) = self.last_schema.take() {
                if old_schema != schema {
                    let mapping: Vec<usize> = old_schema
                        .aligned_sets()
                        .iter()
                        .map(|sources| {
                            schema.integrated_column(sources[0].table, sources[0].column)
                        })
                        .collect();
                    self.fd_cache.remap_columns(&mapping, schema.num_columns());
                }
            }
            lake_fd::incremental_full_disjunction_with(
                &schema,
                &rewritten_tables,
                self.config.matching_threads,
                &mut self.fd_cache,
            )
        } else {
            lake_fd::parallel_full_disjunction_with(
                &schema,
                &rewritten_tables,
                self.config.matching_threads,
            )
        };
        self.last_schema = Some(schema);
        let fd_time = fd_start.elapsed();

        let (embed_hits, embed_misses) = self.embedder.stats();
        incremental.embed_hits = embed_hits - embed_hits_before;
        incremental.embed_misses = embed_misses - embed_misses_before;

        let report = FuzzyFdReport {
            aligned_sets,
            value_groups: all_groups.iter().map(|(_, g)| g.len()).sum(),
            matched_groups: all_groups
                .iter()
                .flat_map(|(_, g)| g.iter())
                .filter(|g| !g.is_singleton())
                .count(),
            rewritten_cells,
            blocking,
            embed_runtime,
            matching_time,
            fd_time,
            fd_stats,
        };
        let outcome = IncrementalOutcome { table, value_groups: all_groups, report, incremental };
        self.latest = Arc::new(outcome.clone());
        Ok(outcome)
    }
}

impl FuzzyFullDisjunction {
    /// Opens an [`IntegrationSession`] from this operator's configuration,
    /// integrating `tables` as the initial lake.
    pub fn begin_session(&self, tables: &[Table]) -> TableResult<IntegrationSession> {
        IntegrationSession::begin(*self.config(), tables)
    }
}

/// Extracts the (cloned) value columns of an aligned set, in fold order.
fn column_values(tables: &[Table], columns: &[ColumnRef]) -> TableResult<Vec<Vec<Value>>> {
    columns
        .iter()
        .map(|cref| {
            tables[cref.table]
                .column_values(cref.column)
                .map(|vs| vs.into_iter().cloned().collect())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::tests::figure1_tables;
    use lake_table::TableBuilder;

    #[test]
    fn session_over_figure1_matches_batch() {
        let tables = figure1_tables();
        let batch = FuzzyFullDisjunction::default().integrate_by_headers(&tables).unwrap();

        // All three tables at once.
        let session = IntegrationSession::begin(FuzzyFdConfig::default(), &tables).unwrap();
        assert_eq!(session.current().table, batch.table);
        assert_eq!(session.current().value_groups, batch.value_groups);
        assert_eq!(session.current().incremental.rebuilt_sets, 2);

        // Two tables, then the third appended.
        let mut session =
            IntegrationSession::begin(FuzzyFdConfig::default(), &tables[..2]).unwrap();
        let outcome = session.add_table(&tables[2]).unwrap();
        assert_eq!(outcome.table, batch.table);
        assert_eq!(outcome.value_groups, batch.value_groups);
        // T3 only brings a City column: the City set refolds (one fold —
        // the retained folds consumed only single-member elections, which
        // no count change can flip), the Country set is reused untouched.
        assert_eq!(outcome.incremental.refolded_sets, 1);
        assert_eq!(outcome.incremental.rebuilt_sets, 0);
        assert_eq!(outcome.incremental.reused_sets, 1);
        assert_eq!(outcome.report.blocking.folds, 1);
        assert!(outcome.report.blocking.folds < batch.report.blocking.folds);
    }

    #[test]
    fn representative_flips_trigger_a_rebuild_and_stay_batch_identical() {
        // Adversarial count flip: "colou" appears once when "colouur" is
        // matched, then a second "colou" arrives and re-elects the group
        // representative.  Extending blindly would keep the group built
        // around the stale representative; the drift guard must rebuild and
        // land exactly on the batch result at every prefix.
        let column_table =
            |name: &str, value: &str| TableBuilder::new(name, ["c"]).row([value]).build().unwrap();
        let tables = [
            column_table("S0", "colour"),
            column_table("S1", "colou"),
            column_table("S2", "colouur"),
            column_table("S3", "colou"),
        ];

        let mut session =
            IntegrationSession::begin(FuzzyFdConfig::default(), &tables[..2]).unwrap();
        for (idx, table) in tables.iter().enumerate().skip(2) {
            let outcome = session.add_table(table).unwrap();
            let reference =
                FuzzyFullDisjunction::default().integrate_by_headers(&tables[..=idx]).unwrap();
            assert_eq!(outcome.table, reference.table, "diverged at prefix {}", idx + 1);
            assert_eq!(outcome.value_groups, reference.value_groups);
        }
        // The flip itself must have been detected at least once.
        let final_outcome = session.current();
        assert!(
            final_outcome.incremental.rebuilt_sets > 0,
            "the duplicate 'colou' must re-elect a representative and force a rebuild: {:?}",
            final_outcome.incremental
        );
    }

    #[test]
    fn appended_values_hit_the_warm_embedding_cache() {
        let tables = figure1_tables();
        let mut session =
            IntegrationSession::begin(FuzzyFdConfig::default(), &tables[..2]).unwrap();
        let outcome = session.add_table(&tables[2]).unwrap();
        // "Berlin", "Boston" and "barcelona"'s representative were all seen
        // before; only genuinely new strings may miss.
        assert!(outcome.incremental.embed_hits > 0, "{:?}", outcome.incremental);
        let (hits, _) = session.embedding_stats();
        assert!(hits >= outcome.incremental.embed_hits);
    }

    #[test]
    fn fd_components_reuse_across_appends() {
        // Disjoint keys: appending a table touching one key leaves the other
        // components' closures reusable.
        let mut a = TableBuilder::new("A", ["id", "x"]);
        for i in 0..12 {
            a = a.row([format!("key-entity-{i}"), format!("x{i}")]);
        }
        let b = TableBuilder::new("B", ["id", "y"])
            .row(["key-entity-0", "y0"])
            .row(["key-entity-1", "y1"])
            .build()
            .unwrap();
        let mut session =
            IntegrationSession::begin(FuzzyFdConfig::default(), &[a.build().unwrap(), b]).unwrap();
        let c = TableBuilder::new("C", ["id", "z"]).row(["key-entity-2", "z2"]).build().unwrap();
        let outcome = session.add_table(&c).unwrap();
        assert!(
            outcome.report.fd_stats.reused_components > 0,
            "untouched components must be reused: {:?}",
            outcome.report.fd_stats
        );
        let (fd_hits, _) = session.fd_cache_stats();
        assert!(fd_hits > 0);
    }

    #[test]
    fn full_recompute_policy_matches_reuse_policy() {
        let tables = figure1_tables();
        let mut reusing =
            IntegrationSession::begin(FuzzyFdConfig::default(), &tables[..2]).unwrap();
        let mut recomputing = IntegrationSession::begin_with_policy(
            FuzzyFdConfig::default(),
            IncrementalPolicy::full_recompute(),
            &tables[..2],
        )
        .unwrap();
        let fast = reusing.add_table(&tables[2]).unwrap();
        let slow = recomputing.add_table(&tables[2]).unwrap();
        assert_eq!(fast.table, slow.table);
        assert_eq!(fast.value_groups, slow.value_groups);
        assert_eq!(slow.incremental.reused_sets, 0);
        assert_eq!(slow.incremental.refolded_sets, 0);
        assert!(slow.report.blocking.folds > fast.report.blocking.folds);
    }

    #[test]
    fn empty_session_grows_from_nothing() {
        let mut session = IntegrationSession::begin(FuzzyFdConfig::default(), &[]).unwrap();
        assert!(session.current().table.is_empty());
        let tables = figure1_tables();
        for table in &tables {
            session.add_table(table).unwrap();
        }
        let batch = FuzzyFullDisjunction::default().integrate_by_headers(&tables).unwrap();
        assert_eq!(session.current().table, batch.table);
        assert_eq!(session.tables().len(), 3);
    }

    #[test]
    fn batch_sizes_record_call_boundaries() {
        let tables = figure1_tables();
        let mut session =
            IntegrationSession::begin(FuzzyFdConfig::default(), &tables[..2]).unwrap();
        assert_eq!(session.batch_sizes(), &[2]);
        session.add_table(&tables[2]).unwrap();
        session.add_tables(&[]).unwrap();
        assert_eq!(session.batch_sizes(), &[2, 1, 0]);
        assert_eq!(session.batch_sizes().iter().sum::<usize>(), session.tables().len());
    }

    #[test]
    fn invalid_config_is_rejected_at_session_start() {
        let error = IntegrationSession::begin(FuzzyFdConfig::with_theta(f32::NAN), &[]);
        assert!(error.is_err());
    }

    #[test]
    fn operator_convenience_opens_a_session() {
        let tables = figure1_tables();
        let operator = FuzzyFullDisjunction::default();
        let session = operator.begin_session(&tables).unwrap();
        let batch = operator.integrate_by_headers(&tables).unwrap();
        assert_eq!(session.current().table, batch.table);
    }
}
