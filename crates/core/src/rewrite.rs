//! Rewriting matched values to their representatives.
//!
//! After the Match Values component has produced value groups for one set of
//! aligned columns, every occurrence of a member value in its column is
//! replaced by the group's representative.  Once all aligned sets are
//! rewritten, the tables are value-consistent and the ordinary equi-join Full
//! Disjunction integrates them (paper §2.2, last paragraph).

use std::collections::HashMap;

use lake_table::{ColumnRef, Table, TableResult, Value};

use crate::value_match::ValueGroup;

/// Builds, for every source column of an aligned set, the substitution map
/// `old value → representative`.
///
/// `aligned_columns[i]` is the source column that position `i` of the value
/// groups refers to (the same order that was used to extract the column
/// values before matching).
pub fn build_substitutions(
    aligned_columns: &[ColumnRef],
    groups: &[ValueGroup],
) -> HashMap<ColumnRef, HashMap<Value, Value>> {
    let mut substitutions: HashMap<ColumnRef, HashMap<Value, Value>> = HashMap::new();
    for group in groups {
        // Empty or singleton groups have no cross-column match to rewrite.
        if group.len() < 2 {
            continue;
        }
        for (position, value) in &group.members {
            if *value == group.representative {
                continue;
            }
            let column = aligned_columns[*position];
            substitutions
                .entry(column)
                .or_default()
                .insert(value.clone(), group.representative.clone());
        }
    }
    substitutions
}

/// Applies substitution maps to (clones of) the input tables and returns the
/// rewritten tables together with the number of rewritten cells.
pub fn apply_substitutions(
    tables: &[Table],
    substitutions: &HashMap<ColumnRef, HashMap<Value, Value>>,
) -> TableResult<(Vec<Table>, usize)> {
    let mut rewritten: Vec<Table> = tables.to_vec();
    let mut replaced = 0usize;
    for (column, mapping) in substitutions {
        replaced += rewritten[column.table].substitute_column(column.column, mapping)?;
    }
    Ok((rewritten, replaced))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lake_table::TableBuilder;

    fn groups() -> Vec<ValueGroup> {
        vec![
            ValueGroup {
                members: vec![(0, Value::text("Berlinn")), (1, Value::text("Berlin"))],
                representative: Value::text("Berlin"),
            },
            ValueGroup {
                members: vec![(0, Value::text("Toronto"))],
                representative: Value::text("Toronto"),
            },
        ]
    }

    #[test]
    fn substitutions_cover_only_non_representative_members() {
        let aligned = vec![ColumnRef::new(0, 0), ColumnRef::new(1, 0)];
        let subs = build_substitutions(&aligned, &groups());
        // Only T1's "Berlinn" needs rewriting; the singleton and the
        // representative itself do not.
        assert_eq!(subs.len(), 1);
        let t1_map = &subs[&ColumnRef::new(0, 0)];
        assert_eq!(t1_map[&Value::text("Berlinn")], Value::text("Berlin"));
    }

    #[test]
    fn apply_rewrites_cells_and_counts_them() {
        let tables = vec![
            TableBuilder::new("T1", ["City"]).row(["Berlinn"]).row(["Toronto"]).build().unwrap(),
            TableBuilder::new("T2", ["City"]).row(["Berlin"]).build().unwrap(),
        ];
        let aligned = vec![ColumnRef::new(0, 0), ColumnRef::new(1, 0)];
        let subs = build_substitutions(&aligned, &groups());
        let (rewritten, replaced) = apply_substitutions(&tables, &subs).unwrap();
        assert_eq!(replaced, 1);
        assert_eq!(rewritten[0].cell(0, 0), Some(&Value::text("Berlin")));
        assert_eq!(rewritten[0].cell(1, 0), Some(&Value::text("Toronto")));
        // Originals untouched.
        assert_eq!(tables[0].cell(0, 0), Some(&Value::text("Berlinn")));
    }

    #[test]
    fn empty_groups_produce_no_substitutions() {
        let aligned = vec![ColumnRef::new(0, 0)];
        assert!(build_substitutions(&aligned, &[]).is_empty());
    }
}
