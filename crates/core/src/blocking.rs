//! Blocked candidate generation for fuzzy value matching.
//!
//! Each fold step of the Match Values component bipartite-matches the current
//! combined column (the groups) against the next column's values.  Done
//! naively that is one dense `groups × values` cost matrix — O(n²) distance
//! computations plus a cubic assignment solve.  This module partitions the
//! candidate space first; the connected components of the candidate-pair
//! bipartite graph become independent sub-problems.  Pairs in different
//! components are never compared; each component is solved as its own small
//! assignment problem, and the components can be solved concurrently because
//! they share no group and no value.
//!
//! Candidate pairs come from two channels:
//!
//! * **surface keys** ([`lake_text::string_block_keys`]: tokens, q-grams,
//!   acronyms) — two items are candidates when they share a key, optionally
//!   augmented with SimHash embedding-bucket keys from
//!   [`lake_embed::SimHasher`] ([`SemanticBlocking::SimHash`]).  Cheap and
//!   sub-quadratic, but probabilistic on the semantic side;
//! * **exact sub-threshold distances** ([`SemanticBlocking::ExactBelow`],
//!   the default) — one dot-product sweep over the fold computes every
//!   (group, value) cosine distance and admits exactly the pairs below
//!   `θ + slack`.  Any pair the post-solve thresholding step could accept is
//!   a candidate by construction, and each candidate's distance is recorded
//!   on the block so the solver reuses it instead of recomputing.  The sweep
//!   costs the same dot products the exhaustive cost matrix would — the win
//!   is the (cubic) solver seeing much smaller independent sub-problems and
//!   the masked share of the matrix never being touched again.
//!
//! Within a block, non-candidate combinations are masked with an
//! above-threshold cost, so blocked mode never matches a pair that was not a
//! candidate.  The cartesian fallback ([`BlockingPolicy::Exhaustive`], or a
//! keyed policy below its `min_blocked_pairs` floor) produces a single
//! unmasked block covering every pair, which preserves the exact exhaustive
//! behaviour.

use std::collections::BTreeSet;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use lake_embed::{SimHasher, Vector};
use lake_text::{string_block_keys, BlockKeyOptions};

use crate::config::{BlockingPolicy, KeyedBlockingConfig, SemanticBlocking};

/// Namespace salt separating embedding-bucket keys from hashed surface keys.
const BAND_KEY_NAMESPACE: u64 = 0xB10C_7E57_BA5E_D000;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Continues an FNV-1a hash over more bytes.
#[inline]
fn fnv1a_continue(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Hashes one surface blocking key (a `value_block_keys` string) to the
/// compact `u64` form the planner works with (FNV-1a, the same stable hash
/// the embedders use).
pub fn hash_key(key: &str) -> u64 {
    fnv1a_continue(FNV_OFFSET, key.as_bytes())
}

/// The hashed key of SimHash band `band` hashing to `bucket` — the numeric
/// twin of the `sh<band>:<bucket>` strings of
/// [`SimHasher::band_keys`](lake_embed::SimHasher::band_keys).
pub fn band_bucket_key(band: usize, bucket: u64) -> u64 {
    // Splitmix64 finalizer: spreads the small (band, bucket) space over u64
    // so chance collisions with FNV-hashed surface keys stay negligible.
    let mut z = BAND_KEY_NAMESPACE ^ ((band as u64) << 32) ^ bucket;
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hashed planner keys are already uniformly mixed (`FNV` / splitmix
/// output), so the bucket maps use them verbatim instead of re-hashing with
/// SipHash.
#[derive(Default)]
struct IdentityHasher(u64);

impl Hasher for IdentityHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 << 8) | b as u64;
        }
    }

    fn write_u64(&mut self, value: u64) {
        self.0 = value;
    }

    fn write_usize(&mut self, value: usize) {
        self.0 = value as u64;
    }
}

type KeyMap<V> = HashMap<u64, V, BuildHasherDefault<IdentityHasher>>;

/// One independent sub-problem: row indices (groups) × column indices
/// (values) that may be matched to each other.  Indices refer to the caller's
/// candidate arrays, not to global group ids.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Row-side members (indices into the candidate group list).
    pub rows: Vec<usize>,
    /// Column-side members (indices into the candidate value list).
    pub cols: Vec<usize>,
    /// The candidate `(row, col)` pairs of this block (global indices,
    /// sorted).  `None` means the block is dense — every combination is a
    /// candidate (the cartesian fallback).
    pub pairs: Option<Vec<(usize, usize)>>,
    /// Cosine distances of the candidate pairs, aligned with `pairs`.  Filled
    /// by the [`SemanticBlocking::ExactBelow`] planner (which computes them
    /// anyway) so the solver builds cost matrices without re-embedding or
    /// re-measuring; `None` when the planner was key-based.
    pub costs: Option<Vec<f32>>,
}

impl Block {
    /// Number of candidate pairs this block generates (combinations whose
    /// distance is actually computed).
    pub fn pair_count(&self) -> usize {
        match &self.pairs {
            Some(pairs) => pairs.len(),
            None => self.rows.len() * self.cols.len(),
        }
    }

    /// Number of participants (rows + columns).
    pub fn size(&self) -> usize {
        self.rows.len() + self.cols.len()
    }
}

/// Statistics of one or more blocking rounds, reported through
/// [`FuzzyFdReport`](crate::FuzzyFdReport).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockingStats {
    /// Bipartite matching steps (column folds) that went through planning.
    pub folds: usize,
    /// Blocks actually solved (a cartesian fallback counts as one block).
    pub blocks: usize,
    /// Candidate pairs that entered cost matrices.
    pub candidate_pairs: usize,
    /// Pairs pruned away relative to the exhaustive cartesian space.
    pub pruned_pairs: usize,
    /// Participants (groups + values) of the largest block seen.
    pub max_block_size: usize,
}

impl BlockingStats {
    /// Folds another round's statistics into this accumulator.
    pub fn merge(&mut self, other: &BlockingStats) {
        self.folds += other.folds;
        self.blocks += other.blocks;
        self.candidate_pairs += other.candidate_pairs;
        self.pruned_pairs += other.pruned_pairs;
        self.max_block_size = self.max_block_size.max(other.max_block_size);
    }

    /// Fraction of the exhaustive candidate space that was pruned, in
    /// `[0, 1]` (`0` when nothing was pruned or nothing was planned).
    pub fn pruned_fraction(&self) -> f64 {
        let total = self.candidate_pairs + self.pruned_pairs;
        if total == 0 {
            0.0
        } else {
            self.pruned_pairs as f64 / total as f64
        }
    }
}

/// The result of planning one bipartite matching step.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockPlan {
    /// Independent sub-problems; every row and every column appears in at
    /// most one block.  Rows/columns in no block have no candidate partner.
    pub blocks: Vec<Block>,
    /// What the plan pruned.
    pub stats: BlockingStats,
}

/// The inputs of one bipartite matching step, from the planner's point of
/// view: hashed surface keys and embeddings for both sides, plus the matching
/// threshold.  Channels a policy does not use may be left empty — the
/// key-based planners ignore the embeddings unless SimHash buckets are on,
/// and [`SemanticBlocking::ExactBelow`] ignores the key slices entirely (a
/// pair at distance ≥ θ + slack can never survive thresholding, so surface
/// keys cannot add a useful candidate there).
#[derive(Debug, Clone, Copy, Default)]
pub struct FoldInputs<'a> {
    /// Hashed blocking keys of each row (surface keys via [`hash_key`];
    /// duplicates within an item are tolerated).
    pub row_keys: &'a [Vec<u64>],
    /// Hashed blocking keys of each column.
    pub col_keys: &'a [Vec<u64>],
    /// Embedding of each row (group representative).
    pub row_embeddings: &'a [&'a Vector],
    /// Embedding of each column (value).
    pub col_embeddings: &'a [&'a Vector],
    /// Matching threshold θ of this fold (the `ExactBelow` candidacy cutoff
    /// is `theta + slack`).
    pub theta: f32,
}

impl FoldInputs<'_> {
    /// Number of rows, from whichever channel is populated.
    fn rows(&self) -> usize {
        self.row_keys.len().max(self.row_embeddings.len())
    }

    /// Number of columns, from whichever channel is populated.
    fn cols(&self) -> usize {
        self.col_keys.len().max(self.col_embeddings.len())
    }
}

/// The surface blocking keys of one value string under the value-matching
/// profile (all trigrams + acronym keys).  Group keys are the union of the
/// member values' keys, so a value and a group collide as soon as the value
/// shares a key with any member.
pub fn value_block_keys(value: &str) -> BTreeSet<String> {
    string_block_keys(value, &BlockKeyOptions::value_matching())
}

/// A [`SimHasher`] configured for a [`SemanticBlocking::SimHash`] channel
/// over `dim`-dimensional embeddings, or `None` for the other channels (and
/// for `dim == 0`, where there is nothing to project).  Exposed so tests can
/// reproduce the exact embedding-bucket keys the planner uses.
///
/// # Panics
/// Panics on an unusable SimHash configuration (`bands == 0`,
/// `band_bits == 0`, or `bands * band_bits > 64`) — rejecting the mistake
/// where it is visible instead of silently dropping the semantic channel or
/// failing deep inside [`SimHasher::new`].
pub fn embedding_hasher(semantic: &SemanticBlocking, dim: usize) -> Option<SimHasher> {
    match *semantic {
        SemanticBlocking::SimHash { bands, band_bits } => {
            assert!(
                bands > 0 && band_bits > 0,
                "SimHash blocking needs at least one band and one bit per band \
                 (got {bands} × {band_bits}); use SemanticBlocking::Off to disable \
                 the semantic channel"
            );
            assert!(
                bands * band_bits <= 64,
                "SimHash signature must fit in a u64: {bands} bands × {band_bits} bits > 64"
            );
            (dim > 0).then(|| SimHasher::new(bands * band_bits, dim))
        }
        SemanticBlocking::Off | SemanticBlocking::ExactBelow { .. } => None,
    }
}

/// The hashed embedding-bucket keys of one embedding under a SimHash channel
/// (empty for the other channels).  Convenience for tests and diagnostics —
/// hot paths build one [`SimHasher`] via [`embedding_hasher`] and map its
/// band buckets through [`band_bucket_key`] themselves.
pub fn embedding_bucket_keys(semantic: &SemanticBlocking, embedding: &Vector) -> Vec<u64> {
    let (hasher, band_bits) = match (embedding_hasher(semantic, embedding.dim()), semantic) {
        (Some(hasher), SemanticBlocking::SimHash { band_bits, .. }) => (hasher, *band_bits),
        _ => return Vec::new(),
    };
    hasher
        .band_buckets(embedding, band_bits)
        .into_iter()
        .enumerate()
        .map(|(band, bucket)| band_bucket_key(band, bucket))
        .collect()
}

/// Hashes a full surface-key set ([`value_block_keys`]) into planner form.
pub fn hashed_keys(keys: &BTreeSet<String>) -> Vec<u64> {
    keys.iter().map(|k| hash_key(k)).collect()
}

/// The hashed surface keys of one value, computed without materialising the
/// key strings — hash-identical to `hashed_keys(&value_block_keys(value))`
/// (duplicates may appear; the planner dedups).  This is the hot-path form
/// used by every fold step.
pub fn hashed_value_block_keys(value: &str) -> Vec<u64> {
    use lake_text::{acronym, normalize_aggressive, words};

    // Seeds equal an FNV-1a hash of the namespace prefix, so continuing over
    // the token bytes matches `hash_key("t:<token>")` &c. exactly.
    let token_seed = fnv1a_continue(FNV_OFFSET, b"t:");
    let gram_seed = fnv1a_continue(FNV_OFFSET, b"g:");
    let acronym_seed = fnv1a_continue(FNV_OFFSET, b"a:");
    let options = BlockKeyOptions::value_matching();

    let mut keys = Vec::new();
    let mut utf8 = [0u8; 4];
    let text = normalize_aggressive(value);
    let tokens = words(&text);
    for token in &tokens {
        // Byte-measured gate, mirroring `string_block_keys`.
        if token.len() < options.min_token_len {
            continue;
        }
        let chars: Vec<char> = token.chars().collect();
        keys.push(fnv1a_continue(token_seed, token.as_bytes()));
        if chars.len() < options.qgram {
            // `char_ngrams` yields the whole (short) token as its one gram.
            keys.push(fnv1a_continue(gram_seed, token.as_bytes()));
        } else {
            for gram in chars.windows(options.qgram) {
                let mut hash = gram_seed;
                for &c in gram {
                    hash = fnv1a_continue(hash, c.encode_utf8(&mut utf8).as_bytes());
                }
                keys.push(hash);
            }
        }
    }
    if tokens.len() >= 2 {
        // Round-trip through `acronym` so case-folding edge cases (ß → ss)
        // agree with the string form byte for byte.
        let initials = acronym(&text).to_lowercase();
        if initials.chars().count() >= 2 {
            keys.push(fnv1a_continue(acronym_seed, initials.as_bytes()));
        }
    } else if let Some(token) = tokens.first() {
        let len = token.chars().count();
        if (2..=lake_text::MAX_ACRONYM_LEN).contains(&len) {
            keys.push(fnv1a_continue(acronym_seed, token.as_bytes()));
        }
    }
    keys
}

/// Plans the blocks of one bipartite matching step.
///
/// Under [`BlockingPolicy::Exhaustive`] — or a keyed policy whose
/// `min_blocked_pairs` floor exceeds the candidate space — the plan is a
/// single cartesian block and nothing is pruned.  A keyed policy dispatches
/// on its [`SemanticBlocking`] channel: `Off`/`SimHash` run the key-bucket
/// planner over `input`'s key slices (SimHash band keys are derived from the
/// embeddings internally), `ExactBelow` runs the exact distance sweep over
/// the embedding slices.
pub fn plan_blocks(input: &FoldInputs<'_>, policy: &BlockingPolicy) -> BlockPlan {
    let rows = input.rows();
    let cols = input.cols();
    let total_pairs = rows * cols;
    let keyed = match policy {
        BlockingPolicy::Exhaustive => return plan_cartesian(rows, cols),
        BlockingPolicy::Keyed(keyed) if total_pairs < keyed.min_blocked_pairs => {
            return plan_cartesian(rows, cols);
        }
        BlockingPolicy::Keyed(keyed) => keyed,
    };
    match keyed.semantic {
        SemanticBlocking::ExactBelow { slack } => plan_exact(input, input.theta + slack),
        SemanticBlocking::Off | SemanticBlocking::SimHash { .. } => plan_by_keys(input, keyed),
    }
}

/// The exact sub-threshold planner: one dot-product sweep computes every
/// (row, col) cosine distance; pairs strictly below `cutoff` are candidates
/// and carry their distance into the blocks.  Recall at the matching
/// threshold is exact by construction.
fn plan_exact(input: &FoldInputs<'_>, cutoff: f32) -> BlockPlan {
    let rows = input.row_embeddings.len();
    let cols = input.col_embeddings.len();
    let row_norms: Vec<f32> = input.row_embeddings.iter().map(|e| e.norm()).collect();
    let col_norms: Vec<f32> = input.col_embeddings.iter().map(|e| e.norm()).collect();

    let mut pairs: Vec<(usize, usize)> = Vec::new();
    let mut costs: Vec<f32> = Vec::new();
    for (r, row) in input.row_embeddings.iter().enumerate() {
        for (c, col) in input.col_embeddings.iter().enumerate() {
            let distance = row.cosine_distance_given_norms(row_norms[r], col, col_norms[c]);
            if distance < cutoff {
                pairs.push((r, c));
                costs.push(distance);
            }
        }
    }
    assemble_components(rows, cols, pairs, Some(costs))
}

/// The key-bucket planner: rows and columns sharing a usable key become
/// candidate pairs.
fn plan_by_keys(input: &FoldInputs<'_>, keyed: &KeyedBlockingConfig) -> BlockPlan {
    let rows = input.rows();
    let cols = input.cols();
    let total_pairs = rows * cols;

    // SimHash band keys are derived here so callers only supply embeddings.
    let dim =
        input.row_embeddings.first().or(input.col_embeddings.first()).map(|e| e.dim()).unwrap_or(0);
    let hasher = embedding_hasher(&keyed.semantic, dim);
    let band_bits = match keyed.semantic {
        SemanticBlocking::SimHash { band_bits, .. } => band_bits,
        _ => 0,
    };
    let bucket_keys = |embedding: Option<&&Vector>, keys: &mut Vec<(u64, u32)>, node: u32| {
        if let (Some(hasher), Some(embedding)) = (&hasher, embedding) {
            keys.extend(
                hasher
                    .band_buckets(embedding, band_bits)
                    .into_iter()
                    .enumerate()
                    .map(|(band, bucket)| (band_bucket_key(band, bucket), node)),
            );
        }
    };

    // Bucket rows and columns by key — sort-based grouping of (key, node)
    // entries instead of a hash map, which keeps the hot path allocation-free
    // — then emit every cross-side combination of each usable bucket as a
    // candidate pair.  Buckets bigger than the cap are uninformative
    // ("the"-style keys) and skipped entirely.  A bitmap over the candidate
    // space dedups pairs reachable through several shared keys (it costs one
    // bit per cartesian pair, which is fine for any space worth blocking; a
    // keyed map takes over for astronomically large folds).
    let mut entries: Vec<(u64, u32)> = Vec::with_capacity(
        input.row_keys.iter().map(Vec::len).sum::<usize>()
            + input.col_keys.iter().map(Vec::len).sum::<usize>(),
    );
    for (i, keys) in input.row_keys.iter().enumerate() {
        entries.extend(keys.iter().map(|&k| (k, i as u32)));
    }
    for i in 0..rows {
        bucket_keys(input.row_embeddings.get(i), &mut entries, i as u32);
    }
    for (j, keys) in input.col_keys.iter().enumerate() {
        entries.extend(keys.iter().map(|&k| (k, (rows + j) as u32)));
    }
    for j in 0..cols {
        bucket_keys(input.col_embeddings.get(j), &mut entries, (rows + j) as u32);
    }
    entries.sort_unstable();
    entries.dedup();

    const BITMAP_CAP: usize = 1 << 24; // 2 MiB of bits
    let mut bitmap: Vec<u64> =
        if total_pairs <= BITMAP_CAP { vec![0u64; total_pairs.div_ceil(64)] } else { Vec::new() };
    let mut seen: KeyMap<()> = KeyMap::default();
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    let mut start = 0;
    while start < entries.len() {
        let key = entries[start].0;
        let mut end = start;
        while end < entries.len() && entries[end].0 == key {
            end += 1;
        }
        let bucket = &entries[start..end];
        start = end;
        // Nodes in a run are sorted, so rows come before columns.
        let split = bucket.partition_point(|&(_, node)| (node as usize) < rows);
        let (bucket_rows, bucket_cols) = bucket.split_at(split);
        if bucket_rows.is_empty() || bucket_cols.is_empty() {
            continue;
        }
        if bucket.len() > keyed.max_key_bucket {
            continue;
        }
        for &(_, r) in bucket_rows {
            for &(_, c) in bucket_cols {
                let (r, c) = (r as usize, c as usize - rows);
                let flat = r * cols + c;
                let fresh = if bitmap.is_empty() {
                    seen.insert(flat as u64, ()).is_none()
                } else {
                    let (word, bit) = (flat / 64, flat % 64);
                    let fresh = bitmap[word] & (1 << bit) == 0;
                    bitmap[word] |= 1 << bit;
                    fresh
                };
                if fresh {
                    pairs.push((r, c));
                }
            }
        }
    }
    pairs.sort_unstable();
    assemble_components(rows, cols, pairs, None)
}

/// Builds the block plan from a sorted candidate-pair list: connected
/// components of the candidate graph are independent sub-problems (they
/// share no row and no column).  `costs`, when given, must align with
/// `pairs` and is scattered onto the blocks.
fn assemble_components(
    rows: usize,
    cols: usize,
    pairs: Vec<(usize, usize)>,
    costs: Option<Vec<f32>>,
) -> BlockPlan {
    // Union-find over rows (nodes 0..rows) and columns (rows..rows+cols).
    let mut parent: Vec<usize> = (0..rows + cols).collect();
    for &(r, c) in &pairs {
        union(&mut parent, r, rows + c);
    }

    // Gather components in node order for determinism; nodes in no candidate
    // pair form one-sided components and are dropped below.
    let with_costs = costs.is_some();
    let mut component_of_root: HashMap<usize, usize> = HashMap::new();
    let mut blocks: Vec<Block> = Vec::new();
    for node in 0..rows + cols {
        let root = find(&mut parent, node);
        let idx = *component_of_root.entry(root).or_insert_with(|| {
            blocks.push(Block {
                rows: Vec::new(),
                cols: Vec::new(),
                pairs: Some(Vec::new()),
                costs: with_costs.then(Vec::new),
            });
            blocks.len() - 1
        });
        if node < rows {
            blocks[idx].rows.push(node);
        } else {
            blocks[idx].cols.push(node - rows);
        }
    }
    let costs = costs.unwrap_or_default();
    for (idx, (r, c)) in pairs.into_iter().enumerate() {
        let root = find(&mut parent, r);
        let block = &mut blocks[component_of_root[&root]];
        if let Some(block_pairs) = &mut block.pairs {
            block_pairs.push((r, c));
        }
        if let Some(block_costs) = &mut block.costs {
            block_costs.push(costs[idx]);
        }
    }
    // Blocks missing one side generate no pairs; drop them.
    blocks.retain(|b| !b.rows.is_empty() && !b.cols.is_empty());

    let candidate_pairs: usize = blocks.iter().map(Block::pair_count).sum();
    let stats = BlockingStats {
        folds: 1,
        blocks: blocks.len(),
        candidate_pairs,
        pruned_pairs: rows * cols - candidate_pairs,
        max_block_size: blocks.iter().map(Block::size).max().unwrap_or(0),
    };
    BlockPlan { blocks, stats }
}

/// The plan of a cartesian (unblocked) step: one dense block covering every
/// (row, col) combination, nothing pruned.  This is what
/// [`BlockingPolicy::Exhaustive`] and the `min_blocked_pairs` floor resolve
/// to; exposed so callers that already know a fold is cartesian can skip
/// [`plan_blocks`]' input assembly entirely.
pub fn plan_cartesian(rows: usize, cols: usize) -> BlockPlan {
    let mut blocks = Vec::new();
    if rows > 0 && cols > 0 {
        blocks.push(Block {
            rows: (0..rows).collect(),
            cols: (0..cols).collect(),
            pairs: None,
            costs: None,
        });
    }
    let stats = BlockingStats {
        folds: 1,
        blocks: blocks.len(),
        candidate_pairs: rows * cols,
        pruned_pairs: 0,
        max_block_size: blocks.first().map(Block::size).unwrap_or(0),
    };
    BlockPlan { blocks, stats }
}

fn find(parent: &mut [usize], node: usize) -> usize {
    let mut root = node;
    while parent[root] != root {
        root = parent[root];
    }
    // Path compression.
    let mut current = node;
    while parent[current] != root {
        let next = parent[current];
        parent[current] = root;
        current = next;
    }
    root
}

fn union(parent: &mut [usize], a: usize, b: usize) {
    let ra = find(parent, a);
    let rb = find(parent, b);
    if ra != rb {
        // Attach the larger root under the smaller one so component roots —
        // and with them block order — stay deterministic.
        let (lo, hi) = (ra.min(rb), ra.max(rb));
        parent[hi] = lo;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(strs: &[&str]) -> Vec<Vec<u64>> {
        strs.iter().map(|s| hashed_keys(&value_block_keys(s))).collect()
    }

    fn keyed(max_key_bucket: usize) -> BlockingPolicy {
        BlockingPolicy::Keyed(KeyedBlockingConfig {
            max_key_bucket,
            semantic: SemanticBlocking::Off,
            min_blocked_pairs: 0,
        })
    }

    fn plan_keys(rows: &[Vec<u64>], cols: &[Vec<u64>], policy: &BlockingPolicy) -> BlockPlan {
        let input = FoldInputs { row_keys: rows, col_keys: cols, ..FoldInputs::default() };
        plan_blocks(&input, policy)
    }

    #[test]
    fn exhaustive_policy_yields_one_cartesian_block() {
        let rows = keys(&["Berlin", "Toronto"]);
        let cols = keys(&["Boston", "Quito", "Lima"]);
        let plan = plan_keys(&rows, &cols, &BlockingPolicy::Exhaustive);
        assert_eq!(plan.blocks.len(), 1);
        assert_eq!(plan.blocks[0].rows, vec![0, 1]);
        assert_eq!(plan.blocks[0].cols, vec![0, 1, 2]);
        assert_eq!(plan.stats.pruned_pairs, 0);
        assert_eq!(plan.stats.candidate_pairs, 6);
    }

    #[test]
    fn min_blocked_pairs_floor_falls_back_to_cartesian() {
        let rows = keys(&["Berlin"]);
        let cols = keys(&["Toronto"]);
        let policy = BlockingPolicy::Keyed(KeyedBlockingConfig {
            min_blocked_pairs: 100,
            ..KeyedBlockingConfig::default()
        });
        let plan = plan_keys(&rows, &cols, &policy);
        assert_eq!(plan.blocks.len(), 1);
        assert_eq!(plan.stats.pruned_pairs, 0);
    }

    #[test]
    fn disjoint_surfaces_split_into_independent_blocks() {
        let rows = keys(&["Berlin", "Toronto"]);
        let cols = keys(&["Berlinn", "Torontoo"]);
        let plan = plan_keys(&rows, &cols, &keyed(64));
        assert_eq!(plan.blocks.len(), 2);
        assert_eq!(plan.blocks[0].rows, vec![0]);
        assert_eq!(plan.blocks[0].cols, vec![0]);
        assert_eq!(plan.blocks[1].rows, vec![1]);
        assert_eq!(plan.blocks[1].cols, vec![1]);
        assert_eq!(plan.stats.candidate_pairs, 2);
        assert_eq!(plan.stats.pruned_pairs, 2);
        assert_eq!(plan.stats.max_block_size, 2);
    }

    #[test]
    fn unmatched_values_appear_in_no_block() {
        let rows = keys(&["Berlin"]);
        let cols = keys(&["Berlinn", "Zanzibar"]);
        let plan = plan_keys(&rows, &cols, &keyed(64));
        assert_eq!(plan.blocks.len(), 1);
        assert_eq!(plan.blocks[0].cols, vec![0]);
        assert_eq!(plan.stats.pruned_pairs, 1);
    }

    #[test]
    fn oversized_key_buckets_are_ignored() {
        // Every value shares the token "city", but the bucket cap is too
        // small for that key to be usable, so nothing connects.
        let rows = keys(&["city alpha", "city beta"]);
        let cols = keys(&["city gamma", "city delta"]);
        let plan = plan_keys(&rows, &cols, &keyed(3));
        assert!(plan.blocks.is_empty(), "{plan:?}");
        assert_eq!(plan.stats.pruned_pairs, 4);
        // With a generous cap the shared token glues everything together.
        let glued = plan_keys(&rows, &cols, &keyed(64));
        assert_eq!(glued.blocks.len(), 1);
        assert_eq!(glued.stats.max_block_size, 4);
    }

    #[test]
    fn acronym_keys_bridge_initialisms() {
        let rows = keys(&["United Nations"]);
        let cols = keys(&["UN"]);
        let plan = plan_keys(&rows, &cols, &keyed(64));
        assert_eq!(plan.blocks.len(), 1);
        assert_eq!(plan.stats.candidate_pairs, 1);
    }

    #[test]
    fn empty_inputs_plan_no_blocks() {
        let plan = plan_keys(&[], &[], &keyed(64));
        assert!(plan.blocks.is_empty());
        assert_eq!(plan.stats.candidate_pairs, 0);
        let plan = plan_keys(&keys(&["Berlin"]), &[], &BlockingPolicy::Exhaustive);
        assert!(plan.blocks.is_empty());
    }

    #[test]
    fn blocks_partition_rows_and_cols() {
        let rows = keys(&["alpha one", "beta two", "gamma three", "alpha four"]);
        let cols = keys(&["alpha", "beta", "delta", "gamma"]);
        let plan = plan_keys(&rows, &cols, &keyed(64));
        let mut seen_rows = BTreeSet::new();
        let mut seen_cols = BTreeSet::new();
        for block in &plan.blocks {
            for r in &block.rows {
                assert!(seen_rows.insert(*r), "row {r} in two blocks");
            }
            for c in &block.cols {
                assert!(seen_cols.insert(*c), "col {c} in two blocks");
            }
        }
        let total: usize = plan.blocks.iter().map(Block::pair_count).sum();
        assert_eq!(total, plan.stats.candidate_pairs);
        assert_eq!(plan.stats.candidate_pairs + plan.stats.pruned_pairs, 16);
    }

    #[test]
    fn allocation_free_hashing_matches_the_string_keys() {
        for value in [
            "Berlin",
            "New Delhi",
            "United Nations",
            "UN",
            "U.S.",
            "Zürich",
            "a",
            "",
            "Jean-Luc  Picard!",
            "rock-n-roll 42",
            "xy",
            "東",
            "東 京都",
        ] {
            let via_strings: BTreeSet<u64> =
                hashed_keys(&value_block_keys(value)).into_iter().collect();
            let direct: BTreeSet<u64> = hashed_value_block_keys(value).into_iter().collect();
            assert_eq!(via_strings, direct, "hash mismatch for {value:?}");
        }
    }

    #[test]
    fn hashed_keys_are_stable_and_distinct_per_namespace() {
        assert_eq!(hash_key("t:berlin"), hash_key("t:berlin"));
        assert_ne!(hash_key("t:berlin"), hash_key("g:berlin"));
        assert_ne!(band_bucket_key(0, 3), band_bucket_key(1, 3));
        assert_ne!(band_bucket_key(0, 3), band_bucket_key(0, 4));
        assert_eq!(band_bucket_key(2, 7), band_bucket_key(2, 7));
    }

    #[test]
    fn embedding_bucket_keys_match_the_hasher() {
        let semantic = SemanticBlocking::simhash_default();
        let SemanticBlocking::SimHash { bands, band_bits } = semantic else { unreachable!() };
        let embedding = Vector::new((0..16).map(|i| (i as f32).sin()).collect());
        let via_helper = embedding_bucket_keys(&semantic, &embedding);
        let hasher = embedding_hasher(&semantic, embedding.dim()).unwrap();
        let via_hasher: Vec<u64> = hasher
            .band_buckets(&embedding, band_bits)
            .into_iter()
            .enumerate()
            .map(|(band, bucket)| band_bucket_key(band, bucket))
            .collect();
        assert_eq!(via_helper, via_hasher);
        assert_eq!(via_helper.len(), bands);
        // The non-SimHash channels produce no band keys and no hasher.
        for other in [SemanticBlocking::Off, SemanticBlocking::ExactBelow { slack: 0.0 }] {
            assert!(embedding_bucket_keys(&other, &embedding).is_empty());
            assert!(embedding_hasher(&other, embedding.dim()).is_none());
        }
    }

    #[test]
    fn exact_channel_blocks_on_sub_threshold_distances() {
        // Two orthogonal-ish clusters: e0/e1 close to each other, e2/e3 close
        // to each other, cross-cluster pairs far.
        let near = |base: f32| Vector::new(vec![base, 1.0 - base, 0.0, 0.0]);
        let far = |base: f32| Vector::new(vec![0.0, 0.0, base, 1.0 - base]);
        let (r0, r1) = (near(0.45), far(0.45));
        let (c0, c1) = (near(0.55), far(0.55));
        let input = FoldInputs {
            row_embeddings: &[&r0, &r1],
            col_embeddings: &[&c0, &c1],
            theta: 0.5,
            ..FoldInputs::default()
        };
        let policy = BlockingPolicy::Keyed(KeyedBlockingConfig {
            semantic: SemanticBlocking::ExactBelow { slack: 0.0 },
            min_blocked_pairs: 0,
            ..KeyedBlockingConfig::default()
        });
        let plan = plan_blocks(&input, &policy);
        assert_eq!(plan.blocks.len(), 2, "{plan:?}");
        assert_eq!(plan.stats.candidate_pairs, 2);
        assert_eq!(plan.stats.pruned_pairs, 2);
        // Each candidate pair carries its measured distance, below θ.
        for block in &plan.blocks {
            let costs = block.costs.as_ref().expect("exact plans carry costs");
            assert_eq!(costs.len(), block.pairs.as_ref().unwrap().len());
            assert!(costs.iter().all(|&c| c < 0.5), "{costs:?}");
        }
        // A generous slack admits the cross-cluster pairs too and glues the
        // fold into one block.
        let loose = BlockingPolicy::Keyed(KeyedBlockingConfig {
            semantic: SemanticBlocking::ExactBelow { slack: 1.5 },
            min_blocked_pairs: 0,
            ..KeyedBlockingConfig::default()
        });
        let glued = plan_blocks(&input, &loose);
        assert_eq!(glued.blocks.len(), 1);
        assert_eq!(glued.stats.pruned_pairs, 0);
    }

    #[test]
    #[should_panic(expected = "SimHash signature must fit")]
    fn oversized_simhash_config_is_rejected_early() {
        embedding_hasher(&SemanticBlocking::SimHash { bands: 16, band_bits: 8 }, 8);
    }

    #[test]
    #[should_panic(expected = "at least one band")]
    fn zero_band_simhash_config_is_rejected() {
        embedding_hasher(&SemanticBlocking::SimHash { bands: 0, band_bits: 8 }, 8);
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut acc = BlockingStats::default();
        acc.merge(&BlockingStats {
            folds: 1,
            blocks: 2,
            candidate_pairs: 10,
            pruned_pairs: 90,
            max_block_size: 5,
        });
        acc.merge(&BlockingStats {
            folds: 1,
            blocks: 1,
            candidate_pairs: 20,
            pruned_pairs: 0,
            max_block_size: 9,
        });
        assert_eq!(acc.folds, 2);
        assert_eq!(acc.blocks, 3);
        assert_eq!(acc.candidate_pairs, 30);
        assert_eq!(acc.pruned_pairs, 90);
        assert_eq!(acc.max_block_size, 9);
        assert!((acc.pruned_fraction() - 0.75).abs() < 1e-9);
        assert_eq!(BlockingStats::default().pruned_fraction(), 0.0);
    }
}
