//! Blocked candidate generation for fuzzy value matching.
//!
//! Each fold step of the Match Values component bipartite-matches the current
//! combined column (the groups) against the next column's values.  Done
//! naively that is one dense `groups × values` cost matrix — O(n²) distance
//! computations plus a cubic assignment solve.  This module partitions the
//! candidate space first; the connected components of the candidate-pair
//! bipartite graph become independent sub-problems.  Pairs in different
//! components are never compared; each component is solved as its own small
//! assignment problem, and the components can be solved concurrently because
//! they share no group and no value.
//!
//! Candidate pairs come from two channels:
//!
//! * **surface keys** ([`lake_text::string_block_keys`]: tokens, q-grams,
//!   acronyms) — two items are candidates when they share a key, optionally
//!   augmented with SimHash embedding-bucket keys from
//!   [`lake_embed::SimHasher`] ([`SemanticBlocking::SimHash`]).  Cheap and
//!   sub-quadratic, but probabilistic on the semantic side;
//! * **exact sub-threshold distances** ([`SemanticBlocking::ExactBelow`],
//!   the default) — one dot-product sweep over the fold computes every
//!   (group, value) cosine distance and admits exactly the pairs below
//!   `θ + slack`.  Any pair the post-solve thresholding step could accept is
//!   a candidate by construction, and each candidate's distance is recorded
//!   on the block so the solver reuses it instead of recomputing.  The sweep
//!   costs the same dot products the exhaustive cost matrix would — the win
//!   is the (cubic) solver seeing much smaller independent sub-problems and
//!   the masked share of the matrix never being touched again.
//!
//! Within a block, non-candidate combinations are masked with an
//! above-threshold cost, so blocked mode never matches a pair that was not a
//! candidate.  The cartesian fallback ([`BlockingPolicy::Exhaustive`], or a
//! keyed policy below its `min_blocked_pairs` floor) produces a single
//! unmasked block covering every pair, which preserves the exact exhaustive
//! behaviour.
//!
//! # Size-tiered planning
//!
//! Fold size picks the plan, so blocking stays faithful where it is cheap to
//! be and sub-quadratic where it has to be:
//!
//! 1. **cartesian** (below `min_blocked_pairs`) — one dense block, exactly
//!    the exhaustive behaviour;
//! 2. **exact sweep** (default) — every pair scored once, candidacy below
//!    `θ + slack` guaranteed; recall at the matching threshold is *exact*
//!    as long as no connected component trips the splitting cap below;
//! 3. **escalated ANN** (at or above
//!    [`EscalationPolicy::min_fold_pairs`](crate::config::EscalationPolicy))
//!    — the fold's value embeddings are indexed in a
//!    [`lake_embed::AnnIndex`] (SimHash multi-probe buckets), each group
//!    embedding retrieves its colliding values, and only the union of
//!    collisions and surface-key candidates is exactly re-scored.
//!    Probabilistic recall: a sub-cutoff pair can be missed when its
//!    signature disagreements all carry large margins *and* it shares no
//!    usable surface key.
//!
//! Independently of the tier, cost-carrying plans split oversized connected
//! components before solving (see
//! [`KeyedBlockingConfig::max_component_cells`]): candidate edges re-join
//! components strongest-first, and an edge that would merge two clusters
//! past the cell cap is severed and recorded as a [`CutEdge`] so post-solve
//! thresholding (and the equivalence harness) can re-verify that nothing
//! below θ was lost.

use std::collections::BTreeSet;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use lake_embed::kernel::{self, KernelStats};
use lake_embed::{AnnIndex, AnnScratch, QuantizedSlab, SimHasher, Vector};
use lake_metrics::{PhaseTimings, Stopwatch};
use lake_text::{string_block_keys, BlockKeyOptions};

use crate::config::{BlockingPolicy, KeyedBlockingConfig, SemanticBlocking};

/// Namespace salt separating embedding-bucket keys from hashed surface keys.
const BAND_KEY_NAMESPACE: u64 = 0xB10C_7E57_BA5E_D000;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Continues an FNV-1a hash over more bytes.
#[inline]
fn fnv1a_continue(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Hashes one surface blocking key (a `value_block_keys` string) to the
/// compact `u64` form the planner works with (FNV-1a, the same stable hash
/// the embedders use).
pub fn hash_key(key: &str) -> u64 {
    fnv1a_continue(FNV_OFFSET, key.as_bytes())
}

/// The hashed key of SimHash band `band` hashing to `bucket` — the numeric
/// twin of the `sh<band>:<bucket>` strings of
/// [`SimHasher::band_keys`](lake_embed::SimHasher::band_keys).
pub fn band_bucket_key(band: usize, bucket: u64) -> u64 {
    // Splitmix64 finalizer: spreads the small (band, bucket) space over u64
    // so chance collisions with FNV-hashed surface keys stay negligible.
    let mut z = BAND_KEY_NAMESPACE ^ ((band as u64) << 32) ^ bucket;
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hashed planner keys are already uniformly mixed (`FNV` / splitmix
/// output), so the bucket maps use them verbatim instead of re-hashing with
/// SipHash.
#[derive(Default)]
struct IdentityHasher(u64);

impl Hasher for IdentityHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 << 8) | b as u64;
        }
    }

    fn write_u64(&mut self, value: u64) {
        self.0 = value;
    }

    fn write_usize(&mut self, value: usize) {
        self.0 = value as u64;
    }
}

type KeyMap<V> = HashMap<u64, V, BuildHasherDefault<IdentityHasher>>;

/// One independent sub-problem: row indices (groups) × column indices
/// (values) that may be matched to each other.  Indices refer to the caller's
/// candidate arrays, not to global group ids.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Row-side members (indices into the candidate group list).
    pub rows: Vec<usize>,
    /// Column-side members (indices into the candidate value list).
    pub cols: Vec<usize>,
    /// The candidate `(row, col)` pairs of this block (global indices,
    /// sorted).  `None` means the block is dense — every combination is a
    /// candidate (the cartesian fallback).
    pub pairs: Option<Vec<(usize, usize)>>,
    /// Cosine distances of the candidate pairs, aligned with `pairs`.  Filled
    /// by the [`SemanticBlocking::ExactBelow`] planner (which computes them
    /// anyway) so the solver builds cost matrices without re-embedding or
    /// re-measuring; `None` when the planner was key-based.
    pub costs: Option<Vec<f32>>,
}

impl Block {
    /// Number of candidate pairs this block generates (combinations whose
    /// distance is actually computed).
    pub fn pair_count(&self) -> usize {
        match &self.pairs {
            Some(pairs) => pairs.len(),
            None => self.rows.len() * self.cols.len(),
        }
    }

    /// Number of participants (rows + columns).
    pub fn size(&self) -> usize {
        self.rows.len() + self.cols.len()
    }
}

/// Statistics of one or more blocking rounds, reported through
/// [`FuzzyFdReport`](crate::FuzzyFdReport).
///
/// Counters accumulate with [`merge`](Self::merge) (saturating, so
/// pathological workloads degrade to pegged counters instead of wrapping).
///
/// ```
/// use fuzzy_fd_core::BlockingStats;
///
/// let mut total = BlockingStats::default();
/// total.merge(&BlockingStats { folds: 1, candidate_pairs: 25, pruned_pairs: 75, ..Default::default() });
/// assert_eq!(total.pruned_fraction(), 0.75);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BlockingStats {
    /// Bipartite matching steps (column folds) that went through planning.
    pub folds: usize,
    /// Folds that escalated from the exact sweep to the ANN tier.
    pub escalated_folds: usize,
    /// Blocks actually solved (a cartesian fallback counts as one block).
    pub blocks: usize,
    /// Candidate pairs that entered cost matrices.
    pub candidate_pairs: usize,
    /// Pairs whose exact distance is (or will be) computed: the full
    /// cartesian space for the dense and exact-sweep tiers, only the probed
    /// union for the escalated ANN tier.  This is the number the escalation
    /// tier exists to shrink.
    pub scored_pairs: usize,
    /// Pairs pruned away relative to the exhaustive cartesian space.
    pub pruned_pairs: usize,
    /// Oversized connected components that were split before solving.
    pub split_components: usize,
    /// Candidate edges severed while splitting oversized components.
    pub severed_pairs: usize,
    /// Participants (groups + values) of the largest block seen.
    pub max_block_size: usize,
    /// How the block solves were scheduled on the shared executor
    /// ([`lake_runtime::run_scope`]), accumulated over every fold: tasks,
    /// steals, per-worker busy time.  Empty when every fold solved inline.
    pub runtime: lake_runtime::RuntimeStats,
    /// What the quantized scoring kernel did under the cost-carrying tiers:
    /// int8-scored / bound-skipped / f32-re-scored pairs and swept cache
    /// tiles, accumulated over every fold.  Empty for folds that never
    /// touched the kernel (cartesian fallback, key-bucket channel).
    pub kernel: KernelStats,
    /// Where the planning wall clock went, phase by phase
    /// (hash/probe/pairs/dedup/score/fallback from the planners, assign from
    /// the block solver), accumulated over every fold.  Zero for cartesian
    /// plans, whose only measured phase is the assignment solve.
    pub phase: PhaseTimings,
}

impl BlockingStats {
    /// Folds another round's statistics into this accumulator (saturating).
    pub fn merge(&mut self, other: &BlockingStats) {
        self.folds = self.folds.saturating_add(other.folds);
        self.escalated_folds = self.escalated_folds.saturating_add(other.escalated_folds);
        self.blocks = self.blocks.saturating_add(other.blocks);
        self.candidate_pairs = self.candidate_pairs.saturating_add(other.candidate_pairs);
        self.scored_pairs = self.scored_pairs.saturating_add(other.scored_pairs);
        self.pruned_pairs = self.pruned_pairs.saturating_add(other.pruned_pairs);
        self.split_components = self.split_components.saturating_add(other.split_components);
        self.severed_pairs = self.severed_pairs.saturating_add(other.severed_pairs);
        self.max_block_size = self.max_block_size.max(other.max_block_size);
        self.runtime.merge(&other.runtime);
        self.kernel.merge(&other.kernel);
        self.phase.merge(&other.phase);
    }

    /// Fraction of the exhaustive candidate space that was pruned, in
    /// `[0, 1]` (`0` when nothing was pruned or nothing was planned).
    pub fn pruned_fraction(&self) -> f64 {
        let total = self.candidate_pairs.saturating_add(self.pruned_pairs);
        if total == 0 {
            0.0
        } else {
            self.pruned_pairs as f64 / total as f64
        }
    }
}

/// A candidate edge severed while splitting an oversized component.  Every
/// cut is recorded so post-solve thresholding (and the equivalence harness)
/// can re-verify it: a cut at `distance >= θ` could never have produced a
/// match, so severing it is provably harmless; a cut below θ can only make
/// the matching *miss* a pair, never fabricate one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CutEdge {
    /// Row-side (group) index of the severed candidate pair.
    pub row: usize,
    /// Column-side (value) index of the severed candidate pair.
    pub col: usize,
    /// The pair's exact cosine distance, as measured by the planner.
    pub distance: f32,
}

/// The result of planning one bipartite matching step.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockPlan {
    /// Independent sub-problems; every row and every column appears in at
    /// most one block.  Rows/columns in no block have no candidate partner.
    pub blocks: Vec<Block>,
    /// Candidate edges severed by oversized-component splitting (empty when
    /// nothing was split).
    pub cut_edges: Vec<CutEdge>,
    /// What the plan pruned.
    pub stats: BlockingStats,
}

/// The inputs of one bipartite matching step, from the planner's point of
/// view: hashed surface keys and embeddings for both sides, plus the matching
/// threshold.  Channels a policy does not use may be left empty — the
/// key-based planners ignore the embeddings unless SimHash buckets are on,
/// and [`SemanticBlocking::ExactBelow`] ignores the key slices entirely (a
/// pair at distance ≥ θ + slack can never survive thresholding, so surface
/// keys cannot add a useful candidate there).
#[derive(Debug, Clone, Copy, Default)]
pub struct FoldInputs<'a> {
    /// Hashed blocking keys of each row (surface keys via [`hash_key`];
    /// duplicates within an item are tolerated).
    pub row_keys: &'a [Vec<u64>],
    /// Hashed blocking keys of each column.
    pub col_keys: &'a [Vec<u64>],
    /// Embedding of each row (group representative).
    pub row_embeddings: &'a [&'a Vector],
    /// Embedding of each column (value).
    pub col_embeddings: &'a [&'a Vector],
    /// Matching threshold θ of this fold (the `ExactBelow` candidacy cutoff
    /// is `theta + slack`).
    pub theta: f32,
}

impl FoldInputs<'_> {
    /// Number of rows, from whichever channel is populated.
    fn rows(&self) -> usize {
        self.row_keys.len().max(self.row_embeddings.len())
    }

    /// Number of columns, from whichever channel is populated.
    fn cols(&self) -> usize {
        self.col_keys.len().max(self.col_embeddings.len())
    }
}

/// The surface blocking keys of one value string under the value-matching
/// profile (all trigrams + acronym keys).  Group keys are the union of the
/// member values' keys, so a value and a group collide as soon as the value
/// shares a key with any member.
pub fn value_block_keys(value: &str) -> BTreeSet<String> {
    string_block_keys(value, &BlockKeyOptions::value_matching())
}

/// A [`SimHasher`] configured for a [`SemanticBlocking::SimHash`] channel
/// over `dim`-dimensional embeddings, or `None` for the other channels (and
/// for `dim == 0`, where there is nothing to project).  Exposed so tests can
/// reproduce the exact embedding-bucket keys the planner uses.
///
/// # Panics
/// Panics on an unusable SimHash configuration (`bands == 0`,
/// `band_bits == 0`, or `bands * band_bits > 64`) — rejecting the mistake
/// where it is visible instead of silently dropping the semantic channel or
/// failing deep inside [`SimHasher::new`].
pub fn embedding_hasher(semantic: &SemanticBlocking, dim: usize) -> Option<SimHasher> {
    match *semantic {
        SemanticBlocking::SimHash { bands, band_bits } => {
            assert!(
                bands > 0 && band_bits > 0,
                "SimHash blocking needs at least one band and one bit per band \
                 (got {bands} × {band_bits}); use SemanticBlocking::Off to disable \
                 the semantic channel"
            );
            assert!(
                bands * band_bits <= 64,
                "SimHash signature must fit in a u64: {bands} bands × {band_bits} bits > 64"
            );
            (dim > 0).then(|| SimHasher::new(bands * band_bits, dim))
        }
        SemanticBlocking::Off | SemanticBlocking::ExactBelow { .. } => None,
    }
}

/// The hashed embedding-bucket keys of one embedding under a SimHash channel
/// (empty for the other channels).  Convenience for tests and diagnostics —
/// hot paths build one [`SimHasher`] via [`embedding_hasher`] and map its
/// band buckets through [`band_bucket_key`] themselves.
pub fn embedding_bucket_keys(semantic: &SemanticBlocking, embedding: &Vector) -> Vec<u64> {
    let (hasher, band_bits) = match (embedding_hasher(semantic, embedding.dim()), semantic) {
        (Some(hasher), SemanticBlocking::SimHash { band_bits, .. }) => (hasher, *band_bits),
        _ => return Vec::new(),
    };
    hasher
        .band_buckets(embedding, band_bits)
        .into_iter()
        .enumerate()
        .map(|(band, bucket)| band_bucket_key(band, bucket))
        .collect()
}

/// Hashes a full surface-key set ([`value_block_keys`]) into planner form.
pub fn hashed_keys(keys: &BTreeSet<String>) -> Vec<u64> {
    keys.iter().map(|k| hash_key(k)).collect()
}

/// The hashed surface keys of one value, computed without materialising the
/// key strings — hash-identical to `hashed_keys(&value_block_keys(value))`
/// (duplicates may appear; the planner dedups).  This is the hot-path form
/// used by every fold step.
pub fn hashed_value_block_keys(value: &str) -> Vec<u64> {
    use lake_text::{acronym, normalize_aggressive, words};

    // Seeds equal an FNV-1a hash of the namespace prefix, so continuing over
    // the token bytes matches `hash_key("t:<token>")` &c. exactly.
    let token_seed = fnv1a_continue(FNV_OFFSET, b"t:");
    let gram_seed = fnv1a_continue(FNV_OFFSET, b"g:");
    let acronym_seed = fnv1a_continue(FNV_OFFSET, b"a:");
    let options = BlockKeyOptions::value_matching();

    let mut keys = Vec::new();
    let mut utf8 = [0u8; 4];
    let text = normalize_aggressive(value);
    let tokens = words(&text);
    for token in &tokens {
        // Byte-measured gate, mirroring `string_block_keys`.
        if token.len() < options.min_token_len {
            continue;
        }
        let chars: Vec<char> = token.chars().collect();
        keys.push(fnv1a_continue(token_seed, token.as_bytes()));
        if chars.len() < options.qgram {
            // `char_ngrams` yields the whole (short) token as its one gram.
            keys.push(fnv1a_continue(gram_seed, token.as_bytes()));
        } else {
            for gram in chars.windows(options.qgram) {
                let mut hash = gram_seed;
                for &c in gram {
                    hash = fnv1a_continue(hash, c.encode_utf8(&mut utf8).as_bytes());
                }
                keys.push(hash);
            }
        }
    }
    if tokens.len() >= 2 {
        // Round-trip through `acronym` so case-folding edge cases (ß → ss)
        // agree with the string form byte for byte.
        let initials = acronym(&text).to_lowercase();
        if initials.chars().count() >= 2 {
            keys.push(fnv1a_continue(acronym_seed, initials.as_bytes()));
        }
    } else if let Some(token) = tokens.first() {
        let len = token.chars().count();
        if (2..=lake_text::MAX_ACRONYM_LEN).contains(&len) {
            keys.push(fnv1a_continue(acronym_seed, token.as_bytes()));
        }
    }
    keys
}

/// Canonicalizes a candidate-pair list in place: ascending `(row, col)`
/// order with duplicates removed — the one place the planner's pair-list
/// invariant (sorted, unique, row-major) lives.  Pair coordinates must be in
/// `0..rows` / `0..cols`.
///
/// Runs as a two-pass stable counting (radix) sort in O(pairs + rows + cols)
/// — the planner's id spaces are dense, so this beats the O(pairs·log pairs)
/// comparison sort the call sites used to carry — and falls back to the
/// comparison sort when the id space dwarfs the pair list.  The output never
/// exceeds the input length (pinned by the planner regression test).
pub fn canonicalize_pairs(pairs: &mut Vec<(usize, usize)>, rows: usize, cols: usize) {
    radix_canonicalize(pairs, None, rows, cols);
}

/// As [`canonicalize_pairs`], keeping `costs` aligned with `pairs`.  Every
/// duplicate of a pair must carry the same cost (the planner measures each
/// pair's distance exactly, so re-encounters agree bit for bit); the first
/// occurrence survives.
///
/// # Panics
/// Panics (in debug builds) when `costs` is not aligned with `pairs`.
pub fn canonicalize_pairs_with_costs(
    pairs: &mut Vec<(usize, usize)>,
    costs: &mut Vec<f32>,
    rows: usize,
    cols: usize,
) {
    debug_assert_eq!(pairs.len(), costs.len(), "costs must align with pairs");
    radix_canonicalize(pairs, Some(costs), rows, cols);
}

fn radix_canonicalize(
    pairs: &mut Vec<(usize, usize)>,
    costs: Option<&mut Vec<f32>>,
    rows: usize,
    cols: usize,
) {
    let n = pairs.len();
    if n <= 1 {
        return;
    }
    if rows.saturating_add(cols) > (4 * n).saturating_add(1024) {
        // The counting arrays would dwarf the pair list; compare instead.
        match costs {
            Some(costs) => {
                let mut order: Vec<usize> = (0..n).collect();
                order.sort_unstable_by_key(|&i| pairs[i]);
                order.dedup_by_key(|i| pairs[*i]);
                let (kept_pairs, kept_costs): (Vec<_>, Vec<_>) =
                    order.into_iter().map(|i| (pairs[i], costs[i])).unzip();
                *pairs = kept_pairs;
                *costs = kept_costs;
            }
            None => {
                pairs.sort_unstable();
                pairs.dedup();
            }
        }
        return;
    }
    // LSD radix over the two coordinates: a stable counting pass by column,
    // then one by row, yields ascending (row, col) order.
    let mut by_col = vec![0usize; cols + 1];
    for &(_, c) in pairs.iter() {
        by_col[c + 1] += 1;
    }
    for i in 1..by_col.len() {
        by_col[i] += by_col[i - 1];
    }
    let mut order_by_col = vec![0usize; n];
    for (i, &(_, c)) in pairs.iter().enumerate() {
        order_by_col[by_col[c]] = i;
        by_col[c] += 1;
    }
    let mut by_row = vec![0usize; rows + 1];
    for &(r, _) in pairs.iter() {
        by_row[r + 1] += 1;
    }
    for i in 1..by_row.len() {
        by_row[i] += by_row[i - 1];
    }
    let mut order = vec![0usize; n];
    for &i in &order_by_col {
        let r = pairs[i].0;
        order[by_row[r]] = i;
        by_row[r] += 1;
    }
    // Gather in final order, dropping adjacent duplicates as they stream by.
    let mut out_pairs = Vec::with_capacity(n);
    let mut out_costs = costs.as_ref().map(|c| Vec::with_capacity(c.len()));
    for &i in &order {
        if out_pairs.last() == Some(&pairs[i]) {
            continue;
        }
        out_pairs.push(pairs[i]);
        if let (Some(out), Some(costs)) = (&mut out_costs, &costs) {
            out.push(costs[i]);
        }
    }
    *pairs = out_pairs;
    if let (Some(costs), Some(out)) = (costs, out_costs) {
        *costs = out;
    }
}

/// Merges one row's sorted duplicate-free probe candidates with its
/// (canonical, hence sorted) surface-key run into `out` — the union, sorted
/// and duplicate-free, in O(a + b).  The escalated planner calls this once
/// per row, so the two candidate channels deduplicate without ever
/// materializing a fold-wide pair list.
fn merge_sorted_cols(candidates: &[u32], keyed_run: &[(usize, usize)], out: &mut Vec<usize>) {
    debug_assert!(candidates.windows(2).all(|w| w[0] < w[1]), "probe candidates not canonical");
    debug_assert!(keyed_run.windows(2).all(|w| w[0].1 < w[1].1), "keyed run not canonical");
    out.clear();
    let (mut i, mut j) = (0usize, 0usize);
    while i < candidates.len() && j < keyed_run.len() {
        let a = candidates[i] as usize;
        let b = keyed_run[j].1;
        match a.cmp(&b) {
            std::cmp::Ordering::Less => {
                out.push(a);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend(candidates[i..].iter().map(|&c| c as usize));
    out.extend(keyed_run[j..].iter().map(|&(_, c)| c));
}

/// Merges two already-canonical (strictly ascending, duplicate-free) pair
/// lists, carrying costs alongside: `pairs`/`costs` (already
/// canonical) absorb the canonical `tail_pairs`/`tail_costs`.  Cross-list
/// duplicates keep the first list's copy — callers guarantee duplicates carry
/// the same measured cost.
fn merge_canonical_with_costs(
    pairs: &mut Vec<(usize, usize)>,
    costs: &mut Vec<f32>,
    tail_pairs: Vec<(usize, usize)>,
    tail_costs: Vec<f32>,
) {
    debug_assert!(pairs.windows(2).all(|w| w[0] < w[1]), "base merge input is not canonical");
    debug_assert!(tail_pairs.windows(2).all(|w| w[0] < w[1]), "tail merge input is not canonical");
    debug_assert_eq!(pairs.len(), costs.len());
    debug_assert_eq!(tail_pairs.len(), tail_costs.len());
    if tail_pairs.is_empty() {
        return;
    }
    let mut out_pairs = Vec::with_capacity(pairs.len() + tail_pairs.len());
    let mut out_costs = Vec::with_capacity(pairs.len() + tail_pairs.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < pairs.len() && j < tail_pairs.len() {
        match pairs[i].cmp(&tail_pairs[j]) {
            std::cmp::Ordering::Less => {
                out_pairs.push(pairs[i]);
                out_costs.push(costs[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out_pairs.push(tail_pairs[j]);
                out_costs.push(tail_costs[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out_pairs.push(pairs[i]);
                out_costs.push(costs[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out_pairs.extend_from_slice(&pairs[i..]);
    out_costs.extend_from_slice(&costs[i..]);
    out_pairs.extend_from_slice(&tail_pairs[j..]);
    out_costs.extend_from_slice(&tail_costs[j..]);
    *pairs = out_pairs;
    *costs = out_costs;
}

/// Plans the blocks of one bipartite matching step.
///
/// Under [`BlockingPolicy::Exhaustive`] — or a keyed policy whose
/// `min_blocked_pairs` floor exceeds the candidate space — the plan is a
/// single cartesian block and nothing is pruned.  A keyed policy dispatches
/// on its [`SemanticBlocking`] channel: `Off`/`SimHash` run the key-bucket
/// planner over `input`'s key slices (SimHash band keys are derived from the
/// embeddings internally), `ExactBelow` runs the exact distance sweep over
/// the embedding slices — or, for folds at or above the policy's
/// [`EscalationPolicy`](crate::config::EscalationPolicy) threshold, the
/// sub-quadratic ANN tier.
///
/// ```
/// use fuzzy_fd_core::{plan_blocks, BlockingPolicy, FoldInputs};
/// use lake_embed::Vector;
///
/// // Two well-separated clusters: each row is near exactly one column.
/// let (a, b) = (Vector::new(vec![1.0, 0.0]), Vector::new(vec![0.0, 1.0]));
/// let input = FoldInputs {
///     row_embeddings: &[&a, &b],
///     col_embeddings: &[&a, &b],
///     theta: 0.5,
///     ..FoldInputs::default()
/// };
/// let plan = plan_blocks(&input, &BlockingPolicy::default().force_blocked());
/// assert_eq!(plan.blocks.len(), 2); // one independent sub-problem per cluster
/// assert_eq!(plan.stats.pruned_pairs, 2); // the cross-cluster pairs
/// ```
pub fn plan_blocks(input: &FoldInputs<'_>, policy: &BlockingPolicy) -> BlockPlan {
    let rows = input.rows();
    let cols = input.cols();
    let total_pairs = rows * cols;
    let keyed = match policy {
        BlockingPolicy::Exhaustive => return plan_cartesian(rows, cols),
        BlockingPolicy::Keyed(keyed) if total_pairs < keyed.min_blocked_pairs => {
            return plan_cartesian(rows, cols);
        }
        BlockingPolicy::Keyed(keyed) => keyed,
    };
    match keyed.semantic {
        SemanticBlocking::ExactBelow { slack } => {
            let cutoff = input.theta + slack;
            if keyed.escalation.applies_to(rows, cols) {
                plan_escalated(input, cutoff, keyed)
            } else {
                plan_exact(input, cutoff, keyed.max_component_cells)
            }
        }
        SemanticBlocking::Off | SemanticBlocking::SimHash { .. } => plan_by_keys(input, keyed),
    }
}

/// The exact sub-threshold planner: the fold's embeddings are packed into
/// [`QuantizedSlab`]s and one cache-blocked kernel sweep
/// ([`kernel::sweep_below`]) classifies every (row, col) pair — int8
/// estimates prove most pairs above `cutoff`, the near-threshold band is
/// re-scored in exact f32, and surviving pairs carry their exact distance
/// into the blocks, bit-identical to a dense f32 sweep.  *Candidacy* at the
/// matching threshold is exact by construction; when a component exceeds
/// `max_component_cells` the splitter may still sever candidate edges
/// (each one recorded as a [`CutEdge`]), so end-to-end recall is exact
/// whenever no component is oversized.
fn plan_exact(input: &FoldInputs<'_>, cutoff: f32, max_component_cells: usize) -> BlockPlan {
    let watch = Stopwatch::start();
    let rows = input.row_embeddings.len();
    let cols = input.col_embeddings.len();
    let ((row_slab, col_slab), hash_time) = Stopwatch::time(|| {
        (
            QuantizedSlab::from_vectors(input.row_embeddings),
            QuantizedSlab::from_vectors(input.col_embeddings),
        )
    });
    let mut kernel_stats = KernelStats::default();
    let ((pairs, costs), score_time) =
        Stopwatch::time(|| kernel::sweep_below(&row_slab, &col_slab, cutoff, &mut kernel_stats));
    let (mut plan, assemble_time) = Stopwatch::time(|| {
        assemble_components_split(rows, cols, pairs, costs, max_component_cells)
    });
    plan.stats.scored_pairs = rows * cols;
    plan.stats.kernel = kernel_stats;
    plan.stats.phase.hash = hash_time;
    plan.stats.phase.score = score_time;
    plan.stats.phase.pairs = assemble_time;
    plan.stats.phase.total = watch.total();
    plan
}

/// The escalated (ANN) planner: the fold's column embeddings are indexed
/// once under SimHash multi-probe buckets, every row embedding retrieves its
/// colliding columns, and the union of collisions and surface-key candidate
/// pairs is re-scored exactly against `cutoff`.  Sub-quadratic — only the
/// probed union is scored — but probabilistically incomplete: a sub-cutoff
/// pair can be missed when its signature disagreements all carry large
/// margins and it shares no usable surface key.
///
/// Two repairs bound the incompleteness:
///
/// * every candidate that survives *is* exact — distances come from real
///   dot products, never from the sketch;
/// * a row or column left without any *matchable* candidate (below θ — a
///   candidate in the slack band `[θ, θ + slack)` can only influence the
///   solver, never become a match) is swept exactly against the whole other
///   side before being given up on.  A participant can therefore only
///   deviate from the exact sweep's result if the index supplied at least
///   one genuine alternative for it.
fn plan_escalated(input: &FoldInputs<'_>, cutoff: f32, keyed: &KeyedBlockingConfig) -> BlockPlan {
    let watch = Stopwatch::start();
    let rows = input.row_embeddings.len();
    let cols = input.col_embeddings.len();
    let mut phase = PhaseTimings::default();

    // One pair of quantized slabs serves the whole tier: the column slab
    // feeds the batch-signed ANN index (`build_from_slab` signs every row in
    // one slab-resident sweep) and both slabs feed the exact re-scoring
    // kernel below, so the fold's embeddings are packed exactly once.
    let ((row_slab, col_slab, index), hash_time) = Stopwatch::time(|| {
        let row_slab = QuantizedSlab::from_vectors(input.row_embeddings);
        let col_slab = QuantizedSlab::from_vectors(input.col_embeddings);
        let index = AnnIndex::build_from_slab(keyed.escalation.ann, &col_slab);
        (row_slab, col_slab, index)
    });
    phase.hash = hash_time;

    // The surface-key channel is sub-quadratic by construction and catches
    // the shared-token/typo pairs the probabilistic index is most likely to
    // drop, so its candidates ride along for free.
    let (keyed_pairs, keyed_time) = Stopwatch::time(|| keyed_pair_set(input, keyed));
    phase.pairs = keyed_time;

    // All re-scoring below goes through the quantized kernel: the int8 tier
    // proves most candidates above `cutoff` and only the near-threshold band
    // pays for an exact f32 dot product — with results bit-identical to the
    // dense distance closure this code used to carry.
    //
    // Probing, channel union and scoring run fused, one row at a time: the
    // row's probe candidates and its (canonical, row-grouped) surface-key run
    // merge into one sorted column list that feeds straight into the batched
    // kernel entry point — no fold-wide pair list is ever materialized, and
    // deduplicating the two channels is a linear per-row merge.
    let mut kernel_stats = KernelStats::default();
    let mut scored = 0usize;
    let theta = input.theta;
    let mut kept: Vec<(usize, usize)> = Vec::new();
    let mut costs: Vec<f32> = Vec::new();
    let mut row_live = vec![false; rows];
    let mut col_live = vec![false; cols];
    {
        let mut ann_scratch = AnnScratch::default();
        let mut candidates: Vec<u32> = Vec::new();
        let mut merged_cols: Vec<usize> = Vec::new();
        let mut keyed_at = 0usize;
        for (r, row) in input.row_embeddings.iter().enumerate() {
            let ((), probe_time) = Stopwatch::time(|| {
                index.candidates_with(row, &mut ann_scratch, &mut candidates);
            });
            phase.probe += probe_time;
            let keyed_start = keyed_at;
            while keyed_at < keyed_pairs.len() && keyed_pairs[keyed_at].0 == r {
                keyed_at += 1;
            }
            let ((), dedup_time) = Stopwatch::time(|| {
                merge_sorted_cols(
                    &candidates,
                    &keyed_pairs[keyed_start..keyed_at],
                    &mut merged_cols,
                );
            });
            phase.dedup += dedup_time;
            scored += merged_cols.len();
            let ((), score_time) = Stopwatch::time(|| {
                let mut live = false;
                kernel::row_distances_below(
                    &row_slab,
                    r,
                    &col_slab,
                    merged_cols.iter().copied(),
                    cutoff,
                    &mut kernel_stats,
                    |c, d| {
                        kept.push((r, c));
                        costs.push(d);
                        live |= d < theta;
                        col_live[c] |= d < theta;
                    },
                );
                row_live[r] = live;
            });
            phase.score += score_time;
        }
    }

    // Fallback sweeps: a column value with no *matchable* candidate (below
    // θ; slack-band candidates only steer the solver) is exactly swept
    // against every group, and vice versa for rows, before the plan declares
    // it unmatchable.  This is what keeps the tier faithful for participants
    // the sketch is blind to; it degrades to the exact sweep's own cost only
    // in the pathological fold where nothing is matchable at all.
    let fallback_start = kept.len();
    let ((), fallback_time) = Stopwatch::time(|| {
        let swept_cols: Vec<bool> = col_live.iter().map(|&live| !live).collect();
        let unswept_cols = cols - swept_cols.iter().filter(|&&swept| swept).count();
        for (c, &swept) in swept_cols.iter().enumerate() {
            if !swept {
                continue;
            }
            scored += rows;
            for (r, live) in row_live.iter_mut().enumerate() {
                if let Some(d) =
                    kernel::distance_below(&row_slab, r, &col_slab, c, cutoff, &mut kernel_stats)
                {
                    kept.push((r, c));
                    costs.push(d);
                    *live |= d < theta;
                }
            }
        }
        for (r, &live) in row_live.iter().enumerate() {
            if live {
                continue;
            }
            // Columns swept above are already fully scored against every
            // row, including this one — only the others need a look.
            for (c, &already_swept) in swept_cols.iter().enumerate() {
                if !already_swept {
                    if let Some(d) = kernel::distance_below(
                        &row_slab,
                        r,
                        &col_slab,
                        c,
                        cutoff,
                        &mut kernel_stats,
                    ) {
                        kept.push((r, c));
                        costs.push(d);
                    }
                }
            }
            scored += unswept_cols;
        }
    });
    phase.fallback = fallback_time;

    // A sweep can revisit a slack-band pair the probing already kept (slack
    // candidates do not make their participants live); duplicates carry the
    // same measured distance, so either copy may survive.  The pre-fallback
    // prefix of `kept` is a filtered subsequence of the canonical pair list
    // and therefore still canonical — only the fallback suffix needs sorting
    // before a linear merge folds it in.
    let ((), sweep_dedup_time) = Stopwatch::time(|| {
        if kept.len() > fallback_start {
            let mut tail_pairs = kept.split_off(fallback_start);
            let mut tail_costs = costs.split_off(fallback_start);
            canonicalize_pairs_with_costs(&mut tail_pairs, &mut tail_costs, rows, cols);
            merge_canonical_with_costs(&mut kept, &mut costs, tail_pairs, tail_costs);
        }
    });
    phase.dedup += sweep_dedup_time;

    let (mut plan, assemble_time) = Stopwatch::time(|| {
        assemble_components_split(rows, cols, kept, costs, keyed.max_component_cells)
    });
    phase.pairs += assemble_time;
    plan.stats.scored_pairs = scored;
    plan.stats.escalated_folds = 1;
    plan.stats.kernel = kernel_stats;
    phase.total = watch.total();
    plan.stats.phase = phase;
    plan
}

/// The key-bucket planner: rows and columns sharing a usable key become
/// candidate pairs.
fn plan_by_keys(input: &FoldInputs<'_>, keyed: &KeyedBlockingConfig) -> BlockPlan {
    let watch = Stopwatch::start();
    let rows = input.rows();
    let cols = input.cols();
    let (pairs, pairs_time) = Stopwatch::time(|| keyed_pair_set(input, keyed));
    let (mut plan, assemble_time) =
        Stopwatch::time(|| assemble_components(rows, cols, pairs, None));
    // Key-channel candidates carry no cost, so the solver scores each one.
    plan.stats.scored_pairs = plan.stats.candidate_pairs;
    plan.stats.phase.pairs = pairs_time + assemble_time;
    plan.stats.phase.total = watch.total();
    plan
}

/// The sorted, duplicate-free candidate pairs of the surface-key channel
/// (plus SimHash band keys when the semantic channel asks for them).
fn keyed_pair_set(input: &FoldInputs<'_>, keyed: &KeyedBlockingConfig) -> Vec<(usize, usize)> {
    let rows = input.rows();
    let cols = input.cols();
    let total_pairs = rows * cols;

    // SimHash band keys are derived here so callers only supply embeddings.
    let dim =
        input.row_embeddings.first().or(input.col_embeddings.first()).map(|e| e.dim()).unwrap_or(0);
    let hasher = embedding_hasher(&keyed.semantic, dim);
    let band_bits = match keyed.semantic {
        SemanticBlocking::SimHash { band_bits, .. } => band_bits,
        _ => 0,
    };
    let bucket_keys = |embedding: Option<&&Vector>, keys: &mut Vec<(u64, u32)>, node: u32| {
        if let (Some(hasher), Some(embedding)) = (&hasher, embedding) {
            // One signature, then a shift/mask per band: hash-identical to
            // mapping `band_buckets` through `band_bucket_key`, with no
            // per-vector Vec (or String) allocation.
            let signature = hasher.signature(embedding);
            let mask = if band_bits >= 64 { u64::MAX } else { (1u64 << band_bits) - 1 };
            keys.extend((0..hasher.bits() / band_bits).map(|band| {
                (band_bucket_key(band, (signature >> (band * band_bits)) & mask), node)
            }));
        }
    };

    // Bucket rows and columns by key — sort-based grouping of (key, node)
    // entries instead of a hash map, which keeps the hot path allocation-free
    // — then emit every cross-side combination of each usable bucket as a
    // candidate pair.  Buckets bigger than the cap are uninformative
    // ("the"-style keys) and skipped entirely.  A bitmap over the candidate
    // space dedups pairs reachable through several shared keys (it costs one
    // bit per cartesian pair, which is fine for any space worth blocking; a
    // keyed map takes over for astronomically large folds).
    let mut entries: Vec<(u64, u32)> = Vec::with_capacity(
        input.row_keys.iter().map(Vec::len).sum::<usize>()
            + input.col_keys.iter().map(Vec::len).sum::<usize>(),
    );
    for (i, keys) in input.row_keys.iter().enumerate() {
        entries.extend(keys.iter().map(|&k| (k, i as u32)));
    }
    for i in 0..rows {
        bucket_keys(input.row_embeddings.get(i), &mut entries, i as u32);
    }
    for (j, keys) in input.col_keys.iter().enumerate() {
        entries.extend(keys.iter().map(|&k| (k, (rows + j) as u32)));
    }
    for j in 0..cols {
        bucket_keys(input.col_embeddings.get(j), &mut entries, (rows + j) as u32);
    }
    entries.sort_unstable();
    entries.dedup();

    const BITMAP_CAP: usize = 1 << 24; // 2 MiB of bits
    let mut bitmap: Vec<u64> =
        if total_pairs <= BITMAP_CAP { vec![0u64; total_pairs.div_ceil(64)] } else { Vec::new() };
    let mut seen: KeyMap<()> = KeyMap::default();
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    let mut start = 0;
    while start < entries.len() {
        let key = entries[start].0;
        let mut end = start;
        while end < entries.len() && entries[end].0 == key {
            end += 1;
        }
        let bucket = &entries[start..end];
        start = end;
        // Nodes in a run are sorted, so rows come before columns.
        let split = bucket.partition_point(|&(_, node)| (node as usize) < rows);
        let (bucket_rows, bucket_cols) = bucket.split_at(split);
        if bucket_rows.is_empty() || bucket_cols.is_empty() {
            continue;
        }
        if bucket.len() > keyed.max_key_bucket {
            continue;
        }
        for &(_, r) in bucket_rows {
            for &(_, c) in bucket_cols {
                let (r, c) = (r as usize, c as usize - rows);
                let flat = r * cols + c;
                let fresh = if bitmap.is_empty() {
                    seen.insert(flat as u64, ()).is_none()
                } else {
                    let (word, bit) = (flat / 64, flat % 64);
                    let fresh = bitmap[word] & (1 << bit) == 0;
                    bitmap[word] |= 1 << bit;
                    fresh
                };
                if fresh {
                    pairs.push((r, c));
                }
            }
        }
    }
    // The bitmap/map already deduplicated; canonicalization radix-sorts.
    canonicalize_pairs(&mut pairs, rows, cols);
    pairs
}

/// As [`assemble_components`], but splitting oversized connected components
/// first (cost-carrying channels only — splitting needs edge distances).
///
/// Components whose cost matrix would exceed `max_component_cells` cells are
/// rebuilt Kruskal-style: edges re-join components in order of increasing
/// distance, and an edge that would merge two clusters past the cap is
/// severed instead (an edge *inside* a cluster is always kept — it only
/// unmasks a cell that is already being paid for).  Severing keeps the
/// strongest links and cuts the weakest ones, which on real folds are
/// overwhelmingly slack-band edges (distance ≥ θ) that post-solve
/// thresholding would reject anyway; every cut is recorded as a [`CutEdge`]
/// so that claim is verifiable after the fact.
fn assemble_components_split(
    rows: usize,
    cols: usize,
    pairs: Vec<(usize, usize)>,
    costs: Vec<f32>,
    max_component_cells: usize,
) -> BlockPlan {
    // Cheap pre-pass: splitting is a no-op unless some component is actually
    // oversized.
    let mut parent: Vec<usize> = (0..rows + cols).collect();
    for &(r, c) in &pairs {
        union(&mut parent, r, rows + c);
    }
    let mut row_count = vec![0usize; rows + cols];
    let mut col_count = vec![0usize; rows + cols];
    for node in 0..rows + cols {
        let root = find(&mut parent, node);
        if node < rows {
            row_count[root] += 1;
        } else {
            col_count[root] += 1;
        }
    }
    let oversized = (0..rows + cols)
        .filter(|&node| {
            parent[node] == node && row_count[node] * col_count[node] > max_component_cells
        })
        .count();
    if oversized == 0 {
        return assemble_components(rows, cols, pairs, Some(costs));
    }

    // Kruskal rebuild: strongest (smallest-distance) edges first, capped
    // cluster sizes.  Ties break on the pair itself for determinism — the
    // pair list arrives canonical (strictly ascending), so the index is the
    // pair order and the whole sort key packs into one u64 (total-order cost
    // bits high, index low), sorted without a comparator closure.
    debug_assert!(
        pairs.windows(2).all(|w| w[0] < w[1]),
        "assemble_components_split needs a canonical pair list"
    );
    let order: Vec<usize> = if pairs.len() <= u32::MAX as usize {
        let mut packed: Vec<u64> = costs
            .iter()
            .enumerate()
            .map(|(idx, &cost)| ((total_order_bits(cost) as u64) << 32) | idx as u64)
            .collect();
        packed.sort_unstable();
        packed.into_iter().map(|key| (key & u32::MAX as u64) as usize).collect()
    } else {
        let mut order: Vec<usize> = (0..pairs.len()).collect();
        order.sort_by(|&a, &b| costs[a].total_cmp(&costs[b]).then_with(|| pairs[a].cmp(&pairs[b])));
        order
    };
    let mut parent: Vec<usize> = (0..rows + cols).collect();
    let mut row_count = vec![0usize; rows + cols];
    let mut col_count = vec![0usize; rows + cols];
    row_count[..rows].fill(1);
    col_count[rows..].fill(1);
    let mut kept = vec![false; pairs.len()];
    for idx in order {
        let (r, c) = pairs[idx];
        let (ra, rb) = (find(&mut parent, r), find(&mut parent, rows + c));
        if ra == rb {
            kept[idx] = true;
            continue;
        }
        let merged_rows = row_count[ra] + row_count[rb];
        let merged_cols = col_count[ra] + col_count[rb];
        if merged_rows * merged_cols <= max_component_cells {
            union(&mut parent, r, rows + c);
            let root = find(&mut parent, r);
            row_count[root] = merged_rows;
            col_count[root] = merged_cols;
            kept[idx] = true;
        }
    }
    // Severed edges read back out of the kept bitmap in index order — the
    // pair list is canonical, so they come out already sorted by (row, col)
    // and the old post-hoc sort disappears.
    let cut_edges: Vec<CutEdge> = kept
        .iter()
        .enumerate()
        .filter(|&(_, &keep)| !keep)
        .map(|(idx, _)| CutEdge { row: pairs[idx].0, col: pairs[idx].1, distance: costs[idx] })
        .collect();

    // Compact the kept edges in place (the lists are ours to reuse), then
    // hand the Kruskal union-find over directly: it unioned exactly the kept
    // edges, so it already is the component structure of the kept pairs, and
    // roots are the minimum node of each component by construction, so block
    // order is unaffected.
    let mut pairs = pairs;
    let mut costs = costs;
    let mut write = 0usize;
    for idx in 0..pairs.len() {
        if kept[idx] {
            pairs[write] = pairs[idx];
            costs[write] = costs[idx];
            write += 1;
        }
    }
    pairs.truncate(write);
    costs.truncate(write);
    let mut plan = assemble_from_parent(rows, cols, pairs, Some(costs), parent);
    plan.stats.split_components = oversized;
    plan.stats.severed_pairs = cut_edges.len();
    plan.cut_edges = cut_edges;
    plan
}

/// Builds the block plan from a sorted candidate-pair list: connected
/// components of the candidate graph are independent sub-problems (they
/// share no row and no column).  `costs`, when given, must align with
/// `pairs` and is scattered onto the blocks.
fn assemble_components(
    rows: usize,
    cols: usize,
    pairs: Vec<(usize, usize)>,
    costs: Option<Vec<f32>>,
) -> BlockPlan {
    // Union-find over rows (nodes 0..rows) and columns (rows..rows+cols).
    let mut parent: Vec<usize> = (0..rows + cols).collect();
    for &(r, c) in &pairs {
        union(&mut parent, r, rows + c);
    }
    assemble_from_parent(rows, cols, pairs, costs, parent)
}

/// [`assemble_components`] with the union-find already built — callers that
/// ran a union pass over exactly these pairs (the Kruskal splitter) skip the
/// rebuild.
fn assemble_from_parent(
    rows: usize,
    cols: usize,
    pairs: Vec<(usize, usize)>,
    costs: Option<Vec<f32>>,
    mut parent: Vec<usize>,
) -> BlockPlan {
    // Gather components in node order for determinism; nodes in no candidate
    // pair form one-sided components and are dropped below.  Roots index a
    // plain vector (sentinel = unseen) — the pair scatter below does one
    // lookup per pair, which a hash map would turn into the hottest line of
    // plan assembly.
    let with_costs = costs.is_some();
    const UNSEEN: usize = usize::MAX;
    let mut component_of_root: Vec<usize> = vec![UNSEEN; rows + cols];
    let mut blocks: Vec<Block> = Vec::new();
    for node in 0..rows + cols {
        let root = find(&mut parent, node);
        if component_of_root[root] == UNSEEN {
            component_of_root[root] = blocks.len();
            blocks.push(Block {
                rows: Vec::new(),
                cols: Vec::new(),
                pairs: Some(Vec::new()),
                costs: with_costs.then(Vec::new),
            });
        }
        let idx = component_of_root[root];
        if node < rows {
            blocks[idx].rows.push(node);
        } else {
            blocks[idx].cols.push(node - rows);
        }
    }
    let costs = costs.unwrap_or_default();
    for (idx, (r, c)) in pairs.into_iter().enumerate() {
        let root = find(&mut parent, r);
        let block = &mut blocks[component_of_root[root]];
        if let Some(block_pairs) = &mut block.pairs {
            block_pairs.push((r, c));
        }
        if let Some(block_costs) = &mut block.costs {
            block_costs.push(costs[idx]);
        }
    }
    // Blocks missing one side generate no pairs; drop them.
    blocks.retain(|b| !b.rows.is_empty() && !b.cols.is_empty());

    let candidate_pairs: usize = blocks.iter().map(Block::pair_count).sum();
    let stats = BlockingStats {
        folds: 1,
        blocks: blocks.len(),
        candidate_pairs,
        pruned_pairs: rows * cols - candidate_pairs,
        max_block_size: blocks.iter().map(Block::size).max().unwrap_or(0),
        ..BlockingStats::default()
    };
    BlockPlan { blocks, cut_edges: Vec::new(), stats }
}

/// The plan of a cartesian (unblocked) step: one dense block covering every
/// (row, col) combination, nothing pruned.  This is what
/// [`BlockingPolicy::Exhaustive`] and the `min_blocked_pairs` floor resolve
/// to; exposed so callers that already know a fold is cartesian can skip
/// [`plan_blocks`]' input assembly entirely.
///
/// Degenerate shapes are legal: a `0 × n` (or `n × 0`, or `0 × 0`) step has
/// an empty candidate space, so the plan holds no block at all and every
/// counter is zero.
///
/// ```
/// use fuzzy_fd_core::plan_cartesian;
///
/// let plan = plan_cartesian(2, 3);
/// assert_eq!(plan.blocks.len(), 1);
/// assert_eq!(plan.stats.candidate_pairs, 6);
/// assert!(plan_cartesian(0, 3).blocks.is_empty());
/// ```
pub fn plan_cartesian(rows: usize, cols: usize) -> BlockPlan {
    let mut blocks = Vec::new();
    if rows > 0 && cols > 0 {
        blocks.push(Block {
            rows: (0..rows).collect(),
            cols: (0..cols).collect(),
            pairs: None,
            costs: None,
        });
    }
    let stats = BlockingStats {
        folds: 1,
        blocks: blocks.len(),
        candidate_pairs: rows * cols,
        scored_pairs: rows * cols,
        pruned_pairs: 0,
        max_block_size: blocks.first().map(Block::size).unwrap_or(0),
        ..BlockingStats::default()
    };
    BlockPlan { blocks, cut_edges: Vec::new(), stats }
}

/// Monotone map from [`f32::total_cmp`] order onto unsigned integer order:
/// negative floats flip every bit, non-negatives flip the sign bit.  Lets a
/// cost ride in the high half of a packed `u64` sort key.
fn total_order_bits(cost: f32) -> u32 {
    let bits = cost.to_bits();
    if bits & 0x8000_0000 != 0 {
        !bits
    } else {
        bits ^ 0x8000_0000
    }
}

fn find(parent: &mut [usize], node: usize) -> usize {
    let mut root = node;
    while parent[root] != root {
        root = parent[root];
    }
    // Path compression.
    let mut current = node;
    while parent[current] != root {
        let next = parent[current];
        parent[current] = root;
        current = next;
    }
    root
}

fn union(parent: &mut [usize], a: usize, b: usize) {
    let ra = find(parent, a);
    let rb = find(parent, b);
    if ra != rb {
        // Attach the larger root under the smaller one so component roots —
        // and with them block order — stay deterministic.
        let (lo, hi) = (ra.min(rb), ra.max(rb));
        parent[hi] = lo;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(strs: &[&str]) -> Vec<Vec<u64>> {
        strs.iter().map(|s| hashed_keys(&value_block_keys(s))).collect()
    }

    fn keyed(max_key_bucket: usize) -> BlockingPolicy {
        BlockingPolicy::Keyed(KeyedBlockingConfig {
            max_key_bucket,
            semantic: SemanticBlocking::Off,
            min_blocked_pairs: 0,
            ..KeyedBlockingConfig::default()
        })
    }

    fn plan_keys(rows: &[Vec<u64>], cols: &[Vec<u64>], policy: &BlockingPolicy) -> BlockPlan {
        let input = FoldInputs { row_keys: rows, col_keys: cols, ..FoldInputs::default() };
        plan_blocks(&input, policy)
    }

    #[test]
    fn exhaustive_policy_yields_one_cartesian_block() {
        let rows = keys(&["Berlin", "Toronto"]);
        let cols = keys(&["Boston", "Quito", "Lima"]);
        let plan = plan_keys(&rows, &cols, &BlockingPolicy::Exhaustive);
        assert_eq!(plan.blocks.len(), 1);
        assert_eq!(plan.blocks[0].rows, vec![0, 1]);
        assert_eq!(plan.blocks[0].cols, vec![0, 1, 2]);
        assert_eq!(plan.stats.pruned_pairs, 0);
        assert_eq!(plan.stats.candidate_pairs, 6);
    }

    #[test]
    fn min_blocked_pairs_floor_falls_back_to_cartesian() {
        let rows = keys(&["Berlin"]);
        let cols = keys(&["Toronto"]);
        let policy = BlockingPolicy::Keyed(KeyedBlockingConfig {
            min_blocked_pairs: 100,
            ..KeyedBlockingConfig::default()
        });
        let plan = plan_keys(&rows, &cols, &policy);
        assert_eq!(plan.blocks.len(), 1);
        assert_eq!(plan.stats.pruned_pairs, 0);
    }

    #[test]
    fn disjoint_surfaces_split_into_independent_blocks() {
        let rows = keys(&["Berlin", "Toronto"]);
        let cols = keys(&["Berlinn", "Torontoo"]);
        let plan = plan_keys(&rows, &cols, &keyed(64));
        assert_eq!(plan.blocks.len(), 2);
        assert_eq!(plan.blocks[0].rows, vec![0]);
        assert_eq!(plan.blocks[0].cols, vec![0]);
        assert_eq!(plan.blocks[1].rows, vec![1]);
        assert_eq!(plan.blocks[1].cols, vec![1]);
        assert_eq!(plan.stats.candidate_pairs, 2);
        assert_eq!(plan.stats.pruned_pairs, 2);
        assert_eq!(plan.stats.max_block_size, 2);
    }

    #[test]
    fn unmatched_values_appear_in_no_block() {
        let rows = keys(&["Berlin"]);
        let cols = keys(&["Berlinn", "Zanzibar"]);
        let plan = plan_keys(&rows, &cols, &keyed(64));
        assert_eq!(plan.blocks.len(), 1);
        assert_eq!(plan.blocks[0].cols, vec![0]);
        assert_eq!(plan.stats.pruned_pairs, 1);
    }

    #[test]
    fn oversized_key_buckets_are_ignored() {
        // Every value shares the token "city", but the bucket cap is too
        // small for that key to be usable, so nothing connects.
        let rows = keys(&["city alpha", "city beta"]);
        let cols = keys(&["city gamma", "city delta"]);
        let plan = plan_keys(&rows, &cols, &keyed(3));
        assert!(plan.blocks.is_empty(), "{plan:?}");
        assert_eq!(plan.stats.pruned_pairs, 4);
        // With a generous cap the shared token glues everything together.
        let glued = plan_keys(&rows, &cols, &keyed(64));
        assert_eq!(glued.blocks.len(), 1);
        assert_eq!(glued.stats.max_block_size, 4);
    }

    #[test]
    fn acronym_keys_bridge_initialisms() {
        let rows = keys(&["United Nations"]);
        let cols = keys(&["UN"]);
        let plan = plan_keys(&rows, &cols, &keyed(64));
        assert_eq!(plan.blocks.len(), 1);
        assert_eq!(plan.stats.candidate_pairs, 1);
    }

    #[test]
    fn empty_inputs_plan_no_blocks() {
        let plan = plan_keys(&[], &[], &keyed(64));
        assert!(plan.blocks.is_empty());
        assert_eq!(plan.stats.candidate_pairs, 0);
        let plan = plan_keys(&keys(&["Berlin"]), &[], &BlockingPolicy::Exhaustive);
        assert!(plan.blocks.is_empty());
    }

    #[test]
    fn blocks_partition_rows_and_cols() {
        let rows = keys(&["alpha one", "beta two", "gamma three", "alpha four"]);
        let cols = keys(&["alpha", "beta", "delta", "gamma"]);
        let plan = plan_keys(&rows, &cols, &keyed(64));
        let mut seen_rows = BTreeSet::new();
        let mut seen_cols = BTreeSet::new();
        for block in &plan.blocks {
            for r in &block.rows {
                assert!(seen_rows.insert(*r), "row {r} in two blocks");
            }
            for c in &block.cols {
                assert!(seen_cols.insert(*c), "col {c} in two blocks");
            }
        }
        let total: usize = plan.blocks.iter().map(Block::pair_count).sum();
        assert_eq!(total, plan.stats.candidate_pairs);
        assert_eq!(plan.stats.candidate_pairs + plan.stats.pruned_pairs, 16);
    }

    #[test]
    fn allocation_free_hashing_matches_the_string_keys() {
        for value in [
            "Berlin",
            "New Delhi",
            "United Nations",
            "UN",
            "U.S.",
            "Zürich",
            "a",
            "",
            "Jean-Luc  Picard!",
            "rock-n-roll 42",
            "xy",
            "東",
            "東 京都",
        ] {
            let via_strings: BTreeSet<u64> =
                hashed_keys(&value_block_keys(value)).into_iter().collect();
            let direct: BTreeSet<u64> = hashed_value_block_keys(value).into_iter().collect();
            assert_eq!(via_strings, direct, "hash mismatch for {value:?}");
        }
    }

    #[test]
    fn hashed_keys_are_stable_and_distinct_per_namespace() {
        assert_eq!(hash_key("t:berlin"), hash_key("t:berlin"));
        assert_ne!(hash_key("t:berlin"), hash_key("g:berlin"));
        assert_ne!(band_bucket_key(0, 3), band_bucket_key(1, 3));
        assert_ne!(band_bucket_key(0, 3), band_bucket_key(0, 4));
        assert_eq!(band_bucket_key(2, 7), band_bucket_key(2, 7));
    }

    #[test]
    fn embedding_bucket_keys_match_the_hasher() {
        let semantic = SemanticBlocking::simhash_default();
        let SemanticBlocking::SimHash { bands, band_bits } = semantic else { unreachable!() };
        let embedding = Vector::new((0..16).map(|i| (i as f32).sin()).collect());
        let via_helper = embedding_bucket_keys(&semantic, &embedding);
        let hasher = embedding_hasher(&semantic, embedding.dim()).unwrap();
        let via_hasher: Vec<u64> = hasher
            .band_buckets(&embedding, band_bits)
            .into_iter()
            .enumerate()
            .map(|(band, bucket)| band_bucket_key(band, bucket))
            .collect();
        assert_eq!(via_helper, via_hasher);
        assert_eq!(via_helper.len(), bands);
        // The non-SimHash channels produce no band keys and no hasher.
        for other in [SemanticBlocking::Off, SemanticBlocking::ExactBelow { slack: 0.0 }] {
            assert!(embedding_bucket_keys(&other, &embedding).is_empty());
            assert!(embedding_hasher(&other, embedding.dim()).is_none());
        }
    }

    #[test]
    fn exact_channel_blocks_on_sub_threshold_distances() {
        // Two orthogonal-ish clusters: e0/e1 close to each other, e2/e3 close
        // to each other, cross-cluster pairs far.
        let near = |base: f32| Vector::new(vec![base, 1.0 - base, 0.0, 0.0]);
        let far = |base: f32| Vector::new(vec![0.0, 0.0, base, 1.0 - base]);
        let (r0, r1) = (near(0.45), far(0.45));
        let (c0, c1) = (near(0.55), far(0.55));
        let input = FoldInputs {
            row_embeddings: &[&r0, &r1],
            col_embeddings: &[&c0, &c1],
            theta: 0.5,
            ..FoldInputs::default()
        };
        let policy = BlockingPolicy::Keyed(KeyedBlockingConfig {
            semantic: SemanticBlocking::ExactBelow { slack: 0.0 },
            min_blocked_pairs: 0,
            ..KeyedBlockingConfig::default()
        });
        let plan = plan_blocks(&input, &policy);
        assert_eq!(plan.blocks.len(), 2, "{plan:?}");
        assert_eq!(plan.stats.candidate_pairs, 2);
        assert_eq!(plan.stats.pruned_pairs, 2);
        // Each candidate pair carries its measured distance, below θ.
        for block in &plan.blocks {
            let costs = block.costs.as_ref().expect("exact plans carry costs");
            assert_eq!(costs.len(), block.pairs.as_ref().unwrap().len());
            assert!(costs.iter().all(|&c| c < 0.5), "{costs:?}");
        }
        // A generous slack admits the cross-cluster pairs too and glues the
        // fold into one block.
        let loose = BlockingPolicy::Keyed(KeyedBlockingConfig {
            semantic: SemanticBlocking::ExactBelow { slack: 1.5 },
            min_blocked_pairs: 0,
            ..KeyedBlockingConfig::default()
        });
        let glued = plan_blocks(&input, &loose);
        assert_eq!(glued.blocks.len(), 1);
        assert_eq!(glued.stats.pruned_pairs, 0);
    }

    #[test]
    #[should_panic(expected = "SimHash signature must fit")]
    fn oversized_simhash_config_is_rejected_early() {
        embedding_hasher(&SemanticBlocking::SimHash { bands: 16, band_bits: 8 }, 8);
    }

    #[test]
    #[should_panic(expected = "at least one band")]
    fn zero_band_simhash_config_is_rejected() {
        embedding_hasher(&SemanticBlocking::SimHash { bands: 0, band_bits: 8 }, 8);
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut acc = BlockingStats::default();
        acc.merge(&BlockingStats {
            folds: 1,
            blocks: 2,
            candidate_pairs: 10,
            pruned_pairs: 90,
            max_block_size: 5,
            ..BlockingStats::default()
        });
        acc.merge(&BlockingStats {
            folds: 1,
            blocks: 1,
            candidate_pairs: 20,
            pruned_pairs: 0,
            max_block_size: 9,
            ..BlockingStats::default()
        });
        assert_eq!(acc.folds, 2);
        assert_eq!(acc.blocks, 3);
        assert_eq!(acc.candidate_pairs, 30);
        assert_eq!(acc.pruned_pairs, 90);
        assert_eq!(acc.max_block_size, 9);
        assert!((acc.pruned_fraction() - 0.75).abs() < 1e-9);
        assert_eq!(BlockingStats::default().pruned_fraction(), 0.0);
    }

    #[test]
    fn stats_merge_saturates_instead_of_wrapping() {
        let mut acc = BlockingStats {
            folds: usize::MAX - 1,
            candidate_pairs: usize::MAX,
            scored_pairs: usize::MAX - 10,
            pruned_pairs: usize::MAX,
            ..BlockingStats::default()
        };
        acc.merge(&BlockingStats {
            folds: 5,
            candidate_pairs: 1,
            scored_pairs: 100,
            pruned_pairs: usize::MAX,
            max_block_size: 3,
            ..BlockingStats::default()
        });
        assert_eq!(acc.folds, usize::MAX);
        assert_eq!(acc.candidate_pairs, usize::MAX);
        assert_eq!(acc.scored_pairs, usize::MAX);
        assert_eq!(acc.pruned_pairs, usize::MAX);
        assert_eq!(acc.max_block_size, 3);
        // Saturated totals still yield a sane fraction, not a panic.
        let fraction = acc.pruned_fraction();
        assert!((0.0..=1.0).contains(&fraction), "{fraction}");
    }

    #[test]
    fn zero_pair_folds_merge_into_empty_stats() {
        // A fold with no candidate space at all (0 × n) contributes nothing
        // but its fold count.
        let mut acc = BlockingStats::default();
        acc.merge(&plan_cartesian(0, 7).stats);
        acc.merge(&plan_cartesian(4, 0).stats);
        assert_eq!(acc.folds, 2);
        assert_eq!(acc.blocks, 0);
        assert_eq!(acc.candidate_pairs, 0);
        assert_eq!(acc.scored_pairs, 0);
        assert_eq!(acc.pruned_fraction(), 0.0);
    }

    #[test]
    fn plan_cartesian_handles_degenerate_shapes() {
        for (rows, cols) in [(0usize, 0usize), (0, 5), (5, 0)] {
            let plan = plan_cartesian(rows, cols);
            assert!(plan.blocks.is_empty(), "{rows}×{cols}: {plan:?}");
            assert!(plan.cut_edges.is_empty());
            assert_eq!(plan.stats.candidate_pairs, 0);
            assert_eq!(plan.stats.scored_pairs, 0);
            assert_eq!(plan.stats.pruned_pairs, 0);
            assert_eq!(plan.stats.max_block_size, 0);
            assert_eq!(plan.stats.folds, 1);
        }
        // The 1 × 1 shape is the smallest real plan: one dense block.
        let plan = plan_cartesian(1, 1);
        assert_eq!(plan.blocks.len(), 1);
        assert_eq!(plan.stats.candidate_pairs, 1);
        assert_eq!(plan.stats.max_block_size, 2);
    }

    #[test]
    fn canonicalize_pairs_matches_comparison_sort() {
        // A small dense id space exercises the radix path; the oversized one
        // exercises the comparison fallback.  Both must agree with the
        // reference sort+dedup on every input, duplicates included.
        type Case = (Vec<(usize, usize)>, usize, usize);
        let cases: Vec<Case> = vec![
            (vec![], 4, 4),
            (vec![(3, 2)], 4, 4),
            (vec![(1, 1), (0, 3), (1, 1), (0, 0), (3, 2), (0, 3), (2, 1)], 4, 4),
            (vec![(0, 0), (0, 0), (0, 0)], 1, 1),
            (vec![(7, 900_000), (2, 1), (7, 900_000), (0, 999_999)], 1_000_000, 1_000_000),
        ];
        for (pairs, rows, cols) in cases {
            let mut expected = pairs.clone();
            expected.sort_unstable();
            expected.dedup();
            let mut canonical = pairs.clone();
            canonicalize_pairs(&mut canonical, rows, cols);
            assert_eq!(canonical, expected, "input {pairs:?}");
            assert!(canonical.len() <= pairs.len());
        }
    }

    #[test]
    fn canonicalize_pairs_with_costs_keeps_costs_aligned() {
        // Duplicates carry equal costs (the planner's contract), so any
        // surviving copy must keep its pair's cost.
        let pairs = vec![(2usize, 0usize), (0, 1), (2, 0), (1, 1), (0, 1), (0, 0)];
        let costs = vec![0.5f32, 0.25, 0.5, 0.75, 0.25, 0.125];
        for (rows, cols) in [(3usize, 2usize), (100_000, 100_000)] {
            let mut p = pairs.clone();
            let mut c = costs.clone();
            canonicalize_pairs_with_costs(&mut p, &mut c, rows, cols);
            assert_eq!(p, vec![(0, 0), (0, 1), (1, 1), (2, 0)]);
            assert_eq!(c, vec![0.125, 0.25, 0.75, 0.5]);
        }
    }

    #[test]
    fn cost_planners_attribute_their_phases() {
        let near = |base: f32| Vector::new(vec![base, 1.0 - base, 0.0, 0.0]);
        let (r0, c0) = (near(0.45), near(0.55));
        let input = FoldInputs {
            row_embeddings: &[&r0],
            col_embeddings: &[&c0],
            theta: 0.5,
            ..FoldInputs::default()
        };
        let policy = BlockingPolicy::Keyed(KeyedBlockingConfig {
            min_blocked_pairs: 0,
            ..KeyedBlockingConfig::default()
        });
        let exact = plan_blocks(&input, &policy);
        assert!(exact.stats.phase.total > std::time::Duration::ZERO);
        assert!(exact.stats.phase.phase_sum() <= exact.stats.phase.total);
        let escalating = BlockingPolicy::Keyed(KeyedBlockingConfig {
            min_blocked_pairs: 0,
            escalation: crate::config::EscalationPolicy {
                min_fold_pairs: 0,
                ..crate::config::EscalationPolicy::default()
            },
            ..KeyedBlockingConfig::default()
        });
        let escalated = plan_blocks(&input, &escalating);
        assert_eq!(escalated.stats.escalated_folds, 1);
        assert!(escalated.stats.phase.total > std::time::Duration::ZERO);
        assert!(escalated.stats.phase.phase_sum() <= escalated.stats.phase.total);
        // Phase timings accumulate across merges like every other counter.
        let mut acc = BlockingStats::default();
        acc.merge(&exact.stats);
        acc.merge(&escalated.stats);
        assert_eq!(acc.phase.total, exact.stats.phase.total + escalated.stats.phase.total);
    }

    #[test]
    fn escalated_plans_report_scored_pairs_and_fallback_sweeps() {
        // Two tight clusters; the ANN tier must find both sub-threshold
        // pairs (identical vectors share every band) and report an escalated
        // fold with fewer-or-equal scored pairs than the cartesian space.
        let a = Vector::new(vec![1.0, 0.0, 0.0, 0.0]);
        let b = Vector::new(vec![0.0, 1.0, 0.0, 0.0]);
        let rows = [&a, &b];
        let cols = [&a, &b];
        let input = FoldInputs {
            row_embeddings: &rows,
            col_embeddings: &cols,
            theta: 0.5,
            ..FoldInputs::default()
        };
        let policy = BlockingPolicy::Keyed(KeyedBlockingConfig {
            min_blocked_pairs: 0,
            escalation: crate::config::EscalationPolicy {
                min_fold_pairs: 0,
                ..crate::config::EscalationPolicy::default()
            },
            ..KeyedBlockingConfig::default()
        });
        let plan = plan_blocks(&input, &policy);
        assert_eq!(plan.stats.escalated_folds, 1);
        assert_eq!(plan.blocks.len(), 2, "{plan:?}");
        assert_eq!(plan.stats.candidate_pairs, 2);
        assert!(plan.stats.scored_pairs <= 4, "{:?}", plan.stats);
        for block in &plan.blocks {
            let costs = block.costs.as_ref().expect("escalated plans carry costs");
            assert!(costs.iter().all(|&c| c < 0.5), "{costs:?}");
        }
    }
}
