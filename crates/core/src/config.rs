//! Configuration of the Fuzzy Full Disjunction pipeline.
//!
//! The central type is [`FuzzyFdConfig`], which bundles the paper-level
//! parameters (threshold θ, embedding model, assignment algorithm) with the
//! candidate-space machinery of `fuzzy_fd_core::blocking`:
//!
//! * [`BlockingPolicy`] — exhaustive dense matrices vs keyed/blocked
//!   candidate generation;
//! * [`SemanticBlocking`] — which embedding-based channel supplies candidate
//!   pairs (exact sub-threshold sweep, SimHash bands, or none);
//! * [`EscalationPolicy`] — when a fold abandons the quadratic exact sweep
//!   for the sub-quadratic ANN index of [`lake_embed::AnnIndex`];
//! * [`KeyedBlockingConfig::max_component_cells`] — when an oversized
//!   connected component is split before solving.
//!
//! Every knob defaults to the configuration validated against the paper's
//! reported behaviour; see `ARCHITECTURE.md` for the tier map and the
//! equivalence guarantee each tier keeps.

use lake_assign::AssignmentAlgorithm;
use lake_embed::{AnnParams, EmbeddingModel};

/// How the bipartite value-matching step is solved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignmentStrategy {
    /// Always use the exact solver configured in
    /// [`FuzzyFdConfig::assignment_algorithm`].
    AlwaysExact,
    /// Use the exact solver up to `max_side` values per side and fall back to
    /// the greedy solver beyond that.  Large residual matrices only occur on
    /// key-like columns with tens of thousands of distinct values, where the
    /// O(n³) exact solvers become the bottleneck.
    ExactUpTo {
        /// Largest per-side size still solved exactly.
        max_side: usize,
    },
}

impl Default for AssignmentStrategy {
    fn default() -> Self {
        AssignmentStrategy::ExactUpTo { max_side: 1_500 }
    }
}

/// How the combined-column × next-column candidate space is partitioned
/// before cost matrices are built (see `fuzzy_fd_core::blocking`).
///
/// ```
/// use fuzzy_fd_core::{BlockingPolicy, EscalationPolicy, KeyedBlockingConfig};
///
/// // The default is keyed blocking with the exact semantic channel and
/// // size-gated ANN escalation; every knob can be overridden piecemeal.
/// let policy = BlockingPolicy::Keyed(KeyedBlockingConfig {
///     escalation: EscalationPolicy { min_fold_pairs: 10_000, ..Default::default() },
///     ..KeyedBlockingConfig::default()
/// });
/// assert_ne!(policy, BlockingPolicy::Exhaustive);
/// assert_ne!(policy, BlockingPolicy::default());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BlockingPolicy {
    /// One dense cost matrix over every (group, value) pair — the paper's
    /// exact behaviour, quadratic in the column size.
    Exhaustive,
    /// Key-based blocking: groups and values are partitioned into independent
    /// sub-problems by shared surface keys (tokens, q-grams, acronyms) plus a
    /// configurable semantic channel over the embeddings.  Pairs in no common
    /// block are never candidates, which prunes most of the quadratic space;
    /// each block is solved as its own (much smaller) assignment problem.
    Keyed(KeyedBlockingConfig),
}

impl Default for BlockingPolicy {
    fn default() -> Self {
        BlockingPolicy::Keyed(KeyedBlockingConfig::default())
    }
}

impl BlockingPolicy {
    /// This policy with the cartesian fallback forced off
    /// (`min_blocked_pairs = 0`): every matching step goes through key-based
    /// blocking regardless of size.  Exhaustive stays exhaustive.
    pub fn force_blocked(self) -> Self {
        match self {
            BlockingPolicy::Exhaustive => BlockingPolicy::Exhaustive,
            BlockingPolicy::Keyed(keyed) => {
                BlockingPolicy::Keyed(KeyedBlockingConfig { min_blocked_pairs: 0, ..keyed })
            }
        }
    }
}

/// The semantic (embedding-based) candidate channel of
/// [`BlockingPolicy::Keyed`].  Surface keys catch typos and shared tokens;
/// this channel is what lets aliases and codes ("Germany" / "DE") that share
/// no surface key still become candidates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SemanticBlocking {
    /// Surface keys only.  Maximum pruning, but matches that exist purely in
    /// embedding space are lost.
    Off,
    /// SimHash banded LSH keys over the embeddings (see
    /// [`lake_embed::SimHasher`]): two items are candidates when they agree
    /// on every bit of at least one band.  Probabilistic recall — more bands
    /// × fewer bits raises recall but glues blocks together; fewer bands ×
    /// more bits prunes harder but can miss borderline matches.  The only
    /// channel that avoids the quadratic distance sweep, hence the right
    /// choice for very large folds.
    SimHash {
        /// Number of bands (each contributes one key per item).
        bands: usize,
        /// Bits per band; `bands * band_bits` must be ≤ 64.
        band_bits: usize,
    },
    /// Exact sub-threshold candidates: one cheap dot-product sweep over the
    /// fold computes every (group, value) cosine distance, and pairs below
    /// `θ + slack` become candidates.  *Guaranteed* candidacy at the
    /// matching threshold — any pair the thresholding step could accept is a
    /// candidate — so this is the fidelity-preserving default for moderate
    /// fold sizes.  (End-to-end recall additionally depends on
    /// [`KeyedBlockingConfig::max_component_cells`]: an oversized component
    /// may have recorded candidate edges severed before solving.)
    /// The sweep costs the same dot products the exhaustive cost matrix
    /// would, and the computed distances are reused as matrix entries, so
    /// solve-time work only shrinks.
    ExactBelow {
        /// Safety margin added to θ when deciding candidacy.  `0.0` keeps
        /// exactly the pairs thresholding could accept, which maximises
        /// pruning but lets the global assignment drift on near-threshold
        /// ties: the exhaustive solver's choice *among* sub-θ pairs is
        /// steered by the true costs of slightly-above-θ pairs, and masking
        /// those severs that influence.  A small positive slack keeps the
        /// influence band as candidates; `0.1` reproduces the exhaustive
        /// groups exactly on the Auto-Join benchmark sets while still
        /// pruning ~90% of the candidate space.
        slack: f32,
    },
}

impl SemanticBlocking {
    /// The suggested SimHash configuration: 8 bands × 8 bits (a full 64-bit
    /// signature).  Selective enough that unrelated values rarely collide
    /// (~3% per pair) while close pairs (cosine similarity ≳ 0.9) still
    /// share a band with high probability.
    pub fn simhash_default() -> Self {
        SemanticBlocking::SimHash { bands: 8, band_bits: 8 }
    }
}

/// When a fold escalates from the exact sub-threshold sweep to the ANN
/// candidate index ([`lake_embed::AnnIndex`]).
///
/// The exact channel's one-dot-product-per-pair sweep is the right default
/// up to moderate fold sizes, but it is still quadratic.  Above
/// `min_fold_pairs` the planner stops sweeping and instead indexes the
/// fold's value embeddings once, probes the index with every group
/// embedding, and exactly re-scores only the colliding pairs (unioned with
/// the surface-key candidates, which are sub-quadratic by construction).
/// The escalated tier is probabilistic — a near pair whose signature
/// disagreements all carry large margins can be missed — which is why it is
/// gated behind a size threshold instead of being the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EscalationPolicy {
    /// Folds with at least this many (group × value) pairs escalate to the
    /// ANN index.  `usize::MAX` never escalates; `0` always escalates.
    pub min_fold_pairs: usize,
    /// Banding/probing shape of the escalated tier's ANN index.
    pub ann: AnnParams,
}

impl Default for EscalationPolicy {
    fn default() -> Self {
        // 1M pairs ≈ a 1000 × 1000 fold — the measured wall-clock
        // break-even of the ANN tier on 64-dimensional embeddings (see the
        // `value_matching_escalation` bench and `diag_escalation` example).
        // Below this the exact sweep is both faster and recall-exact, so
        // escalating earlier would pay twice for nothing; above it the
        // sweep's quadratic cost dominates and the tier wins on wall clock
        // as well as on scored pairs.
        EscalationPolicy { min_fold_pairs: 1_000_000, ann: AnnParams::default() }
    }
}

impl EscalationPolicy {
    /// A policy that never leaves the exact sweep.
    pub fn never() -> Self {
        EscalationPolicy { min_fold_pairs: usize::MAX, ..EscalationPolicy::default() }
    }

    /// Whether a `rows × cols` fold escalates under this policy.
    pub fn applies_to(&self, rows: usize, cols: usize) -> bool {
        self.min_fold_pairs == 0
            || rows.checked_mul(cols).map(|pairs| pairs >= self.min_fold_pairs).unwrap_or(true)
    }
}

/// Tuning knobs of [`BlockingPolicy::Keyed`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KeyedBlockingConfig {
    /// Surface keys shared by more than this many participants (groups +
    /// values) are dropped as uninformative — they would glue everything into
    /// one block and reintroduce the quadratic blow-up.
    pub max_key_bucket: usize,
    /// The embedding-based candidate channel.
    pub semantic: SemanticBlocking,
    /// Candidate spaces smaller than this many (group × value) pairs skip
    /// blocking and use one cartesian block: below it the dense solve is
    /// cheaper than key extraction, and the result is exactly the
    /// exhaustive one.  Set to `usize::MAX` to force the cartesian fallback
    /// (useful to A/B the paths), or to `0` to always block.
    pub min_blocked_pairs: usize,
    /// When an [`SemanticBlocking::ExactBelow`] fold grows past the exact
    /// sweep's comfort zone, this policy switches it to the ANN tier.
    pub escalation: EscalationPolicy,
    /// Connected components whose cost matrix would exceed this many cells
    /// (component rows × component cols) are split before solving: candidate
    /// edges are re-added strongest-first (smallest distance), and an edge
    /// that would merge two clusters past the cap is severed instead.  Cut
    /// edges are recorded on the plan so tests and post-solve thresholding
    /// can re-verify that nothing below θ was lost.  Splitting needs edge
    /// distances, so it applies to the cost-carrying channels
    /// ([`SemanticBlocking::ExactBelow`] and the escalated ANN tier); set to
    /// `usize::MAX` to disable.
    pub max_component_cells: usize,
}

impl Default for KeyedBlockingConfig {
    fn default() -> Self {
        KeyedBlockingConfig {
            max_key_bucket: 64,
            semantic: SemanticBlocking::ExactBelow { slack: 0.1 },
            min_blocked_pairs: 4_096,
            escalation: EscalationPolicy::default(),
            // 256 × 256 per component: far above every benchmark fold (the
            // Auto-Join components stay untouched) while keeping the cubic
            // solver off matrices that would dominate a lake-scale fold.
            max_component_cells: 65_536,
        }
    }
}

/// Reuse knobs of an [`IntegrationSession`](crate::IntegrationSession) —
/// which artifacts of the prior integration an `add_table` call may keep.
///
/// Every knob defaults to maximal reuse; turning one off is an A/B switch
/// that forces the corresponding stage back to the batch behaviour (the
/// equivalence harness runs both sides of each switch against batch
/// re-integration).  The session's warmed
/// [`EmbeddingCache`](lake_embed::EmbeddingCache) is always kept — embedding
/// a value is pure, so a cache hit can never change a result, only skip
/// recomputing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IncrementalPolicy {
    /// Keep the matcher state (groups, representatives, occurrence counts)
    /// of aligned sets the appended tables do not touch, instead of
    /// re-matching them from their columns.  Touched sets always re-plan
    /// only the appended columns' folds on top of the retained state.
    pub reuse_untouched_sets: bool,
    /// Reuse cached Full Disjunction component closures
    /// ([`lake_fd::ComponentCache`]) for join-connected components whose
    /// member tuples are unchanged by the append.  The closure of a
    /// component is a pure function of its member tuples, so a verified hit
    /// is exact, never approximate.
    pub reuse_fd_components: bool,
    /// Upper bound on cached component closures kept across `add_table`
    /// calls.  When an append would grow the cache past this bound, the
    /// oldest generation is dropped first; `0` disables FD caching outright
    /// (equivalent to `reuse_fd_components: false` for reuse, but still
    /// records stats).
    pub max_cached_components: usize,
}

impl Default for IncrementalPolicy {
    fn default() -> Self {
        IncrementalPolicy {
            reuse_untouched_sets: true,
            reuse_fd_components: true,
            // The shared bound documented on `ComponentCache`: far above any
            // benchmark lake while bounding worst-case memory.
            max_cached_components: lake_fd::ComponentCache::DEFAULT_CAPACITY,
        }
    }
}

impl IncrementalPolicy {
    /// A policy that reuses nothing but the embedding cache: every append
    /// re-matches every aligned set and re-closes every FD component.  The
    /// baseline side of the incremental A/B.
    pub fn full_recompute() -> Self {
        IncrementalPolicy {
            reuse_untouched_sets: false,
            reuse_fd_components: false,
            max_cached_components: 0,
        }
    }
}

/// Parameters of Fuzzy Full Disjunction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FuzzyFdConfig {
    /// Matching threshold θ: assignments whose cosine distance is **not**
    /// strictly below θ are discarded.  The paper reports θ = 0.7 as the best
    /// setting and we default to it.
    pub theta: f32,
    /// Embedding model used to embed cell values (Table 1 compares the five
    /// tiers; Mistral is the paper's default).
    pub model: EmbeddingModel,
    /// Exact assignment algorithm used for bipartite matching.
    pub assignment_algorithm: AssignmentAlgorithm,
    /// When to fall back from the exact solver.
    pub assignment_strategy: AssignmentStrategy,
    /// Match identical strings across columns before running the embedding /
    /// assignment machinery.  Identical values are at distance 0, so this is
    /// purely an optimisation (it is what keeps the fuzzy overhead negligible
    /// on equi-join workloads like the IMDB benchmark); disable it to force
    /// every value through the assignment path.
    pub exact_match_first: bool,
    /// Minimum number of characters a value must have to participate in fuzzy
    /// (non-exact) matching.  Very short values ("1", "A") carry too little
    /// signal and are matched only exactly.
    pub min_fuzzy_length: usize,
    /// How the candidate space of each bipartite matching step is pruned.
    pub blocking: BlockingPolicy,
    /// Worker threads for the operator's parallel stages (block solving,
    /// embedding warm-up, FD component closures), interpreted by
    /// [`lake_runtime::ParallelPolicy`]: `1` = sequential; an explicit
    /// count ≥ 2 is a command whenever a stage has at least two tasks;
    /// `0` = auto — use the machine's available parallelism, but only when
    /// the stage carries enough work for the thread overhead to pay off.
    pub matching_threads: usize,
}

impl Default for FuzzyFdConfig {
    fn default() -> Self {
        FuzzyFdConfig {
            theta: 0.7,
            model: EmbeddingModel::Mistral,
            assignment_algorithm: AssignmentAlgorithm::ShortestAugmentingPath,
            assignment_strategy: AssignmentStrategy::default(),
            exact_match_first: true,
            min_fuzzy_length: 2,
            blocking: BlockingPolicy::default(),
            matching_threads: 1,
        }
    }
}

impl FuzzyFdConfig {
    /// Checks the configuration's floating-point parameters.
    ///
    /// `PartialEq` is derived over the `f32` fields, so a `NaN` threshold or
    /// slack would silently disable every equality check on the config (and
    /// on [`BlockingPolicy`]) and poison the `total_cmp`-sorted candidate
    /// edge ordering of `fuzzy_fd_core::blocking` — every distance involving
    /// a `NaN`-driven comparison would sort last instead of failing loudly.
    /// Rejected here instead:
    ///
    /// * `theta` must be finite and within `[0, 2]` (the cosine-distance
    ///   range; anything above 2 can never reject a pair);
    /// * an [`SemanticBlocking::ExactBelow`] `slack` must be finite and
    ///   non-negative (a negative slack would mask candidates the matching
    ///   threshold could still accept, breaking the channel's guarantee).
    ///
    /// ```
    /// use fuzzy_fd_core::FuzzyFdConfig;
    ///
    /// assert!(FuzzyFdConfig::default().validate().is_ok());
    /// assert!(FuzzyFdConfig::with_theta(f32::NAN).validate().is_err());
    /// assert!(FuzzyFdConfig::with_theta(-0.5).validate().is_err());
    /// ```
    pub fn validate(&self) -> Result<(), String> {
        if !self.theta.is_finite() || !(0.0..=2.0).contains(&self.theta) {
            return Err(format!(
                "matching threshold theta must be a finite cosine distance in [0, 2], got {}",
                self.theta
            ));
        }
        if let BlockingPolicy::Keyed(keyed) = &self.blocking {
            if let SemanticBlocking::ExactBelow { slack } = keyed.semantic {
                if !slack.is_finite() || slack < 0.0 {
                    return Err(format!(
                        "ExactBelow slack must be finite and non-negative \
                         (candidacy cutoff is theta + slack), got {slack}"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Convenience constructor overriding only the threshold.
    pub fn with_theta(theta: f32) -> Self {
        FuzzyFdConfig { theta, ..FuzzyFdConfig::default() }
    }

    /// Convenience constructor overriding only the embedding model.
    pub fn with_model(model: EmbeddingModel) -> Self {
        FuzzyFdConfig { model, ..FuzzyFdConfig::default() }
    }

    /// Convenience constructor overriding only the blocking policy.
    pub fn with_blocking(blocking: BlockingPolicy) -> Self {
        FuzzyFdConfig { blocking, ..FuzzyFdConfig::default() }
    }

    /// The configured candidate-space policy with the cartesian fallback
    /// forced off (`min_blocked_pairs = 0`) — every matching step goes
    /// through key-based blocking regardless of size.  Exhaustive stays
    /// exhaustive.
    pub fn force_blocking(self) -> Self {
        FuzzyFdConfig { blocking: self.blocking.force_blocked(), ..self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let config = FuzzyFdConfig::default();
        assert!((config.theta - 0.7).abs() < 1e-6);
        assert_eq!(config.model, EmbeddingModel::Mistral);
        assert!(config.exact_match_first);
        assert_eq!(config.assignment_algorithm, AssignmentAlgorithm::ShortestAugmentingPath);
    }

    #[test]
    fn convenience_constructors() {
        assert!((FuzzyFdConfig::with_theta(0.5).theta - 0.5).abs() < 1e-6);
        assert_eq!(FuzzyFdConfig::with_model(EmbeddingModel::Bert).model, EmbeddingModel::Bert);
    }

    #[test]
    fn default_strategy_caps_exact_solver() {
        match AssignmentStrategy::default() {
            AssignmentStrategy::ExactUpTo { max_side } => assert!(max_side >= 500),
            other => panic!("unexpected default {other:?}"),
        }
    }

    #[test]
    fn default_blocking_is_keyed_with_a_cartesian_floor() {
        let config = FuzzyFdConfig::default();
        match config.blocking {
            BlockingPolicy::Keyed(keyed) => {
                assert!(keyed.min_blocked_pairs > 0, "small problems must stay exhaustive");
                // The default semantic channel must be recall-exact so blocked
                // matching reproduces the exhaustive groups.
                match keyed.semantic {
                    SemanticBlocking::ExactBelow { slack } => assert!(slack >= 0.0),
                    other => panic!("default semantic channel must be exact, got {other:?}"),
                }
                assert!(keyed.max_key_bucket >= 2);
            }
            BlockingPolicy::Exhaustive => panic!("default must prune the candidate space"),
        }
        assert_eq!(config.matching_threads, 1);
    }

    #[test]
    fn simhash_default_fits_one_signature() {
        match SemanticBlocking::simhash_default() {
            SemanticBlocking::SimHash { bands, band_bits } => {
                assert!(bands > 0 && band_bits > 0);
                assert!(bands * band_bits <= 64, "signature must fit in a u64");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nan_and_out_of_range_floats_are_rejected() {
        for theta in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY, -0.01, 2.01] {
            let err = FuzzyFdConfig::with_theta(theta).validate().unwrap_err();
            assert!(err.contains("theta"), "{err}");
        }
        for slack in [f32::NAN, f32::INFINITY, -0.1] {
            let config = FuzzyFdConfig::with_blocking(BlockingPolicy::Keyed(KeyedBlockingConfig {
                semantic: SemanticBlocking::ExactBelow { slack },
                ..KeyedBlockingConfig::default()
            }));
            let err = config.validate().unwrap_err();
            assert!(err.contains("slack"), "{err}");
        }
        // The range boundaries themselves are legal, as are non-ExactBelow
        // channels regardless of the slack story.
        assert!(FuzzyFdConfig::with_theta(0.0).validate().is_ok());
        assert!(FuzzyFdConfig::with_theta(2.0).validate().is_ok());
        assert!(FuzzyFdConfig::with_blocking(BlockingPolicy::Exhaustive).validate().is_ok());
        let zero_slack = FuzzyFdConfig::with_blocking(BlockingPolicy::Keyed(KeyedBlockingConfig {
            semantic: SemanticBlocking::ExactBelow { slack: 0.0 },
            ..KeyedBlockingConfig::default()
        }));
        assert!(zero_slack.validate().is_ok());
    }

    #[test]
    fn incremental_policy_defaults_to_maximal_reuse() {
        let policy = IncrementalPolicy::default();
        assert!(policy.reuse_untouched_sets);
        assert!(policy.reuse_fd_components);
        assert!(policy.max_cached_components > 0);
        let baseline = IncrementalPolicy::full_recompute();
        assert!(!baseline.reuse_untouched_sets);
        assert!(!baseline.reuse_fd_components);
        assert_eq!(baseline.max_cached_components, 0);
    }

    #[test]
    fn force_blocking_removes_the_cartesian_floor() {
        let forced = FuzzyFdConfig::default().force_blocking();
        match forced.blocking {
            BlockingPolicy::Keyed(keyed) => assert_eq!(keyed.min_blocked_pairs, 0),
            BlockingPolicy::Exhaustive => panic!("keyed must stay keyed"),
        }
        let exhaustive = FuzzyFdConfig::with_blocking(BlockingPolicy::Exhaustive).force_blocking();
        assert_eq!(exhaustive.blocking, BlockingPolicy::Exhaustive);
    }
}
