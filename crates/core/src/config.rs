//! Configuration of the Fuzzy Full Disjunction pipeline.

use lake_assign::AssignmentAlgorithm;
use lake_embed::EmbeddingModel;

/// How the bipartite value-matching step is solved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignmentStrategy {
    /// Always use the exact solver configured in
    /// [`FuzzyFdConfig::assignment_algorithm`].
    AlwaysExact,
    /// Use the exact solver up to `max_side` values per side and fall back to
    /// the greedy solver beyond that.  Large residual matrices only occur on
    /// key-like columns with tens of thousands of distinct values, where the
    /// O(n³) exact solvers become the bottleneck.
    ExactUpTo {
        /// Largest per-side size still solved exactly.
        max_side: usize,
    },
}

impl Default for AssignmentStrategy {
    fn default() -> Self {
        AssignmentStrategy::ExactUpTo { max_side: 1_500 }
    }
}

/// Parameters of Fuzzy Full Disjunction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FuzzyFdConfig {
    /// Matching threshold θ: assignments whose cosine distance is **not**
    /// strictly below θ are discarded.  The paper reports θ = 0.7 as the best
    /// setting and we default to it.
    pub theta: f32,
    /// Embedding model used to embed cell values (Table 1 compares the five
    /// tiers; Mistral is the paper's default).
    pub model: EmbeddingModel,
    /// Exact assignment algorithm used for bipartite matching.
    pub assignment_algorithm: AssignmentAlgorithm,
    /// When to fall back from the exact solver.
    pub assignment_strategy: AssignmentStrategy,
    /// Match identical strings across columns before running the embedding /
    /// assignment machinery.  Identical values are at distance 0, so this is
    /// purely an optimisation (it is what keeps the fuzzy overhead negligible
    /// on equi-join workloads like the IMDB benchmark); disable it to force
    /// every value through the assignment path.
    pub exact_match_first: bool,
    /// Minimum number of characters a value must have to participate in fuzzy
    /// (non-exact) matching.  Very short values ("1", "A") carry too little
    /// signal and are matched only exactly.
    pub min_fuzzy_length: usize,
}

impl Default for FuzzyFdConfig {
    fn default() -> Self {
        FuzzyFdConfig {
            theta: 0.7,
            model: EmbeddingModel::Mistral,
            assignment_algorithm: AssignmentAlgorithm::ShortestAugmentingPath,
            assignment_strategy: AssignmentStrategy::default(),
            exact_match_first: true,
            min_fuzzy_length: 2,
        }
    }
}

impl FuzzyFdConfig {
    /// Convenience constructor overriding only the threshold.
    pub fn with_theta(theta: f32) -> Self {
        FuzzyFdConfig { theta, ..FuzzyFdConfig::default() }
    }

    /// Convenience constructor overriding only the embedding model.
    pub fn with_model(model: EmbeddingModel) -> Self {
        FuzzyFdConfig { model, ..FuzzyFdConfig::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let config = FuzzyFdConfig::default();
        assert!((config.theta - 0.7).abs() < 1e-6);
        assert_eq!(config.model, EmbeddingModel::Mistral);
        assert!(config.exact_match_first);
        assert_eq!(config.assignment_algorithm, AssignmentAlgorithm::ShortestAugmentingPath);
    }

    #[test]
    fn convenience_constructors() {
        assert!((FuzzyFdConfig::with_theta(0.5).theta - 0.5).abs() < 1e-6);
        assert_eq!(FuzzyFdConfig::with_model(EmbeddingModel::Bert).model, EmbeddingModel::Bert);
    }

    #[test]
    fn default_strategy_caps_exact_solver() {
        match AssignmentStrategy::default() {
            AssignmentStrategy::ExactUpTo { max_side } => assert!(max_side >= 500),
            other => panic!("unexpected default {other:?}"),
        }
    }
}
