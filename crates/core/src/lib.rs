//! # fuzzy-fd-core
//!
//! **Fuzzy Full Disjunction** — the contribution of *Fuzzy Integration of
//! Data Lake Tables* (Khatiwada, Shraga, Miller).
//!
//! Full Disjunction (FD) integrates a set of tables maximally, but classic FD
//! joins tuples only on *equal* values.  Data lake tables disagree on surface
//! forms — typos, abbreviations, codes, case — so equi-join FD leaves tuples
//! about the same real-world entity un-merged.  Fuzzy FD fixes this in three
//! steps:
//!
//! 1. **Align columns** across the tables (given, header-based, or via
//!    `lake-schema-match`).
//! 2. **Match values** within every set of aligned columns (the *Fuzzy Value
//!    Match* problem, Definition 2 of the paper): embed every distinct value,
//!    repeatedly bipartite-match the current *combined column* against the
//!    next column with a linear sum assignment under a distance threshold θ,
//!    and pick the most frequent member of each match group as its
//!    representative.
//! 3. **Rewrite** matched values to their representative and run the ordinary
//!    equi-join Full Disjunction (`lake-fd`).
//!
//! ```
//! use fuzzy_fd_core::{FuzzyFdConfig, FuzzyFullDisjunction};
//! use lake_table::TableBuilder;
//!
//! let t1 = TableBuilder::new("T1", ["City", "Country"])
//!     .row(["Berlinn", "Germany"])
//!     .row(["Toronto", "Canada"])
//!     .build()
//!     .unwrap();
//! let t2 = TableBuilder::new("T2", ["City", "Vaccination"])
//!     .row(["Berlin", "63%"])
//!     .row(["Boston", "62%"])
//!     .build()
//!     .unwrap();
//!
//! let fuzzy = FuzzyFullDisjunction::new(FuzzyFdConfig::default());
//! let result = fuzzy.integrate_by_headers(&[t1, t2]).unwrap();
//! // The typo "Berlinn" no longer prevents integration: Berlin appears once.
//! assert_eq!(result.table.len(), 3);
//! ```

pub mod blocking;
pub mod config;
pub mod pipeline;
pub mod rewrite;
pub mod session;
pub mod value_match;

pub use blocking::{
    band_bucket_key, canonicalize_pairs, canonicalize_pairs_with_costs, embedding_bucket_keys,
    embedding_hasher, hash_key, hashed_keys, hashed_value_block_keys, plan_blocks, plan_cartesian,
    value_block_keys, Block, BlockPlan, BlockingStats, CutEdge, FoldInputs,
};
pub use config::{
    AssignmentStrategy, BlockingPolicy, EscalationPolicy, FuzzyFdConfig, IncrementalPolicy,
    KeyedBlockingConfig, SemanticBlocking,
};
pub use lake_embed::{AnnIndex, AnnParams, KernelStats};
pub use lake_metrics::PhaseTimings;
pub use lake_runtime::{ParallelPolicy, RuntimeStats};
pub use pipeline::{
    regular_full_disjunction, FuzzyFdReport, FuzzyFullDisjunction, IntegrationOutcome,
};
pub use rewrite::build_substitutions;
pub use session::{IncrementalOutcome, IncrementalStats, IntegrationSession};
pub use value_match::{
    match_column_values, match_column_values_with_stats, ColumnPosition, MatcherState, ValueGroup,
    ValueMatcher,
};
