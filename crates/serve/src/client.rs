//! A small blocking client for the wire protocol.
//!
//! One `TcpStream` per request (the server speaks `Connection: close`),
//! JSON bodies built and decoded by [`wire`] and the vendored
//! `serde_json`.  Used by the integration tests, the serving benchmark and
//! the CI smoke job; `docs/PROTOCOL.md` shows the equivalent raw `curl`
//! calls.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use lake_runtime::pause;
use lake_table::Table;

use crate::wire;

/// Client-side failure talking to a server.
#[derive(Debug)]
pub enum ClientError {
    /// Connecting, writing or reading the socket failed.
    Io(std::io::Error),
    /// The response was not parseable HTTP/JSON.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(err) => write!(f, "client I/O error: {err}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(err: std::io::Error) -> Self {
        ClientError::Io(err)
    }
}

/// A server reply: status code, optional `Retry-After`, raw JSON body.
#[derive(Debug, Clone)]
pub struct Reply {
    /// HTTP status code.
    pub status: u16,
    /// `Retry-After` header in seconds, when present (on `429`).
    pub retry_after: Option<u32>,
    /// The raw response body (JSON for every documented route).
    pub body: String,
}

impl Reply {
    /// Parses the body as JSON.
    pub fn json(&self) -> Result<serde_json::Value, ClientError> {
        serde_json::from_str(&self.body)
            .map_err(|err| ClientError::Protocol(format!("unparseable body: {err}")))
    }
}

/// Which shard a `/query` should read.
#[derive(Debug, Clone, Copy)]
pub enum QueryTarget<'a> {
    /// Resolve the shard from a group name (server applies
    /// [`route_group`](crate::route_group)).
    Group(&'a str),
    /// An explicit shard index.
    Shard(usize),
}

/// Blocking wire-protocol client.
///
/// # Examples
///
/// ```no_run
/// use lake_serve::{LakeServer, ServeClient, ServePolicy};
/// use lake_table::TableBuilder;
///
/// let server = LakeServer::start(ServePolicy::default()).unwrap();
/// let client = ServeClient::new(server.addr());
///
/// let table = TableBuilder::new("S0", ["City", "Cases"]).row(["Berlin", "1.4M"]).build().unwrap();
/// let ack = client.ingest("covid", &table).unwrap();
/// assert_eq!(ack.status, 202);
///
/// client.wait_idle(std::time::Duration::from_secs(5)).unwrap();
/// let reply = client.query(lake_serve::QueryTarget::Group("covid"), "table").unwrap();
/// assert_eq!(reply.status, 200);
/// server.shutdown();
/// ```
#[derive(Debug, Clone)]
pub struct ServeClient {
    addr: SocketAddr,
    timeout: Duration,
}

impl ServeClient {
    /// A client for the server at `addr` (10 s I/O timeout).
    pub fn new(addr: SocketAddr) -> Self {
        ServeClient { addr, timeout: Duration::from_secs(10) }
    }

    /// Overrides the per-request I/O timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// `GET /health`.
    pub fn health(&self) -> Result<Reply, ClientError> {
        self.request("GET", "/health", None)
    }

    /// `GET /stats`.
    pub fn stats(&self) -> Result<Reply, ClientError> {
        self.request("GET", "/stats", None)
    }

    /// `POST /ingest` of `table` under `group`.
    pub fn ingest(&self, group: &str, table: &Table) -> Result<Reply, ClientError> {
        self.request("POST", "/ingest", Some(&wire::ingest_body(group, table)))
    }

    /// `GET /query` for one view (`"table"`, `"report"` or `"provenance"`).
    pub fn query(&self, target: QueryTarget<'_>, view: &str) -> Result<Reply, ClientError> {
        let target = match target {
            QueryTarget::Group(group) => format!("group={}", percent_encode(group)),
            QueryTarget::Shard(shard) => format!("shard={shard}"),
        };
        self.request("GET", &format!("/query?{target}&view={view}"), None)
    }

    /// Polls `/stats` until every shard is idle (empty queue, writer not
    /// integrating) or `timeout` elapses.  Returns whether idle was
    /// reached — the queues are drained and every acknowledged ingest is
    /// visible to queries when it is.
    pub fn wait_idle(&self, timeout: Duration) -> Result<bool, ClientError> {
        let deadline = Instant::now() + timeout;
        loop {
            let stats = self.stats()?.json()?;
            let idle = stats
                .get("shards")
                .and_then(serde_json::Value::as_array)
                .map(|shards| {
                    shards.iter().all(|shard| {
                        shard.get("queued").and_then(serde_json::Value::as_u64) == Some(0)
                            && shard.get("busy").and_then(serde_json::Value::as_bool) == Some(false)
                    })
                })
                .unwrap_or(false);
            if idle {
                return Ok(true);
            }
            if Instant::now() >= deadline {
                return Ok(false);
            }
            pause(Duration::from_millis(5));
        }
    }

    /// An arbitrary request (any method/target/body) through the client's
    /// transport — the escape hatch the protocol-conformance tests use to
    /// send requests the typed helpers would never produce.
    pub fn raw(
        &self,
        method: &str,
        target: &str,
        body: Option<&str>,
    ) -> Result<Reply, ClientError> {
        self.request(method, target, body)
    }

    /// One request/response round-trip.
    fn request(
        &self,
        method: &str,
        target: &str,
        body: Option<&str>,
    ) -> Result<Reply, ClientError> {
        let mut stream = TcpStream::connect(self.addr)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        let body = body.unwrap_or("");
        let head = format!(
            "{method} {target} HTTP/1.1\r\nHost: lake-serve\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            body.len(),
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(body.as_bytes())?;
        stream.flush()?;

        let mut raw = Vec::new();
        stream.read_to_end(&mut raw)?;
        parse_reply(&raw)
    }
}

/// Parses a `Connection: close` HTTP response.
fn parse_reply(raw: &[u8]) -> Result<Reply, ClientError> {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| ClientError::Protocol("response has no header terminator".into()))?;
    let head = std::str::from_utf8(&raw[..head_end])
        .map_err(|_| ClientError::Protocol("non-UTF-8 response head".into()))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|code| code.parse::<u16>().ok())
        .ok_or_else(|| ClientError::Protocol(format!("bad status line {status_line:?}")))?;
    let mut retry_after = None;
    let mut content_length = None;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            match name.trim().to_ascii_lowercase().as_str() {
                "retry-after" => retry_after = value.trim().parse::<u32>().ok(),
                "content-length" => content_length = value.trim().parse::<usize>().ok(),
                _ => {}
            }
        }
    }
    let body_bytes = &raw[head_end + 4..];
    let body_bytes = match content_length {
        Some(len) if len <= body_bytes.len() => &body_bytes[..len],
        _ => body_bytes,
    };
    let body = String::from_utf8(body_bytes.to_vec())
        .map_err(|_| ClientError::Protocol("non-UTF-8 response body".into()))?;
    Ok(Reply { status, retry_after, body })
}

/// Percent-encodes a query-string value (conservative: everything outside
/// unreserved characters).
fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for byte in s.bytes() {
        match byte {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(byte as char)
            }
            _ => out.push_str(&format!("%{byte:02X}")),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_replies_with_retry_after() {
        let raw =
            b"HTTP/1.1 429 Too Many Requests\r\nContent-Length: 2\r\nRetry-After: 3\r\n\r\n{}";
        let reply = parse_reply(raw).unwrap();
        assert_eq!(reply.status, 429);
        assert_eq!(reply.retry_after, Some(3));
        assert_eq!(reply.body, "{}");
    }

    #[test]
    fn rejects_garbage_replies() {
        assert!(parse_reply(b"not http").is_err());
        assert!(parse_reply(b"HTTP/1.1 xx\r\n\r\n").is_err());
    }

    #[test]
    fn percent_encoding_covers_reserved_bytes() {
        assert_eq!(percent_encode("a b/c=1&x"), "a%20b%2Fc%3D1%26x");
        assert_eq!(percent_encode("tenant-0.a_b~"), "tenant-0.a_b~");
    }
}
