//! Lake shards: routing, snapshots, and the bounded admission queue.
//!
//! Each shard owns one [`IntegrationSession`] confined to its writer
//! thread; everything other threads may touch lives here, split into two
//! halves with different locking disciplines:
//!
//! * the **admission queue** (`Mutex` + `Condvar`): bounded, rejecting at
//!   capacity so backpressure is explicit (the server turns a rejection
//!   into `429 Too Many Requests`), drained by the writer;
//! * the **published snapshot** (`RwLock<Arc<ShardSnapshot>>`): readers
//!   clone the `Arc` under a momentary read lock and then work entirely on
//!   their own handle, so a multi-second integration in the writer never
//!   blocks a query — the writer swaps in the next snapshot in O(1) after
//!   integrating *outside* any lock.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError, RwLock};

use fuzzy_fd_core::{IncrementalOutcome, IntegrationSession};
use lake_fd::IntegrationSchema;
use lake_store::{LakeStore, StoreStatus};
use lake_table::Table;

/// Routes a table group to a shard by FNV-1a hash of the group name.
///
/// Pure and stable across processes, so clients (and tests) can re-derive
/// placement without asking the server.
///
/// # Panics
/// Panics if `shards` is zero (a [`ServePolicy`](crate::ServePolicy) that
/// validated cannot have zero shards).
pub fn route_group(group: &str, shards: usize) -> usize {
    assert!(shards > 0, "shard count must be positive");
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in group.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (hash % shards as u64) as usize
}

/// An accepted ingest waiting for the shard's writer.
#[derive(Debug)]
pub struct IngestJob {
    /// Table group the client routed by.
    pub group: String,
    /// The table to append.
    pub table: Table,
    /// Durable log sequence number, assigned at admission on durable
    /// shards (`None` on in-memory shards).
    pub seq: Option<u64>,
}

/// Why [`Shard::try_ingest`] refused a job.
#[derive(Debug, PartialEq, Eq)]
pub enum IngestReject {
    /// The bounded admission queue is at capacity; carries the current
    /// depth for the `429` body.
    QueueFull(usize),
    /// The durable log append failed, so the ingest cannot be
    /// acknowledged (`202` promises durability); carries the store error.
    Wal(String),
    /// The shard's queue mutex is poisoned — a thread panicked while
    /// holding it.  Reads recover (the queue state is plain data; see
    /// the recovery policy on `Shard::queue_state`) and keep serving,
    /// but ingest refuses: a
    /// `202` promises the append will be applied, and a shard whose
    /// writer or a request thread just panicked mid-critical-section
    /// cannot make that promise.
    Poisoned,
}

/// An immutable, shareable view of a shard's lake at one version.
///
/// Published by the writer after every applied append; readers render all
/// query views from it without touching the session.  Built through
/// [`from_session`](Self::from_session) by the server *and* by the
/// integration tests, which replay the same tables through a direct
/// [`IntegrationSession`] and assert the rendered bytes match.
#[derive(Debug, Clone)]
pub struct ShardSnapshot {
    /// Monotone per-shard version: the number of appends applied so far.
    pub version: u64,
    /// The latest integration outcome (shared with the session's retained
    /// copy — an `Arc` bump, not a table copy).
    pub outcome: Arc<IncrementalOutcome>,
    /// Every table integrated so far, in arrival order.
    pub tables: Arc<Vec<Table>>,
    /// Source-column → integrated-column mapping of the latest call (feeds
    /// the per-cell provenance view).
    pub schema: Option<IntegrationSchema>,
    /// Session embedding-cache `(hits, misses)`, cumulative.
    pub embed_cache: (u64, u64),
    /// Session FD component-cache `(hits, misses)`, cumulative.
    pub fd_cache: (u64, u64),
}

impl ShardSnapshot {
    /// Captures the current state of `session` as version `version`.
    pub fn from_session(version: u64, session: &IntegrationSession) -> Self {
        ShardSnapshot {
            version,
            outcome: session.snapshot(),
            tables: Arc::new(session.tables().to_vec()),
            schema: session.schema().cloned(),
            embed_cache: session.embedding_stats(),
            fd_cache: session.fd_cache_stats(),
        }
    }
}

/// Mutable queue state behind the shard's mutex.
#[derive(Debug, Default)]
struct QueueState {
    jobs: VecDeque<IngestJob>,
    /// Whether the writer is currently integrating a popped job.
    busy: bool,
    /// Shutdown flag; the writer drains remaining jobs, then exits.
    stopping: bool,
    accepted: u64,
    rejected: u64,
    applied: u64,
    failed: u64,
}

/// A point-in-time external view of one shard, rendered by `/stats`.
#[derive(Debug, Clone)]
pub struct ShardStatus {
    /// Shard index.
    pub id: usize,
    /// Jobs waiting in the admission queue.
    pub queued: usize,
    /// Whether the writer is integrating right now.
    pub busy: bool,
    /// Ingests admitted to the queue, cumulative.
    pub accepted: u64,
    /// Ingests rejected with 429, cumulative.
    pub rejected: u64,
    /// Appends applied to the session, cumulative.
    pub applied: u64,
    /// Appends that failed integration (accepted but not applied).
    pub failed: u64,
    /// Durability counters of the shard's store (`None` on in-memory
    /// shards).
    pub durability: Option<StoreStatus>,
    /// The published snapshot (version, sizes, stats).
    pub snapshot: ShardSnapshot,
}

/// One lake shard: admission queue + published snapshot.
///
/// The owning [`IntegrationSession`] is *not* stored here — it is confined
/// to the shard's writer thread (see [`writer_loop`](crate::LakeServer)).
#[derive(Debug)]
pub struct Shard {
    id: usize,
    depth: usize,
    state: Mutex<QueueState>,
    work: Condvar,
    snapshot: RwLock<Arc<ShardSnapshot>>,
    /// The shard's durable store, when serving durably.  Lock order is
    /// `store` → `state`: admission holds the store lock across the log
    /// append *and* the queue push so log order equals apply order.
    store: Option<Mutex<LakeStore>>,
}

impl Shard {
    /// Creates shard `id` with a bounded queue of `depth` and an initial
    /// (empty-lake) snapshot.
    pub fn new(id: usize, depth: usize, initial: ShardSnapshot) -> Self {
        Shard {
            id,
            depth,
            state: Mutex::new(QueueState::default()),
            work: Condvar::new(),
            snapshot: RwLock::new(Arc::new(initial)),
            store: None,
        }
    }

    /// Creates a durable shard: every admitted ingest is logged to
    /// `store` before it is queued, and the writer replays the store's
    /// recovered records before draining.
    pub fn new_durable(id: usize, depth: usize, initial: ShardSnapshot, store: LakeStore) -> Self {
        let mut shard = Shard::new(id, depth, initial);
        shard.store = Some(Mutex::new(store));
        shard
    }

    /// Shard index.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Whether the shard logs ingests durably.
    pub fn is_durable(&self) -> bool {
        self.store.is_some()
    }

    /// Locks the queue state, recovering from poisoning.
    ///
    /// The state is plain data — a job deque and monotone counters.  A
    /// panic while the lock was held cannot tear an invariant worse than
    /// a momentarily incoherent `/stats` counter, and the shard must keep
    /// draining, reporting and shutting down even after a request thread
    /// panics, so every *read or writer-side* path recovers.  Admission
    /// is the exception: it checks [`Mutex::is_poisoned`] first and
    /// refuses (see [`IngestReject::Poisoned`]), because recovery leaves
    /// the poison flag set and a `202` durability promise should not be
    /// issued by a wounded shard.
    fn queue_state(&self) -> MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Runs `f` with exclusive access to the shard's store; `None` on
    /// in-memory shards.  Used by the writer (recovery replay,
    /// checkpoints) and the periodic flusher.
    ///
    /// Recovers from a poisoned store mutex: `LakeStore`'s consistency
    /// lives in its write-ahead log (appends are self-delimiting and
    /// re-validated on recovery), so a panic mid-operation risks a stale
    /// in-memory counter, not a torn log — and the flusher and shutdown
    /// checkpoint must keep running after a request panic.  Admission
    /// does *not* use this helper; it refuses a poisoned store outright
    /// ([`IngestReject::Wal`]) rather than promise durability over it.
    pub fn with_store<T>(&self, f: impl FnOnce(&mut LakeStore) -> T) -> Option<T> {
        self.store
            .as_ref()
            .map(|store| f(&mut store.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Admits `job` to the queue, or rejects it when the queue is full.
    ///
    /// On a durable shard the job is appended to the write-ahead log
    /// before it is queued, under the store lock, so a `202` means the
    /// table is durable (per the store's fsync policy) and log order is
    /// exactly apply order.  A full queue is checked first — a rejected
    /// ingest must leave no log record behind.
    ///
    /// Returns the queue depth after admission; the error carries either
    /// the current depth (for the 429 body) or the log failure.
    pub fn try_ingest(&self, mut job: IngestJob) -> Result<usize, IngestReject> {
        // Refuse before any side effect: a poisoned queue must not gain a
        // WAL record (the writer may never apply it), and a poisoned
        // store must not back a durability promise.
        if self.state.is_poisoned() {
            return Err(IngestReject::Poisoned);
        }
        let Some(store) = &self.store else { return self.admit(job) };
        let Ok(mut store) = store.lock() else {
            return Err(IngestReject::Wal(
                "shard store mutex poisoned; refusing to promise durability".to_string(),
            ));
        };
        // Capacity pre-check: holding the store lock keeps it valid (every
        // other durable admission needs this lock too; the writer only
        // shrinks the queue).
        {
            let mut state = self.queue_state();
            if state.jobs.len() >= self.depth {
                state.rejected += 1;
                return Err(IngestReject::QueueFull(state.jobs.len()));
            }
        }
        let seq = store
            .append(&job.group, &job.table, true)
            .map_err(|err| IngestReject::Wal(err.to_string()))?;
        job.seq = Some(seq);
        self.admit(job)
    }

    /// Queue admission proper (capacity check + push + wake).
    fn admit(&self, job: IngestJob) -> Result<usize, IngestReject> {
        if self.state.is_poisoned() {
            return Err(IngestReject::Poisoned);
        }
        let mut state = self.queue_state();
        if state.jobs.len() >= self.depth {
            state.rejected += 1;
            return Err(IngestReject::QueueFull(state.jobs.len()));
        }
        state.jobs.push_back(job);
        state.accepted += 1;
        let depth = state.jobs.len();
        drop(state);
        self.work.notify_one();
        Ok(depth)
    }

    /// Folds a recovery replay into the shard's counters so `/stats`
    /// stays coherent across restarts (`accepted == applied + failed +
    /// queued` keeps holding).
    pub fn record_recovery(&self, applied: u64, failed: u64) {
        let mut state = self.queue_state();
        state.accepted += applied + failed;
        state.applied += applied;
        state.failed += failed;
    }

    /// Blocks until a job is available or shutdown is requested.
    ///
    /// Returns `None` once stopping *and* drained — the writer exits then,
    /// so shutdown applies every admitted ingest before the server joins.
    /// Marks the shard busy when returning a job; the writer must call
    /// [`finish_job`](Self::finish_job) afterwards.
    pub fn next_job(&self) -> Option<IngestJob> {
        let mut state = self.queue_state();
        loop {
            if let Some(job) = state.jobs.pop_front() {
                state.busy = true;
                return Some(job);
            }
            if state.stopping {
                return None;
            }
            state = self.work.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Records the outcome of the job returned by [`next_job`](Self::next_job)
    /// and clears the busy flag.
    pub fn finish_job(&self, applied: bool) {
        let mut state = self.queue_state();
        if applied {
            state.applied += 1;
        } else {
            state.failed += 1;
        }
        state.busy = false;
    }

    /// Publishes a new snapshot (an O(1) pointer swap under the write
    /// lock).  Recovers from poisoning: the slot holds a plain `Arc`, and
    /// a pointer swap cannot be observed torn.
    pub fn publish(&self, snapshot: ShardSnapshot) {
        *self.snapshot.write().unwrap_or_else(PoisonError::into_inner) = Arc::new(snapshot);
    }

    /// The current published snapshot (an `Arc` clone under a momentary
    /// read lock; never blocks on an in-flight integration).  Recovers
    /// from poisoning — queries must keep serving the last good snapshot
    /// even after a panic elsewhere on the shard.
    pub fn read_snapshot(&self) -> Arc<ShardSnapshot> {
        Arc::clone(&self.snapshot.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Requests writer shutdown (drain-then-exit) and wakes it.
    pub fn stop(&self) {
        self.queue_state().stopping = true;
        self.work.notify_all();
    }

    /// The current external view of this shard.
    pub fn status(&self) -> ShardStatus {
        let snapshot = self.read_snapshot();
        let durability = self.with_store(|store| store.status());
        let state = self.queue_state();
        ShardStatus {
            id: self.id,
            queued: state.jobs.len(),
            busy: state.busy,
            accepted: state.accepted,
            rejected: state.rejected,
            applied: state.applied,
            failed: state.failed,
            durability,
            snapshot: (*snapshot).clone(),
        }
    }

    /// Deliberately poisons the queue mutex, simulating a thread that
    /// panicked while holding it.  Test-only hook (used by the degraded-
    /// shard regression tests to drive the [`IngestReject::Poisoned`] →
    /// `500` path over a real socket); hidden from docs, never called by
    /// serving code.
    #[doc(hidden)]
    pub fn poison_queue_for_test(&self) {
        let poisoner = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = self.queue_state();
            // lint:allow(serve-panic-path): deliberate poison injection — the unwind is caught on the line below and never crosses a request thread
            panic!("deliberate queue poisoning (test hook)");
        }));
        assert!(poisoner.is_err(), "the poisoning closure must panic");
        assert!(self.state.is_poisoned(), "queue mutex should now be poisoned");
    }
}

#[cfg(test)]
mod tests {
    use fuzzy_fd_core::FuzzyFdConfig;

    use super::*;

    fn empty_snapshot() -> ShardSnapshot {
        let session = IntegrationSession::begin(FuzzyFdConfig::default(), &[]).unwrap();
        ShardSnapshot::from_session(0, &session)
    }

    fn job(name: &str) -> IngestJob {
        let table = lake_table::TableBuilder::new(name, ["c"]).row(["v"]).build().unwrap();
        IngestJob { group: "g".into(), table, seq: None }
    }

    #[test]
    fn routing_is_deterministic_and_in_range() {
        for shards in [1, 2, 7] {
            for group in ["alpha", "beta", "tenant-42", ""] {
                let shard = route_group(group, shards);
                assert!(shard < shards);
                assert_eq!(shard, route_group(group, shards));
            }
        }
        // Distinct groups should not all collapse onto one shard.
        let hits: std::collections::HashSet<usize> =
            (0..32).map(|i| route_group(&format!("g{i}"), 4)).collect();
        assert!(hits.len() > 1);
    }

    #[test]
    fn queue_rejects_at_capacity() {
        let shard = Shard::new(0, 2, empty_snapshot());
        assert_eq!(shard.try_ingest(job("a")), Ok(1));
        assert_eq!(shard.try_ingest(job("b")), Ok(2));
        assert_eq!(shard.try_ingest(job("c")), Err(IngestReject::QueueFull(2)));
        let status = shard.status();
        assert_eq!((status.accepted, status.rejected), (2, 1));
    }

    #[test]
    fn next_job_drains_then_honours_stop() {
        let shard = Shard::new(0, 4, empty_snapshot());
        shard.try_ingest(job("a")).unwrap();
        shard.stop();
        assert!(shard.next_job().is_some());
        shard.finish_job(true);
        assert!(shard.next_job().is_none());
        assert_eq!(shard.status().applied, 1);
    }

    #[test]
    fn durable_admission_logs_before_queueing_and_rejections_leave_no_record() {
        let dir =
            std::env::temp_dir().join(format!("lake-serve-shard-durable-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = LakeStore::open(&dir, lake_store::StorePolicy::default()).unwrap();
        let shard = Shard::new_durable(0, 2, empty_snapshot(), store);
        assert!(shard.is_durable());

        assert_eq!(shard.try_ingest(job("a")), Ok(1));
        assert_eq!(shard.try_ingest(job("b")), Ok(2));
        // Full queue: rejected *before* the log append, so no orphan record.
        assert_eq!(shard.try_ingest(job("c")), Err(IngestReject::QueueFull(2)));
        assert_eq!(shard.with_store(|s| s.next_seq()), Some(2));

        // Jobs carry the log sequence they were admitted under, in order.
        shard.stop();
        assert_eq!(shard.next_job().unwrap().seq, Some(0));
        shard.finish_job(true);
        assert_eq!(shard.next_job().unwrap().seq, Some(1));
        shard.finish_job(true);
        assert!(shard.status().durability.is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn poisoned_queue_refuses_ingest_but_keeps_reads_and_shutdown_alive() {
        let shard = Shard::new(0, 4, empty_snapshot());
        shard.try_ingest(job("before")).unwrap();
        shard.poison_queue_for_test();

        // Ingest refuses: no new durability promises from a wounded shard.
        assert_eq!(shard.try_ingest(job("after")), Err(IngestReject::Poisoned));

        // Reads recover: status and snapshots still serve.
        let status = shard.status();
        assert_eq!(status.queued, 1);
        assert_eq!(shard.read_snapshot().version, 0);

        // The writer-side path still drains and shuts down cleanly.
        shard.stop();
        assert!(shard.next_job().is_some());
        shard.finish_job(true);
        assert!(shard.next_job().is_none());
    }

    #[test]
    fn publish_swaps_reader_snapshot() {
        let shard = Shard::new(3, 4, empty_snapshot());
        assert_eq!(shard.read_snapshot().version, 0);
        let mut next = empty_snapshot();
        next.version = 7;
        shard.publish(next);
        assert_eq!(shard.read_snapshot().version, 7);
        assert_eq!(shard.status().snapshot.version, 7);
    }
}
