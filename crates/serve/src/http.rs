//! Minimal HTTP/1.1 framing over `std::net`.
//!
//! The build environment has no registry access, so there is no tokio or
//! hyper to lean on; this module hand-rolls exactly the subset of RFC 9112
//! the wire protocol needs: request-line + headers + `Content-Length`
//! framed bodies, and `Connection: close` responses.  Chunked transfer
//! encoding, keep-alive and HTTP/2 are deliberately out of scope — one
//! request per connection keeps reader threads stateless.
//!
//! Limits are enforced before any allocation proportional to the input:
//! headers are capped at 16 KiB and bodies at 16 MiB, so a hostile client
//! cannot balloon a reader's memory.

use std::io::{self, Read, Write};

/// Maximum accepted size of the request line + headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Maximum accepted request body size.
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Request method, uppercased by the client (`GET`, `POST`, …).
    pub method: String,
    /// Decoded path component of the request target (no query string).
    pub path: String,
    /// Decoded query parameters, in order of appearance.
    pub query: Vec<(String, String)>,
    /// Headers with lowercased names, in order of appearance.
    pub headers: Vec<(String, String)>,
    /// Raw request body (`Content-Length` framed).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// First query parameter with the given name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }
}

/// How reading a request failed, mapped to a response status by the server.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request → `400`.
    BadRequest(String),
    /// Head or body over the caps → `431` / `413`.
    TooLarge(&'static str),
    /// Socket-level failure (no response possible).
    Io(io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            HttpError::TooLarge(what) => write!(f, "{what} too large"),
            HttpError::Io(err) => write!(f, "socket error: {err}"),
        }
    }
}

/// Reads and parses one request from `stream`.
///
/// Generic over [`Read`] so the framing logic is unit-testable without a
/// socket; the server instantiates it with a `TcpStream`.  The head scan
/// resumes from the previous buffer tail (a terminator can only start in
/// the last three bytes already seen), so a trickle-fed head costs O(n),
/// and reads are capped so the head buffer never exceeds
/// [`MAX_HEAD_BYTES`].
pub fn read_request<S: Read>(stream: &mut S) -> Result<Request, HttpError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let mut scanned = 0;
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf, scanned) {
            break pos;
        }
        scanned = buf.len().saturating_sub(3);
        if buf.len() >= MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge("request head"));
        }
        let limit = chunk.len().min(MAX_HEAD_BYTES - buf.len());
        let n = stream.read(&mut chunk[..limit]).map_err(HttpError::Io)?;
        if n == 0 {
            return Err(HttpError::BadRequest("connection closed mid-head".into()));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::BadRequest("non-UTF-8 request head".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(HttpError::BadRequest("malformed request line".into())),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::BadRequest(format!("unsupported version {version}")));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadRequest(format!("malformed header line {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    if headers.iter().any(|(k, _)| k == "transfer-encoding") {
        return Err(HttpError::BadRequest("chunked bodies are not supported".into()));
    }

    let mut declared_length: Option<&str> = None;
    for (name, value) in &headers {
        if name == "content-length" {
            match declared_length {
                Some(prev) if prev != value => {
                    return Err(HttpError::BadRequest(
                        "conflicting duplicate content-length headers".into(),
                    ));
                }
                _ => declared_length = Some(value),
            }
        }
    }
    let content_length = match declared_length {
        None => 0,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::BadRequest("unparseable content-length".into()))?,
    };
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge("request body"));
    }

    let body_start = head_end + 4;
    let mut body: Vec<u8> = buf[body_start.min(buf.len())..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(HttpError::Io)?;
        if n == 0 {
            return Err(HttpError::BadRequest("connection closed mid-body".into()));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);

    let (path, query) = parse_target(target)?;
    Ok(Request { method: method.to_string(), path, query, headers, body })
}

/// Index of the `\r\n\r\n` separator, if fully buffered.
///
/// `from` is how far previous scans already got; a terminator cannot start
/// in a region that was fully scanned before, so rescans stay O(1) per new
/// chunk instead of O(buffer).
fn find_head_end(buf: &[u8], from: usize) -> Option<usize> {
    buf[from..].windows(4).position(|w| w == b"\r\n\r\n").map(|pos| pos + from)
}

/// Splits a request target into decoded path + query pairs.
///
/// `+`-as-space applies only to query keys and values
/// (`application/x-www-form-urlencoded` convention); in the path component
/// `+` is a literal character per RFC 3986.
fn parse_target(target: &str) -> Result<(String, Vec<(String, String)>), HttpError> {
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path = percent_decode(raw_path, false)?;
    let mut query = Vec::new();
    if let Some(raw_query) = raw_query {
        for pair in raw_query.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            query.push((percent_decode(k, true)?, percent_decode(v, true)?));
        }
    }
    Ok((path, query))
}

/// Decodes `%XX` escapes in a target component; `+` becomes a space only
/// when `plus_as_space` is set (query components, never the path).
fn percent_decode(s: &str, plus_as_space: bool) -> Result<String, HttpError> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| std::str::from_utf8(h).ok())
                    .and_then(|h| u8::from_str_radix(h, 16).ok())
                    .ok_or_else(|| HttpError::BadRequest("malformed percent escape".into()))?;
                out.push(hex);
                i += 3;
            }
            b'+' if plus_as_space => {
                out.push(b' ');
                i += 1;
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| HttpError::BadRequest("non-UTF-8 percent escape".into()))
}

/// An HTTP response ready to serialize.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// JSON body.
    pub body: String,
    /// Optional `Retry-After` header (seconds), used by `429` responses.
    pub retry_after: Option<u32>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response { status, body: body.into(), retry_after: None }
    }

    /// Attaches a `Retry-After` header.
    pub fn with_retry_after(mut self, seconds: u32) -> Self {
        self.retry_after = Some(seconds);
        self
    }

    /// Serializes the response (status line, headers, body) onto `w`.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        let reason = reason_phrase(self.status);
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            reason,
            self.body.len(),
        );
        if let Some(seconds) = self.retry_after {
            head.push_str(&format!("Retry-After: {seconds}\r\n"));
        }
        head.push_str("\r\n");
        w.write_all(head.as_bytes())?;
        w.write_all(self.body.as_bytes())?;
        w.flush()
    }
}

/// Reason phrase for the status codes the protocol uses.
fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A [`Read`] that hands out at most `step` bytes per call, simulating
    /// a client trickling the request onto the socket.
    struct Trickle {
        data: Vec<u8>,
        pos: usize,
        step: usize,
        reads: usize,
    }

    impl Trickle {
        fn new(data: impl Into<Vec<u8>>, step: usize) -> Self {
            Trickle { data: data.into(), pos: 0, step, reads: 0 }
        }
    }

    impl Read for Trickle {
        fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
            self.reads += 1;
            let n = self.step.min(self.data.len() - self.pos).min(out.len());
            out[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn parses_targets() {
        let (path, query) = parse_target("/query?group=g%201&view=table&flag").unwrap();
        assert_eq!(path, "/query");
        assert_eq!(
            query,
            vec![
                ("group".into(), "g 1".into()),
                ("view".into(), "table".into()),
                ("flag".into(), String::new()),
            ]
        );
        assert!(parse_target("/x%zz").is_err());
    }

    #[test]
    fn decodes_plus_and_percent() {
        assert_eq!(percent_decode("a+b%2Fc", true).unwrap(), "a b/c");
        assert_eq!(percent_decode("a+b%2Fc", false).unwrap(), "a+b/c");
    }

    #[test]
    fn plus_is_literal_in_paths_but_space_in_queries() {
        let (path, query) = parse_target("/c++/docs?group=a+b&tag=c%2Bd").unwrap();
        assert_eq!(path, "/c++/docs");
        assert_eq!(query, vec![("group".into(), "a b".into()), ("tag".into(), "c+d".into())]);
    }

    #[test]
    fn conflicting_duplicate_content_lengths_are_rejected() {
        let raw = "POST /ingest HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\nhi!";
        let err = read_request(&mut Trickle::new(raw, 4096)).unwrap_err();
        assert!(
            matches!(err, HttpError::BadRequest(ref m) if m.contains("content-length")),
            "{err}"
        );
    }

    #[test]
    fn identical_duplicate_content_lengths_are_tolerated() {
        let raw = "POST /ingest HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nhi";
        let request = read_request(&mut Trickle::new(raw, 4096)).unwrap();
        assert_eq!(request.body, b"hi");
    }

    #[test]
    fn slow_trickle_head_is_parsed_in_linear_passes() {
        let filler = "x".repeat(8 * 1024);
        let raw = format!("GET /health HTTP/1.1\r\nX-Filler: {filler}\r\nHost: t\r\n\r\n");
        let mut stream = Trickle::new(raw.clone(), 1);
        let request = read_request(&mut stream).unwrap();
        assert_eq!(request.path, "/health");
        assert_eq!(request.header("host"), Some("t"));
        assert_eq!(stream.reads, raw.len());
    }

    #[test]
    fn terminator_split_across_chunks_is_found() {
        for step in [1, 2, 3, 5] {
            let raw = "GET /q HTTP/1.1\r\nHost: t\r\n\r\n";
            let request = read_request(&mut Trickle::new(raw, step)).unwrap();
            assert_eq!(request.path, "/q");
        }
    }

    #[test]
    fn head_cap_is_enforced_exactly() {
        // An unterminated head: the reader must give up with 431 once (and
        // only once) MAX_HEAD_BYTES are buffered, never over-reading.
        let raw = format!("GET /q HTTP/1.1\r\nX-Filler: {}", "y".repeat(2 * MAX_HEAD_BYTES));
        let mut stream = Trickle::new(raw, 4096);
        let err = read_request(&mut stream).unwrap_err();
        assert!(matches!(err, HttpError::TooLarge("request head")), "{err}");
        assert_eq!(stream.pos, MAX_HEAD_BYTES, "reader consumed bytes past the head cap");

        // A head that fits exactly under the cap still parses, with the
        // body following intact.
        let head = "POST /ingest HTTP/1.1\r\nContent-Length: 4\r\nX-Pad: ";
        let pad = "p".repeat(MAX_HEAD_BYTES - head.len() - 4);
        let raw = format!("{head}{pad}\r\n\r\nbody");
        let request = read_request(&mut Trickle::new(raw, 4096)).unwrap();
        assert_eq!(request.body, b"body");
    }

    #[test]
    fn response_serializes_with_framing() {
        let mut out = Vec::new();
        Response::json(429, "{}").with_retry_after(2).write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Retry-After: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
