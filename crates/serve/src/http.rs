//! Minimal HTTP/1.1 framing over `std::net`.
//!
//! The build environment has no registry access, so there is no tokio or
//! hyper to lean on; this module hand-rolls exactly the subset of RFC 9112
//! the wire protocol needs: request-line + headers + `Content-Length`
//! framed bodies, and `Connection: close` responses.  Chunked transfer
//! encoding, keep-alive and HTTP/2 are deliberately out of scope — one
//! request per connection keeps reader threads stateless.
//!
//! Limits are enforced before any allocation proportional to the input:
//! headers are capped at 16 KiB and bodies at 16 MiB, so a hostile client
//! cannot balloon a reader's memory.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Maximum accepted size of the request line + headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Maximum accepted request body size.
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Request method, uppercased by the client (`GET`, `POST`, …).
    pub method: String,
    /// Decoded path component of the request target (no query string).
    pub path: String,
    /// Decoded query parameters, in order of appearance.
    pub query: Vec<(String, String)>,
    /// Headers with lowercased names, in order of appearance.
    pub headers: Vec<(String, String)>,
    /// Raw request body (`Content-Length` framed).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// First query parameter with the given name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }
}

/// How reading a request failed, mapped to a response status by the server.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request → `400`.
    BadRequest(String),
    /// Head or body over the caps → `431` / `413`.
    TooLarge(&'static str),
    /// Socket-level failure (no response possible).
    Io(io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            HttpError::TooLarge(what) => write!(f, "{what} too large"),
            HttpError::Io(err) => write!(f, "socket error: {err}"),
        }
    }
}

/// Reads and parses one request from `stream`.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge("request head"));
        }
        let n = stream.read(&mut chunk).map_err(HttpError::Io)?;
        if n == 0 {
            return Err(HttpError::BadRequest("connection closed mid-head".into()));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::BadRequest("non-UTF-8 request head".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(HttpError::BadRequest("malformed request line".into())),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::BadRequest(format!("unsupported version {version}")));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadRequest(format!("malformed header line {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    if headers.iter().any(|(k, _)| k == "transfer-encoding") {
        return Err(HttpError::BadRequest("chunked bodies are not supported".into()));
    }

    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        None => 0,
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| HttpError::BadRequest("unparseable content-length".into()))?,
    };
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge("request body"));
    }

    let body_start = head_end + 4;
    let mut body: Vec<u8> = buf[body_start.min(buf.len())..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(HttpError::Io)?;
        if n == 0 {
            return Err(HttpError::BadRequest("connection closed mid-body".into()));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);

    let (path, query) = parse_target(target)?;
    Ok(Request { method: method.to_string(), path, query, headers, body })
}

/// Index of the `\r\n\r\n` separator, if fully buffered.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Splits a request target into decoded path + query pairs.
fn parse_target(target: &str) -> Result<(String, Vec<(String, String)>), HttpError> {
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path = percent_decode(raw_path)?;
    let mut query = Vec::new();
    if let Some(raw_query) = raw_query {
        for pair in raw_query.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            query.push((percent_decode(k)?, percent_decode(v)?));
        }
    }
    Ok((path, query))
}

/// Decodes `%XX` escapes and `+`-as-space in a target component.
fn percent_decode(s: &str) -> Result<String, HttpError> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| std::str::from_utf8(h).ok())
                    .and_then(|h| u8::from_str_radix(h, 16).ok())
                    .ok_or_else(|| HttpError::BadRequest("malformed percent escape".into()))?;
                out.push(hex);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| HttpError::BadRequest("non-UTF-8 percent escape".into()))
}

/// An HTTP response ready to serialize.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// JSON body.
    pub body: String,
    /// Optional `Retry-After` header (seconds), used by `429` responses.
    pub retry_after: Option<u32>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response { status, body: body.into(), retry_after: None }
    }

    /// Attaches a `Retry-After` header.
    pub fn with_retry_after(mut self, seconds: u32) -> Self {
        self.retry_after = Some(seconds);
        self
    }

    /// Serializes the response (status line, headers, body) onto `w`.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        let reason = reason_phrase(self.status);
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            reason,
            self.body.len(),
        );
        if let Some(seconds) = self.retry_after {
            head.push_str(&format!("Retry-After: {seconds}\r\n"));
        }
        head.push_str("\r\n");
        w.write_all(head.as_bytes())?;
        w.write_all(self.body.as_bytes())?;
        w.flush()
    }
}

/// Reason phrase for the status codes the protocol uses.
fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_targets() {
        let (path, query) = parse_target("/query?group=g%201&view=table&flag").unwrap();
        assert_eq!(path, "/query");
        assert_eq!(
            query,
            vec![
                ("group".into(), "g 1".into()),
                ("view".into(), "table".into()),
                ("flag".into(), String::new()),
            ]
        );
        assert!(parse_target("/x%zz").is_err());
    }

    #[test]
    fn decodes_plus_and_percent() {
        assert_eq!(percent_decode("a+b%2Fc").unwrap(), "a b/c");
    }

    #[test]
    fn response_serializes_with_framing() {
        let mut out = Vec::new();
        Response::json(429, "{}").with_retry_after(2).write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Retry-After: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
