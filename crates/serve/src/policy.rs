//! Serving configuration, validated like
//! [`FuzzyFdConfig`].

use fuzzy_fd_core::FuzzyFdConfig;

/// Configuration of a [`LakeServer`](crate::LakeServer) instance.
///
/// Sizing semantics follow the rest of the workspace: every count is an
/// explicit command, never a hint, and [`validate`](Self::validate) rejects
/// configurations the server cannot honour instead of silently clamping
/// them.  See `docs/OPERATIONS.md` for guidance on choosing values.
///
/// # Examples
///
/// ```
/// use lake_serve::ServePolicy;
///
/// let policy = ServePolicy { shards: 4, queue_depth: 8, ..ServePolicy::default() };
/// assert!(policy.validate().is_ok());
///
/// let broken = ServePolicy { shards: 0, ..ServePolicy::default() };
/// assert!(broken.validate().unwrap_err().contains("shards"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServePolicy {
    /// Number of lake shards.  Each shard owns one
    /// [`IntegrationSession`](fuzzy_fd_core::IntegrationSession) drained by
    /// a dedicated writer thread; table groups are routed to shards by name
    /// hash ([`route_group`](crate::route_group)).
    pub shards: usize,
    /// Bounded admission-queue depth per shard.  An ingest arriving at a
    /// full queue is rejected with `429 Too Many Requests` instead of
    /// queueing unboundedly.
    pub queue_depth: usize,
    /// Number of reader threads serving queries, health and stats.  Readers
    /// only ever clone the shard's published snapshot handle, so they never
    /// block on (or be blocked by) writers.
    pub readers: usize,
    /// Advisory `Retry-After` (seconds) attached to `429` responses.
    pub retry_after_secs: u32,
    /// Integration configuration handed to every shard's session.
    pub integration: FuzzyFdConfig,
}

impl Default for ServePolicy {
    /// Two shards, depth-64 queues, two readers, 1-second retry hint,
    /// default integration config.
    fn default() -> Self {
        ServePolicy {
            shards: 2,
            queue_depth: 64,
            readers: 2,
            retry_after_secs: 1,
            integration: FuzzyFdConfig::default(),
        }
    }
}

impl ServePolicy {
    /// Validates the policy, returning a human-readable description of the
    /// first problem found (same contract as [`FuzzyFdConfig::validate`]).
    pub fn validate(&self) -> Result<(), String> {
        if self.shards == 0 {
            return Err("shards must be at least 1".to_string());
        }
        if self.shards > 1024 {
            return Err(format!("shards must be at most 1024, got {}", self.shards));
        }
        if self.queue_depth == 0 {
            return Err("queue_depth must be at least 1".to_string());
        }
        if self.readers == 0 {
            return Err("readers must be at least 1".to_string());
        }
        if self.readers > 1024 {
            return Err(format!("readers must be at most 1024, got {}", self.readers));
        }
        self.integration.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_valid() {
        assert_eq!(ServePolicy::default().validate(), Ok(()));
    }

    #[test]
    fn zero_counts_are_rejected() {
        for (field, policy) in [
            ("shards", ServePolicy { shards: 0, ..ServePolicy::default() }),
            ("queue_depth", ServePolicy { queue_depth: 0, ..ServePolicy::default() }),
            ("readers", ServePolicy { readers: 0, ..ServePolicy::default() }),
        ] {
            let err = policy.validate().unwrap_err();
            assert!(err.contains(field), "error {err:?} does not name {field}");
        }
    }

    #[test]
    fn absurd_counts_are_rejected() {
        assert!(ServePolicy { shards: 5000, ..ServePolicy::default() }.validate().is_err());
        assert!(ServePolicy { readers: 5000, ..ServePolicy::default() }.validate().is_err());
    }

    #[test]
    fn invalid_integration_config_propagates() {
        let policy = ServePolicy {
            integration: FuzzyFdConfig::with_theta(f32::NAN),
            ..ServePolicy::default()
        };
        assert!(policy.validate().is_err());
    }
}
