//! The JSON wire format: request parsing and response rendering.
//!
//! Every body the server emits is produced by a function in this module,
//! and the functions are public on purpose: `tests/serve_integration.rs`
//! replays the same tables through a direct
//! [`IntegrationSession`](fuzzy_fd_core::IntegrationSession) and asserts
//! the rendered bytes are identical to what came over the socket.  That
//! byte-for-byte check only works because rendering is deterministic —
//! object keys are emitted in a fixed order, floats use round-trippable
//! formatting, and nothing timing-dependent (durations, busy-nanos)
//! appears in `/query` bodies.  Timing-dependent counters are confined to
//! `/stats`, which is observability, not data.
//!
//! The full schema of every body is documented in `docs/PROTOCOL.md`.

use serde::Content;
use serde_json::Value as Json;

use lake_fd::{IntegratedTable, IntegratedTuple};
use lake_table::{Schema, Table, Value};

use crate::shard::{ShardSnapshot, ShardStatus};
use crate::ServePolicy;

/// A decoded `POST /ingest` body.
#[derive(Debug)]
pub struct IngestRequest {
    /// Routing key: tables of one group land on one shard.
    pub group: String,
    /// The decoded table.
    pub table: Table,
}

/// Parses a `POST /ingest` body.
///
/// Expected shape (see `docs/PROTOCOL.md`):
/// `{"group": "...", "table": {"name": "...", "columns": ["..."], "rows": [[cell, ...], ...]}}`
/// where a cell is a JSON string, integer, float, bool or null (mapping to
/// the workspace [`Value`] variants).  Every failure is reported as a
/// human-readable message the server returns in a `400` body.
pub fn parse_ingest(body: &[u8]) -> Result<IngestRequest, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let doc = serde_json::from_str(text).map_err(|err| format!("invalid JSON: {err}"))?;
    let group =
        doc.get("group").and_then(Json::as_str).ok_or("missing string field `group`")?.to_string();
    if group.is_empty() {
        return Err("`group` must not be empty".to_string());
    }
    let spec = doc.get("table").ok_or("missing object field `table`")?;
    let name =
        spec.get("name").and_then(Json::as_str).ok_or("missing string field `table.name`")?;
    if name.is_empty() {
        return Err("`table.name` must not be empty".to_string());
    }
    let columns = spec
        .get("columns")
        .and_then(Json::as_array)
        .ok_or("missing array field `table.columns`")?;
    if columns.is_empty() {
        return Err("`table.columns` must not be empty".to_string());
    }
    let names: Vec<&str> = columns
        .iter()
        .map(|c| c.as_str().ok_or("`table.columns` entries must be strings"))
        .collect::<Result<_, _>>()?;
    let schema = Schema::from_names(names).map_err(|err| format!("invalid schema: {err}"))?;
    let mut table = Table::new(name, schema);
    let rows =
        spec.get("rows").and_then(Json::as_array).ok_or("missing array field `table.rows`")?;
    for (i, row) in rows.iter().enumerate() {
        let cells = row.as_array().ok_or_else(|| format!("`table.rows[{i}]` must be an array"))?;
        let values = cells
            .iter()
            .map(|cell| {
                decode_cell(cell).ok_or_else(|| format!("unsupported cell in `table.rows[{i}]`"))
            })
            .collect::<Result<Vec<Value>, String>>()?;
        table.push_row(values).map_err(|err| format!("`table.rows[{i}]`: {err}"))?;
    }
    table.infer_column_types();
    Ok(IngestRequest { group, table })
}

/// Maps a JSON cell to a workspace [`Value`] (objects/arrays are rejected).
fn decode_cell(cell: &Json) -> Option<Value> {
    Some(match cell {
        Json::Null => Value::Null,
        Json::Bool(b) => Value::Bool(*b),
        Json::String(s) => Value::Text(s.clone()),
        Json::Number(n) => match n.as_i64() {
            Some(i) => Value::Int(i),
            None => Value::Float(n.as_f64()),
        },
        Json::Array(_) | Json::Object(_) => return None,
    })
}

/// Renders the `POST /ingest` body for `table` (the client-side inverse of
/// [`parse_ingest`]).
pub fn ingest_body(group: &str, table: &Table) -> String {
    let columns: Vec<Content> =
        table.schema().names().iter().map(|n| Content::Str((*n).to_string())).collect();
    let rows: Vec<Content> = table
        .rows()
        .iter()
        .map(|row| Content::Seq(row.iter().map(cell_content).collect()))
        .collect();
    let table_obj = Content::Map(vec![
        ("name".into(), Content::Str(table.name().to_string())),
        ("columns".into(), Content::Seq(columns)),
        ("rows".into(), Content::Seq(rows)),
    ]);
    render(Content::Map(vec![
        ("group".into(), Content::Str(group.to_string())),
        ("table".into(), table_obj),
    ]))
}

/// The three `GET /query` projections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryView {
    /// The integrated table with per-tuple provenance ids.
    Table,
    /// The deterministic counters of the latest integration report.
    Report,
    /// The integrated table with per-cell source attribution.
    Provenance,
}

impl QueryView {
    /// Parses the `view` query parameter (`None` defaults to `table`).
    pub fn parse(raw: Option<&str>) -> Result<Self, String> {
        match raw {
            None | Some("table") => Ok(QueryView::Table),
            Some("report") => Ok(QueryView::Report),
            Some("provenance") => Ok(QueryView::Provenance),
            Some(other) => {
                Err(format!("unknown view `{other}` (expected table, report or provenance)"))
            }
        }
    }

    /// The wire name of the view.
    pub fn name(&self) -> &'static str {
        match self {
            QueryView::Table => "table",
            QueryView::Report => "report",
            QueryView::Provenance => "provenance",
        }
    }
}

/// Renders a `GET /query` response body for one shard snapshot.
///
/// Fully deterministic in the snapshot: the integration tests compare
/// these bytes against a server round-trip.
pub fn query_body(view: QueryView, shard: usize, snapshot: &ShardSnapshot) -> String {
    let mut fields = vec![
        ("shard".into(), Content::U64(shard as u64)),
        ("version".into(), Content::U64(snapshot.version)),
        ("view".into(), Content::Str(view.name().to_string())),
        (
            "lake_tables".into(),
            Content::Seq(
                snapshot.tables.iter().map(|t| Content::Str(t.name().to_string())).collect(),
            ),
        ),
    ];
    match view {
        QueryView::Table => {
            fields.push(("table".into(), table_content(&snapshot.outcome.table)));
        }
        QueryView::Report => {
            fields.push(("report".into(), report_content(snapshot)));
        }
        QueryView::Provenance => {
            fields.push(("table".into(), provenance_content(snapshot)));
        }
    }
    render(Content::Map(fields))
}

/// The integrated table as `{"columns": [...], "tuples": [...]}` with each
/// tuple carrying its provenance ids and cells.
fn table_content(table: &IntegratedTable) -> Content {
    let columns: Vec<Content> = table.columns().iter().map(|c| Content::Str(c.clone())).collect();
    let tuples: Vec<Content> = table
        .tuples()
        .iter()
        .map(|tuple| {
            Content::Map(vec![
                ("tids".into(), tids_content(tuple)),
                ("cells".into(), Content::Seq(tuple.values().iter().map(cell_content).collect())),
            ])
        })
        .collect();
    Content::Map(vec![
        ("columns".into(), Content::Seq(columns)),
        ("tuples".into(), Content::Seq(tuples)),
    ])
}

/// Per-cell source attribution: which base tuples contributed a value to
/// each integrated cell, derived from the integration schema's
/// source-column mapping.  A source is attributed when its base table has a
/// non-null cell in a column that maps to the integrated column — the base
/// value itself may since have been rewritten to a group representative.
fn provenance_content(snapshot: &ShardSnapshot) -> Content {
    let table = &snapshot.outcome.table;
    let index: std::collections::HashMap<&str, usize> =
        snapshot.tables.iter().enumerate().map(|(i, t)| (t.name(), i)).collect();
    let columns: Vec<Content> = table.columns().iter().map(|c| Content::Str(c.clone())).collect();
    let tuples: Vec<Content> = table
        .tuples()
        .iter()
        .map(|tuple| {
            let cells: Vec<Content> = (0..table.columns().len())
                .map(|col| {
                    let mut sources = Vec::new();
                    if let Some(schema) = &snapshot.schema {
                        for tid in tuple.provenance().iter() {
                            let Some(&t) = index.get(tid.table.as_str()) else { continue };
                            let base = &snapshot.tables[t];
                            for c in 0..base.num_columns() {
                                if schema.integrated_column(t, c) == col
                                    && !matches!(base.rows()[tid.row][c], Value::Null)
                                {
                                    sources.push(Content::Str(tid.to_string()));
                                    break;
                                }
                            }
                        }
                    }
                    Content::Map(vec![
                        ("value".into(), cell_content(tuple.value(col))),
                        ("sources".into(), Content::Seq(sources)),
                    ])
                })
                .collect();
            Content::Map(vec![
                ("tids".into(), tids_content(tuple)),
                ("cells".into(), Content::Seq(cells)),
            ])
        })
        .collect();
    Content::Map(vec![
        ("columns".into(), Content::Seq(columns)),
        ("tuples".into(), Content::Seq(tuples)),
    ])
}

/// The deterministic counters of the latest integration, grouped by
/// pipeline stage.  Durations and scheduler busy-nanos are deliberately
/// absent (see the module docs); they live in `/stats`.
fn report_content(snapshot: &ShardSnapshot) -> Content {
    let report = &snapshot.outcome.report;
    let blocking = &report.blocking;
    let fd = &report.fd_stats;
    let inc = &snapshot.outcome.incremental;
    Content::Map(vec![
        ("tables".into(), Content::U64(snapshot.tables.len() as u64)),
        ("tuples".into(), Content::U64(snapshot.outcome.table.len() as u64)),
        (
            "pipeline".into(),
            Content::Map(vec![
                ("aligned_sets".into(), Content::U64(report.aligned_sets as u64)),
                ("value_groups".into(), Content::U64(report.value_groups as u64)),
                ("matched_groups".into(), Content::U64(report.matched_groups as u64)),
                ("rewritten_cells".into(), Content::U64(report.rewritten_cells as u64)),
            ]),
        ),
        (
            "blocking".into(),
            Content::Map(vec![
                ("folds".into(), Content::U64(blocking.folds as u64)),
                ("escalated_folds".into(), Content::U64(blocking.escalated_folds as u64)),
                ("blocks".into(), Content::U64(blocking.blocks as u64)),
                ("candidate_pairs".into(), Content::U64(blocking.candidate_pairs as u64)),
                ("scored_pairs".into(), Content::U64(blocking.scored_pairs as u64)),
                ("pruned_pairs".into(), Content::U64(blocking.pruned_pairs as u64)),
                ("split_components".into(), Content::U64(blocking.split_components as u64)),
                ("severed_pairs".into(), Content::U64(blocking.severed_pairs as u64)),
                ("max_block_size".into(), Content::U64(blocking.max_block_size as u64)),
            ]),
        ),
        (
            "fd".into(),
            Content::Map(vec![
                ("input_tuples".into(), Content::U64(fd.input_tuples as u64)),
                ("output_tuples".into(), Content::U64(fd.output_tuples as u64)),
                ("components".into(), Content::U64(fd.components as u64)),
                ("largest_component".into(), Content::U64(fd.largest_component as u64)),
                ("reused_components".into(), Content::U64(fd.reused_components as u64)),
            ]),
        ),
        (
            "incremental".into(),
            Content::Map(vec![
                ("appended_tables".into(), Content::U64(inc.appended_tables as u64)),
                ("refolded_sets".into(), Content::U64(inc.refolded_sets as u64)),
                ("rebuilt_sets".into(), Content::U64(inc.rebuilt_sets as u64)),
                ("reused_sets".into(), Content::U64(inc.reused_sets as u64)),
                ("embed_hits".into(), Content::U64(inc.embed_hits)),
                ("embed_misses".into(), Content::U64(inc.embed_misses)),
            ]),
        ),
        (
            "caches".into(),
            Content::Map(vec![
                ("embed_hits".into(), Content::U64(snapshot.embed_cache.0)),
                ("embed_misses".into(), Content::U64(snapshot.embed_cache.1)),
                ("fd_hits".into(), Content::U64(snapshot.fd_cache.0)),
                ("fd_misses".into(), Content::U64(snapshot.fd_cache.1)),
            ]),
        ),
    ])
}

/// Renders the `GET /health` body.
pub fn health_body(shards: usize) -> String {
    render(Content::Map(vec![
        ("status".into(), Content::Str("ok".into())),
        ("shards".into(), Content::U64(shards as u64)),
    ]))
}

/// Renders the `202 Accepted` ingest acknowledgement.
pub fn ingest_ack_body(group: &str, shard: usize, queued: usize) -> String {
    render(Content::Map(vec![
        ("status".into(), Content::Str("accepted".into())),
        ("group".into(), Content::Str(group.to_string())),
        ("shard".into(), Content::U64(shard as u64)),
        ("queued".into(), Content::U64(queued as u64)),
    ]))
}

/// Renders the `429 Too Many Requests` backpressure body.
pub fn reject_body(group: &str, shard: usize, queued: usize, retry_after_secs: u32) -> String {
    render(Content::Map(vec![
        ("error".into(), Content::Str("shard queue full".into())),
        ("group".into(), Content::Str(group.to_string())),
        ("shard".into(), Content::U64(shard as u64)),
        ("queued".into(), Content::U64(queued as u64)),
        ("retry_after_secs".into(), Content::U64(u64::from(retry_after_secs))),
    ]))
}

/// Renders a generic error body (`400`, `404`, `405`, `413`).
pub fn error_body(message: &str) -> String {
    render(Content::Map(vec![("error".into(), Content::Str(message.to_string()))]))
}

/// Renders the `GET /stats` body from per-shard statuses.
///
/// Unlike `/query`, this body includes scheduler aggregates
/// ([`RuntimeStats`](lake_runtime::RuntimeStats) busy-nanos and steals from
/// the latest integration per shard), which are timing-dependent — it is
/// an observability surface, not a data surface.
pub fn stats_body(policy: &ServePolicy, statuses: &[ShardStatus]) -> String {
    let mut total_queued = 0u64;
    let mut total_accepted = 0u64;
    let mut total_rejected = 0u64;
    let mut total_applied = 0u64;
    let mut total_failed = 0u64;
    let mut total_tables = 0u64;
    let mut total_tuples = 0u64;
    let mut runtime = lake_runtime::RuntimeStats::default();
    let mut phases = fuzzy_fd_core::PhaseTimings::default();
    let mut durable = lake_store::StoreStatus::default();
    let mut durable_shards = 0u64;
    let shards: Vec<Content> = statuses
        .iter()
        .map(|status| {
            total_queued += status.queued as u64;
            total_accepted += status.accepted;
            total_rejected += status.rejected;
            total_applied += status.applied;
            total_failed += status.failed;
            total_tables += status.snapshot.tables.len() as u64;
            total_tuples += status.snapshot.outcome.table.len() as u64;
            let last_runtime = status.snapshot.outcome.report.runtime();
            runtime.merge(&last_runtime);
            let last_phases = &status.snapshot.outcome.report.blocking.phase;
            phases.merge(last_phases);
            if let Some(store) = &status.durability {
                durable_shards += 1;
                durable.appends += store.appends;
                durable.wal_records += store.wal_records;
                durable.wal_bytes += store.wal_bytes;
                durable.fsyncs += store.fsyncs;
                durable.checkpoints += store.checkpoints;
                durable.checkpointed_records += store.checkpointed_records;
                durable.segment_blocks += store.segment_blocks;
                durable.recovery.manifest_records += store.recovery.manifest_records;
                durable.recovery.wal_records += store.recovery.wal_records;
                durable.recovery.torn_bytes += store.recovery.torn_bytes;
            }
            let inc = &status.snapshot.outcome.incremental;
            let mut fields = vec![
                ("id".into(), Content::U64(status.id as u64)),
                ("queued".into(), Content::U64(status.queued as u64)),
                ("busy".into(), Content::Bool(status.busy)),
                ("accepted".into(), Content::U64(status.accepted)),
                ("rejected".into(), Content::U64(status.rejected)),
                ("applied".into(), Content::U64(status.applied)),
                ("failed".into(), Content::U64(status.failed)),
                ("version".into(), Content::U64(status.snapshot.version)),
                ("lake_tables".into(), Content::U64(status.snapshot.tables.len() as u64)),
                ("tuples".into(), Content::U64(status.snapshot.outcome.table.len() as u64)),
                (
                    "incremental".into(),
                    Content::Map(vec![
                        ("appended_tables".into(), Content::U64(inc.appended_tables as u64)),
                        ("refolded_sets".into(), Content::U64(inc.refolded_sets as u64)),
                        ("rebuilt_sets".into(), Content::U64(inc.rebuilt_sets as u64)),
                        ("reused_sets".into(), Content::U64(inc.reused_sets as u64)),
                    ]),
                ),
                (
                    "runtime".into(),
                    Content::Map(vec![
                        ("tasks".into(), Content::U64(last_runtime.tasks)),
                        ("steals".into(), Content::U64(last_runtime.steals)),
                        ("busy_nanos".into(), Content::U64(last_runtime.busy_nanos())),
                        (
                            "sequential_batches".into(),
                            Content::U64(last_runtime.sequential_batches),
                        ),
                    ]),
                ),
                ("planner_phases".into(), phase_content(last_phases)),
                (
                    "caches".into(),
                    Content::Map(vec![
                        ("embed_hits".into(), Content::U64(status.snapshot.embed_cache.0)),
                        ("embed_misses".into(), Content::U64(status.snapshot.embed_cache.1)),
                        ("fd_hits".into(), Content::U64(status.snapshot.fd_cache.0)),
                        ("fd_misses".into(), Content::U64(status.snapshot.fd_cache.1)),
                    ]),
                ),
            ];
            if let Some(store) = &status.durability {
                fields.push(("durability".into(), durability_content(store)));
            }
            Content::Map(fields)
        })
        .collect();
    let mut totals = vec![
        ("queued".into(), Content::U64(total_queued)),
        ("accepted".into(), Content::U64(total_accepted)),
        ("rejected".into(), Content::U64(total_rejected)),
        ("applied".into(), Content::U64(total_applied)),
        ("failed".into(), Content::U64(total_failed)),
        ("lake_tables".into(), Content::U64(total_tables)),
        ("tuples".into(), Content::U64(total_tuples)),
        (
            "runtime".into(),
            Content::Map(vec![
                ("tasks".into(), Content::U64(runtime.tasks)),
                ("steals".into(), Content::U64(runtime.steals)),
                ("busy_nanos".into(), Content::U64(runtime.busy_nanos())),
                ("sequential_batches".into(), Content::U64(runtime.sequential_batches)),
            ]),
        ),
        ("planner_phases".into(), phase_content(&phases)),
    ];
    if durable_shards > 0 {
        totals.push(("durable_shards".into(), Content::U64(durable_shards)));
        totals.push(("durability".into(), durability_content(&durable)));
    }
    render(Content::Map(vec![
        (
            "policy".into(),
            Content::Map(vec![
                ("shards".into(), Content::U64(policy.shards as u64)),
                ("queue_depth".into(), Content::U64(policy.queue_depth as u64)),
                ("readers".into(), Content::U64(policy.readers as u64)),
                ("retry_after_secs".into(), Content::U64(u64::from(policy.retry_after_secs))),
            ]),
        ),
        ("shards".into(), Content::Seq(shards)),
        ("totals".into(), Content::Map(totals)),
    ]))
}

/// Planner phase-timing attribution as a `/stats` JSON object: one
/// `<phase>_nanos` entry per phase (hash/probe/pairs/dedup/score/fallback/
/// assign/total), so operators can see where the planning wall clock of the
/// latest integration went (see docs/OPERATIONS.md).
fn phase_content(phase: &fuzzy_fd_core::PhaseTimings) -> Content {
    Content::Map(
        phase
            .named()
            .iter()
            .map(|(name, duration)| {
                (format!("{name}_nanos"), Content::U64(duration.as_nanos() as u64))
            })
            .collect(),
    )
}

/// One store's durability counters as a `/stats` JSON object.
fn durability_content(store: &lake_store::StoreStatus) -> Content {
    Content::Map(vec![
        ("appends".into(), Content::U64(store.appends)),
        ("wal_records".into(), Content::U64(store.wal_records)),
        ("wal_bytes".into(), Content::U64(store.wal_bytes)),
        ("fsyncs".into(), Content::U64(store.fsyncs)),
        ("checkpoints".into(), Content::U64(store.checkpoints)),
        ("checkpointed_records".into(), Content::U64(store.checkpointed_records)),
        ("segment_blocks".into(), Content::U64(store.segment_blocks)),
        (
            "pool".into(),
            Content::Map(vec![
                ("hits".into(), Content::U64(store.pool.hits)),
                ("misses".into(), Content::U64(store.pool.misses)),
                ("evictions".into(), Content::U64(store.pool.evictions)),
            ]),
        ),
        (
            "recovery".into(),
            Content::Map(vec![
                ("manifest_records".into(), Content::U64(store.recovery.manifest_records)),
                ("wal_records".into(), Content::U64(store.recovery.wal_records)),
                ("torn_bytes".into(), Content::U64(store.recovery.torn_bytes)),
            ]),
        ),
    ])
}

/// The tuple's provenance ids as a JSON array of `"table#row"` strings
/// (already sorted — provenance is a `BTreeSet`).
fn tids_content(tuple: &IntegratedTuple) -> Content {
    Content::Seq(tuple.provenance().iter().map(|tid| Content::Str(tid.to_string())).collect())
}

/// A workspace [`Value`] as a JSON cell.  Non-finite floats (which JSON
/// cannot represent and the workspace never produces from parsed input)
/// degrade to `null` rather than poisoning a whole response.
fn cell_content(value: &Value) -> Content {
    match value {
        Value::Null => Content::Null,
        Value::Text(s) => Content::Str(s.clone()),
        Value::Int(i) => Content::I64(*i),
        Value::Float(f) if f.is_finite() => Content::F64(*f),
        Value::Float(_) => Content::Null,
        Value::Bool(b) => Content::Bool(*b),
    }
}

/// Renders a [`Content`] tree compactly.  Infallible for the trees this
/// module builds: the only encoder error is a non-finite float, which
/// [`cell_content`] already maps to `null`.
fn render(content: Content) -> String {
    struct Raw(Content);
    impl serde::Serialize for Raw {
        fn to_content(&self) -> Content {
            self.0.clone()
        }
    }
    // lint:allow(serve-panic-path): provably unreachable — the encoder's only error is a non-finite float and cell_content maps those to Content::Null before this point
    serde_json::to_string(&Raw(content)).expect("wire content trees contain no non-finite floats")
}

#[cfg(test)]
mod tests {
    use lake_table::TableBuilder;

    use super::*;

    #[test]
    fn ingest_body_round_trips() {
        let table = TableBuilder::new("T1", ["City", "Cases"])
            .row(["Berlin", "1.4M"])
            .row(["Paris", "2.1M"])
            .build()
            .unwrap();
        let body = ingest_body("covid", &table);
        let parsed = parse_ingest(body.as_bytes()).unwrap();
        assert_eq!(parsed.group, "covid");
        assert_eq!(parsed.table.name(), "T1");
        assert_eq!(parsed.table.schema().names(), table.schema().names());
        assert_eq!(parsed.table.rows(), table.rows());
    }

    #[test]
    fn ingest_cells_decode_typed_values() {
        let body = r#"{"group":"g","table":{"name":"T","columns":["a","b","c","d"],
            "rows":[[1,2.5,true,null],["x",-3,false,"y"]]}}"#;
        let parsed = parse_ingest(body.as_bytes()).unwrap();
        assert_eq!(parsed.table.rows()[0][0], Value::Int(1));
        assert_eq!(parsed.table.rows()[0][1], Value::Float(2.5));
        assert_eq!(parsed.table.rows()[0][2], Value::Bool(true));
        assert_eq!(parsed.table.rows()[0][3], Value::Null);
        assert_eq!(parsed.table.rows()[1][0], Value::Text("x".into()));
        assert_eq!(parsed.table.rows()[1][1], Value::Int(-3));
    }

    #[test]
    fn ingest_rejections_name_the_problem() {
        for (body, needle) in [
            (&b"not json"[..], "invalid JSON"),
            (br#"{"table":{}}"#, "`group`"),
            (br#"{"group":"g"}"#, "`table`"),
            (br#"{"group":"g","table":{"name":"T","columns":[],"rows":[]}}"#, "columns"),
            (br#"{"group":"g","table":{"name":"T","columns":["a"],"rows":[[1,2]]}}"#, "rows[0]"),
            (br#"{"group":"g","table":{"name":"T","columns":["a"],"rows":[[{"x":1}]]}}"#, "cell"),
        ] {
            let err = parse_ingest(body).unwrap_err();
            assert!(err.contains(needle), "error {err:?} does not mention {needle:?}");
        }
    }

    #[test]
    fn view_parsing_defaults_to_table() {
        assert_eq!(QueryView::parse(None).unwrap(), QueryView::Table);
        assert_eq!(QueryView::parse(Some("report")).unwrap(), QueryView::Report);
        assert_eq!(QueryView::parse(Some("provenance")).unwrap(), QueryView::Provenance);
        assert!(QueryView::parse(Some("nope")).is_err());
    }

    #[test]
    fn bodies_are_reparseable_json() {
        assert!(serde_json::from_str(&health_body(3)).is_ok());
        assert!(serde_json::from_str(&ingest_ack_body("g", 1, 2)).is_ok());
        assert!(serde_json::from_str(&reject_body("g", 1, 2, 1)).is_ok());
        assert!(serde_json::from_str(&error_body("nope \"quoted\"")).is_ok());
    }
}
