//! # lake-serve
//!
//! A sharded, concurrent serving layer over
//! [`IntegrationSession`](fuzzy_fd_core::IntegrationSession): the paper's
//! fuzzy-FD integration pipeline as a long-running service instead of a
//! library call.
//!
//! ## Architecture
//!
//! The lake is split into `shards` independent shards; a table *group*
//! (the client-chosen routing key, e.g. a tenant) maps to a shard by name
//! hash ([`route_group`]).  Each shard owns one `IntegrationSession`
//! confined to a dedicated writer thread, fed by a **bounded admission
//! queue**: `POST /ingest` returns `202` once the table is queued, or
//! `429` + `Retry-After` when the queue is full — backpressure is part of
//! the protocol, not an accident of buffering.
//!
//! Reads never touch a session.  After every applied append the writer
//! publishes an immutable [`ShardSnapshot`] behind an
//! `RwLock<Arc<_>>`; readers clone the `Arc` under a momentary lock and
//! render entirely from their own handle.  A query issued during a
//! multi-second integration therefore returns immediately — with the
//! *previous* snapshot — and appends are never blocked by readers.
//!
//! The server speaks hand-rolled HTTP/1.1 over `std::net` (the build
//! environment has no registry access, so no tokio/hyper): one request per
//! connection, `Content-Length` framing, `Connection: close`.  All service
//! threads come from [`lake_runtime::spawn_service`].
//!
//! ## Durability
//!
//! [`LakeServer::start_durable`] gives every shard a
//! [`LakeStore`](lake_store::LakeStore) under `dir/shard-<i>`: an ingest
//! is write-ahead logged *before* the `202` is written, so an
//! acknowledged table survives `kill -9` (under the default
//! fsync-per-append policy).  On restart each shard writer replays its
//! log before draining new work — integration is deterministic, so the
//! recovered `/query` bodies are byte-identical to an uninterrupted run.
//! `/stats` grows a per-shard `durability` section (log size, fsyncs,
//! checkpoints, buffer-pool counters, what recovery found); see
//! `docs/OPERATIONS.md` for the recovery runbook.
//!
//! ## Routes
//!
//! | Route | Purpose |
//! |---|---|
//! | `POST /ingest` | Append a table to its group's shard (`202`/`429`) |
//! | `GET /query`  | Snapshot reads: `table`, `report`, `provenance` views |
//! | `GET /health` | Liveness |
//! | `GET /stats`  | Queue depths, shard versions, runtime/incremental aggregates |
//!
//! The full wire protocol is specified in `docs/PROTOCOL.md`; operational
//! guidance (sizing [`ServePolicy`], reading `/stats`) in
//! `docs/OPERATIONS.md`.
//!
//! ## Determinism
//!
//! Every `/query` body is rendered by the public [`wire`] module from a
//! [`ShardSnapshot`] alone, with fixed key order and no timing-dependent
//! fields — so integrating the same tables through a direct
//! `IntegrationSession` and rendering with the same functions reproduces
//! the server's bytes exactly (asserted in `tests/serve_integration.rs`).
//!
//! ## Example
//!
//! ```
//! use lake_serve::{LakeServer, QueryTarget, ServeClient, ServePolicy};
//! use lake_table::TableBuilder;
//!
//! let server = LakeServer::start(ServePolicy::default()).unwrap();
//! let client = ServeClient::new(server.addr());
//!
//! let table = TableBuilder::new("S0", ["City", "Cases"]).row(["Berlin", "1.4M"]).build().unwrap();
//! assert_eq!(client.ingest("covid", &table).unwrap().status, 202);
//! assert!(client.wait_idle(std::time::Duration::from_secs(10)).unwrap());
//!
//! let reply = client.query(QueryTarget::Group("covid"), "table").unwrap();
//! assert_eq!(reply.status, 200);
//! assert!(reply.body.contains("\"Berlin\""));
//! server.shutdown();
//! ```

pub mod client;
pub mod http;
pub mod policy;
pub mod server;
pub mod shard;
pub mod wire;

pub use client::{ClientError, QueryTarget, Reply, ServeClient};
pub use policy::ServePolicy;
pub use server::{DurabilityPolicy, LakeServer, ServeError, ServerHandle};
pub use shard::{route_group, IngestJob, IngestReject, Shard, ShardSnapshot, ShardStatus};
pub use wire::QueryView;
