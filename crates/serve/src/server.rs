//! The server: accept loop, reader pool, shard writer loops, routing.
//!
//! Thread layout for a [`ServePolicy`] with `S` shards and `R` readers
//! (all threads come from [`lake_runtime::spawn_service`] — the workspace
//! bans raw thread primitives outside the runtime crate):
//!
//! * 1 × `serve-accept` — non-blocking accept loop; hands connections to
//!   the reader pool over a channel and polls the stop flag.
//! * `R` × `serve-reader-i` — pop a connection, read one request, route
//!   it, write the response, close.  Readers touch shards only through
//!   [`Shard::try_ingest`] (queue admission) and
//!   [`Shard::read_snapshot`] (an `Arc` clone), so no request ever waits
//!   on an in-flight integration.
//! * `S` × `serve-writer-i` — own the shard's
//!   [`IntegrationSession`] (sessions
//!   never cross threads), drain the admission queue, publish a fresh
//!   [`ShardSnapshot`] after every applied append.
//!
//! Shutdown drains: [`ServerHandle::shutdown`] stops accepting, joins the
//! readers, then asks each writer to finish its remaining queue before
//! joining it — every acknowledged ingest is applied before `shutdown`
//! returns.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use fuzzy_fd_core::IntegrationSession;
use lake_runtime::{pause, spawn_periodic, spawn_service, PeriodicHandle, ServiceHandle};
use lake_store::{DurableOp, FsyncPolicy, LakeStore, StoreError, StorePolicy};

use crate::http::{read_request, HttpError, Request, Response};
use crate::shard::{IngestJob, IngestReject, Shard, ShardSnapshot, ShardStatus};
use crate::wire::{self, QueryView};
use crate::ServePolicy;

/// How long a reader waits on a slow client before giving up on the
/// connection.
const CLIENT_IO_TIMEOUT: Duration = Duration::from_secs(10);
/// Accept-loop poll interval while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Errors starting a [`LakeServer`].
#[derive(Debug)]
pub enum ServeError {
    /// The [`ServePolicy`] failed validation.
    InvalidPolicy(String),
    /// Binding or configuring the listener failed.
    Io(std::io::Error),
    /// Opening or recovering a shard's durable store failed.
    Store(StoreError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::InvalidPolicy(msg) => write!(f, "invalid serve policy: {msg}"),
            ServeError::Io(err) => write!(f, "server I/O error: {err}"),
            ServeError::Store(err) => write!(f, "durable store error: {err}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(err: std::io::Error) -> Self {
        ServeError::Io(err)
    }
}

impl From<StoreError> for ServeError {
    fn from(err: StoreError) -> Self {
        ServeError::Store(err)
    }
}

/// Durability configuration for [`LakeServer::start_durable`].
///
/// Each shard gets its own [`LakeStore`] in `dir/shard-<i>`; an ingest is
/// appended to the shard's write-ahead log *before* it is acknowledged
/// with `202`, so under [`FsyncPolicy::Always`] (the default) every
/// acknowledged table survives `kill -9`.  On restart each shard writer
/// replays its log before draining new work, reproducing the
/// pre-crash `/query` bodies byte for byte.
#[derive(Debug, Clone, PartialEq)]
pub struct DurabilityPolicy {
    /// Root directory; shard `i` stores under `dir/shard-<i>`.
    pub dir: PathBuf,
    /// Per-shard store policy (fsync cadence, buffer pool size,
    /// checkpoint cadence).
    pub store: StorePolicy,
    /// How often the background flusher syncs the logs under
    /// [`FsyncPolicy::Batched`] (ignored for `Always`/`Never`, which
    /// need no flusher).
    pub flush_interval: Duration,
}

impl DurabilityPolicy {
    /// A durability policy rooted at `dir` with default store settings
    /// (fsync on every append) and a 25 ms batched-flush interval.
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        DurabilityPolicy {
            dir: dir.into(),
            store: StorePolicy::default(),
            flush_interval: Duration::from_millis(25),
        }
    }

    /// Validates the policy (same contract as [`ServePolicy::validate`]).
    pub fn validate(&self) -> Result<(), String> {
        self.store.validate()?;
        if self.store.fsync == FsyncPolicy::Batched && self.flush_interval.is_zero() {
            return Err("flush_interval must be positive under batched fsync".to_string());
        }
        Ok(())
    }
}

/// The sharded integration server.  See the [crate docs](crate) for the
/// protocol and [`ServePolicy`] for sizing.
pub struct LakeServer;

impl LakeServer {
    /// Starts a server on an OS-assigned loopback port.
    pub fn start(policy: ServePolicy) -> Result<ServerHandle, ServeError> {
        LakeServer::start_on(policy, SocketAddr::from(([127, 0, 0, 1], 0)))
    }

    /// Starts a server bound to `addr`.
    pub fn start_on(policy: ServePolicy, addr: SocketAddr) -> Result<ServerHandle, ServeError> {
        LakeServer::start_inner(policy, addr, None)
    }

    /// Starts a durable server on an OS-assigned loopback port: every
    /// acknowledged ingest is write-ahead logged under `durability.dir`
    /// and replayed on restart.
    pub fn start_durable(
        policy: ServePolicy,
        durability: DurabilityPolicy,
    ) -> Result<ServerHandle, ServeError> {
        LakeServer::start_durable_on(policy, durability, SocketAddr::from(([127, 0, 0, 1], 0)))
    }

    /// Starts a durable server bound to `addr`.
    pub fn start_durable_on(
        policy: ServePolicy,
        durability: DurabilityPolicy,
        addr: SocketAddr,
    ) -> Result<ServerHandle, ServeError> {
        durability.validate().map_err(ServeError::InvalidPolicy)?;
        LakeServer::start_inner(policy, addr, Some(durability))
    }

    fn start_inner(
        policy: ServePolicy,
        addr: SocketAddr,
        durability: Option<DurabilityPolicy>,
    ) -> Result<ServerHandle, ServeError> {
        policy.validate().map_err(ServeError::InvalidPolicy)?;
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let shards: Arc<Vec<Arc<Shard>>> = Arc::new(
            (0..policy.shards)
                .map(|id| {
                    let empty = IntegrationSession::begin(policy.integration, &[])
                        .map_err(|err| ServeError::InvalidPolicy(err.to_string()))?;
                    let initial = ShardSnapshot::from_session(0, &empty);
                    let shard = match &durability {
                        Some(durability) => {
                            let store = LakeStore::open(
                                &durability.dir.join(format!("shard-{id}")),
                                durability.store,
                            )?;
                            Shard::new_durable(id, policy.queue_depth, initial, store)
                        }
                        None => Shard::new(id, policy.queue_depth, initial),
                    };
                    Ok(Arc::new(shard))
                })
                .collect::<Result<_, ServeError>>()?,
        );

        let stop = Arc::new(AtomicBool::new(false));
        let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));

        let acceptor = {
            let stop = Arc::clone(&stop);
            spawn_service("serve-accept", move || accept_loop(listener, conn_tx, stop))
        };

        let readers = (0..policy.readers)
            .map(|i| {
                let conn_rx = Arc::clone(&conn_rx);
                let shards = Arc::clone(&shards);
                spawn_service(format!("serve-reader-{i}"), move || {
                    reader_loop(conn_rx, shards, policy)
                })
            })
            .collect();

        let writers = shards
            .iter()
            .map(|shard| {
                let shard = Arc::clone(shard);
                spawn_service(format!("serve-writer-{}", shard.id()), move || {
                    writer_loop(shard, policy)
                })
            })
            .collect();

        // Batched fsync trades per-append syncs for a periodic group
        // flush; `Always` and `Never` need no service thread.
        let flusher = durability
            .filter(|durability| durability.store.fsync == FsyncPolicy::Batched)
            .map(|durability| {
                let shards = Arc::clone(&shards);
                spawn_periodic("serve-flush", durability.flush_interval, move || {
                    for shard in shards.iter() {
                        // A failed flush keeps the records in the log
                        // buffer; the next tick (or writer exit) retries.
                        let _ = shard.with_store(|store| store.flush().is_ok());
                    }
                })
            });

        Ok(ServerHandle {
            addr: local_addr,
            shards,
            stop,
            acceptor: Some(acceptor),
            readers,
            writers,
            flusher,
        })
    }
}

/// A running server.  Dropping the handle without calling
/// [`shutdown`](Self::shutdown) detaches the service threads (the process
/// keeps serving until exit).
pub struct ServerHandle {
    addr: SocketAddr,
    shards: Arc<Vec<Arc<Shard>>>,
    stop: Arc<AtomicBool>,
    acceptor: Option<ServiceHandle>,
    readers: Vec<ServiceHandle>,
    writers: Vec<ServiceHandle>,
    flusher: Option<PeriodicHandle>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .field("shards", &self.shards.len())
            .field("readers", &self.readers.len())
            .finish()
    }
}

impl ServerHandle {
    /// The bound address (useful with an OS-assigned port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Per-shard statuses, as `/stats` reports them.
    pub fn statuses(&self) -> Vec<ShardStatus> {
        self.shards.iter().map(|s| s.status()).collect()
    }

    /// Deliberately poisons shard `id`'s queue mutex.  Test-only hook for
    /// the degraded-shard regression tests (see
    /// [`Shard::poison_queue_for_test`]); panics on an out-of-range id.
    #[doc(hidden)]
    pub fn poison_shard_for_test(&self, id: usize) {
        self.shards[id].poison_queue_for_test();
    }

    /// Stops the server: no new connections, readers joined, every shard
    /// queue drained and applied, writers joined.  Propagates a panic from
    /// any service thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.take() {
            acceptor.join();
        }
        for reader in self.readers.drain(..) {
            reader.join();
        }
        if let Some(flusher) = self.flusher.take() {
            flusher.stop();
        }
        for shard in self.shards.iter() {
            shard.stop();
        }
        // Each durable writer flushes and checkpoints its store on exit,
        // so after `shutdown` the logs are compact and fully applied.
        for writer in self.writers.drain(..) {
            writer.join();
        }
    }

    /// Blocks the calling thread until the accept loop exits (i.e. until
    /// another thread flips the stop flag, or forever in a long-running
    /// process such as `examples/serve.rs`).
    pub fn wait(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            acceptor.join();
        }
    }
}

/// Non-blocking accept loop; exits (dropping `conn_tx`, which unblocks the
/// readers) when the stop flag flips.
fn accept_loop(listener: TcpListener, conn_tx: mpsc::Sender<TcpStream>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                if conn_tx.send(stream).is_err() {
                    return;
                }
            }
            Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => pause(ACCEPT_POLL),
            // Transient per-connection accept failures (e.g. reset before
            // accept) are not fatal to the server.
            Err(_) => pause(ACCEPT_POLL),
        }
    }
}

/// Reader-pool loop: one request per connection, until the channel closes.
fn reader_loop(
    conn_rx: Arc<Mutex<mpsc::Receiver<TcpStream>>>,
    shards: Arc<Vec<Arc<Shard>>>,
    policy: ServePolicy,
) {
    loop {
        // Recover from a poisoned receiver lock: the receiver is plain
        // channel state, and one panicking reader must not wedge the
        // whole pool (every surviving reader would otherwise panic here
        // and the server would stop accepting work while still listening).
        let conn = { conn_rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner).recv() };
        let Ok(mut stream) = conn else { return };
        let _ = stream.set_read_timeout(Some(CLIENT_IO_TIMEOUT));
        let _ = stream.set_write_timeout(Some(CLIENT_IO_TIMEOUT));
        let response = match read_request(&mut stream) {
            Ok(request) => handle_request(&request, &shards, &policy),
            Err(HttpError::BadRequest(msg)) => Response::json(400, wire::error_body(&msg)),
            Err(HttpError::TooLarge(what)) => {
                let status = if what == "request body" { 413 } else { 431 };
                Response::json(status, wire::error_body(&format!("{what} too large")))
            }
            // Nothing sensible can be written on a broken socket.
            Err(HttpError::Io(_)) => continue,
        };
        // A client gone before the response is its problem, not ours.
        let _ = response.write_to(&mut stream);
    }
}

/// Routes one parsed request.  Pure except for shard queue admission.
fn handle_request(request: &Request, shards: &[Arc<Shard>], policy: &ServePolicy) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/ingest") => handle_ingest(request, shards, policy),
        ("GET", "/query") => handle_query(request, shards),
        ("GET", "/health") => Response::json(200, wire::health_body(shards.len())),
        ("GET", "/stats") => {
            let statuses: Vec<ShardStatus> = shards.iter().map(|s| s.status()).collect();
            Response::json(200, wire::stats_body(policy, &statuses))
        }
        ("POST", "/query" | "/health" | "/stats") | ("GET", "/ingest") => {
            Response::json(405, wire::error_body("method not allowed for this route"))
        }
        _ => Response::json(404, wire::error_body("no such route")),
    }
}

/// `POST /ingest`: parse, route by group hash, admit or reject.
fn handle_ingest(request: &Request, shards: &[Arc<Shard>], policy: &ServePolicy) -> Response {
    let parsed = match wire::parse_ingest(&request.body) {
        Ok(parsed) => parsed,
        Err(msg) => return Response::json(400, wire::error_body(&msg)),
    };
    let shard_id = crate::route_group(&parsed.group, shards.len());
    let job = IngestJob { group: parsed.group.clone(), table: parsed.table, seq: None };
    match shards[shard_id].try_ingest(job) {
        Ok(queued) => Response::json(202, wire::ingest_ack_body(&parsed.group, shard_id, queued)),
        Err(IngestReject::QueueFull(queued)) => Response::json(
            429,
            wire::reject_body(&parsed.group, shard_id, queued, policy.retry_after_secs),
        )
        .with_retry_after(policy.retry_after_secs),
        // The table could not be made durable, so it must not be
        // acknowledged (a 202 is a durability promise on durable shards).
        Err(IngestReject::Wal(msg)) => {
            Response::json(500, wire::error_body(&format!("durable log append failed: {msg}")))
        }
        // A thread panicked while holding this shard's queue lock.  Reads
        // keep serving the last published snapshot, but new appends are
        // refused rather than promised by a wounded shard.
        Err(IngestReject::Poisoned) => Response::json(
            500,
            wire::error_body("shard queue poisoned by an earlier panic; ingest refused"),
        ),
    }
}

/// `GET /query`: resolve the shard (by `shard` index or `group` hash),
/// clone its snapshot, render the requested view.
fn handle_query(request: &Request, shards: &[Arc<Shard>]) -> Response {
    let view = match QueryView::parse(request.query_param("view")) {
        Ok(view) => view,
        Err(msg) => return Response::json(400, wire::error_body(&msg)),
    };
    let shard_id = match (request.query_param("shard"), request.query_param("group")) {
        (Some(raw), _) => match raw.parse::<usize>() {
            Ok(id) if id < shards.len() => id,
            Ok(id) => {
                let msg = format!("shard {id} out of range (server has {})", shards.len());
                return Response::json(400, wire::error_body(&msg));
            }
            Err(_) => return Response::json(400, wire::error_body("unparseable shard index")),
        },
        (None, Some(group)) => crate::route_group(group, shards.len()),
        (None, None) => {
            return Response::json(400, wire::error_body("pass either `shard` or `group`"))
        }
    };
    let snapshot = shards[shard_id].read_snapshot();
    Response::json(200, wire::query_body(view, shard_id, &snapshot))
}

/// Shard writer loop: owns the session, drains the queue, publishes
/// snapshots.  Exits once stopped *and* drained.
///
/// On a durable shard the loop first replays the records the store
/// recovered at open — the session is confined to this thread, so replay
/// cannot happen in `start_inner`.  New ingests admitted during replay
/// simply queue behind it; log order stays apply order.
fn writer_loop(shard: Arc<Shard>, policy: ServePolicy) {
    let session = IntegrationSession::begin(policy.integration, &[]);
    // lint:allow(serve-panic-path): unreachable — start_inner already built a session from this exact policy and surfaced any error as ServeError before spawning this writer
    let mut session = session.expect("policy validated in start_inner");
    let mut version = 0u64;

    if shard.is_durable() {
        let recovered = shard.with_store(LakeStore::take_recovered).unwrap_or_default();
        let (mut applied, mut failed) = (0u64, 0u64);
        for record in &recovered {
            // The serving layer logs one Append per ingest; EmptyBatch
            // records only appear in library-made snapshots.
            if let DurableOp::Append { table, .. } = &record.op {
                match session.add_table(table) {
                    Ok(_) => {
                        version += 1;
                        applied += 1;
                    }
                    // Mirrors the live path below: an append that failed
                    // integration before the crash fails identically on
                    // replay (integration is deterministic).
                    Err(_) => failed += 1,
                }
            }
        }
        shard.record_recovery(applied, failed);
        // Publish even when nothing was recovered: a version-0 snapshot
        // with durability counters signals recovery is complete.
        shard.publish(ShardSnapshot::from_session(version, &session));
    }

    let checkpoint_every =
        shard.with_store(|store| store.policy().checkpoint_every).unwrap_or(u64::MAX);
    let mut since_checkpoint = 0u64;
    while let Some(job) = shard.next_job() {
        let applied = match session.add_table(&job.table) {
            Ok(_) => {
                version += 1;
                shard.publish(ShardSnapshot::from_session(version, &session));
                true
            }
            // The ingest was acknowledged with 202 but cannot be applied
            // (e.g. a table-level error surfaced during integration); the
            // failure is visible in `/stats` as `failed`.  Its log record
            // stays — replay reproduces the same failure, keeping
            // recovered state identical to live state.
            Err(_) => false,
        };
        if let Some(seq) = job.seq {
            since_checkpoint += 1;
            if since_checkpoint >= checkpoint_every {
                // A failed checkpoint is retried next round: the log still
                // holds every record, so durability is not at risk.
                if shard.with_store(|store| store.checkpoint(seq).is_ok()) == Some(true) {
                    since_checkpoint = 0;
                }
            }
        }
        shard.finish_job(applied);
    }

    // Drained and stopping: leave a compact, fully-checkpointed store so
    // the next start replays from segments instead of a long log tail.
    let _ = shard.with_store(|store| {
        let _ = store.flush();
        if store.next_seq() > 0 {
            let _ = store.checkpoint(store.next_seq() - 1);
        }
    });
}
