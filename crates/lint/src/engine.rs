//! The lint engine: workspace walk, rule dispatch, pragma application.
//!
//! Two invariants distinguish this from a grep loop:
//!
//! 1. **No silent skips.**  An unreadable directory or file is a hard
//!    [`EngineError::Io`], never a `continue`.  A linter that skips what it
//!    cannot read reports "clean" on exactly the runs where it saw the
//!    least.
//! 2. **A sanity floor.**  A run that found [`MIN_SOURCES`] or fewer files
//!    is a broken walk (wrong root, renamed directory), not a clean
//!    workspace, and fails with [`EngineError::TooFewSources`].

use std::error::Error;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::context::FileContext;
use crate::diag::{Diagnostic, Severity};
use crate::rules::{all_rule_ids, default_rules, LintRule};

/// Directory roots scanned under the workspace root, mirroring the
/// pre-engine grep tests.
pub const SCANNED_ROOTS: [&str; 5] = ["src", "crates", "tests", "examples", "vendor"];

/// Sanity floor: a walk that finds this many `.rs` files or fewer is
/// considered broken and hard-errors instead of reporting clean.
pub const MIN_SOURCES: usize = 50;

/// Engine-level rule id for a pragma whose justification is empty.
pub const EMPTY_JUSTIFICATION: &str = "empty-allow-justification";

/// Engine-level rule id for a pragma naming a rule that does not exist.
pub const UNKNOWN_RULE: &str = "unknown-lint-rule";

/// A failure of the run itself (distinct from findings *in* the code).
#[derive(Debug)]
pub enum EngineError {
    /// A directory or file could not be read.
    Io {
        /// The path that failed.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// The walk found suspiciously few sources — see [`MIN_SOURCES`].
    TooFewSources {
        /// How many `.rs` files the walk found.
        found: usize,
    },
    /// `--rule` (or [`Engine::run_rule`]) named a rule that is not
    /// registered.
    UnknownRule(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Io { path, source } => {
                write!(f, "cannot read {}: {source}", path.display())
            }
            EngineError::TooFewSources { found } => write!(
                f,
                "walk found only {found} source files (floor is {}) — wrong root or broken \
                 layout, refusing to report clean",
                MIN_SOURCES + 1
            ),
            EngineError::UnknownRule(id) => write!(f, "unknown rule `{id}`"),
        }
    }
}

impl Error for EngineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EngineError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// The outcome of a successful run (the *run* succeeded; the *code* may
/// still have findings).
#[derive(Debug)]
pub struct LintReport {
    /// How many `.rs` files were analysed.
    pub sources: usize,
    /// All findings, sorted by path, line, column, rule.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Findings with [`Severity::Error`].
    pub fn error_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error).count()
    }

    /// Whether the run produced no findings at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// The analyzer: a workspace root plus a set of rules.
pub struct Engine {
    root: PathBuf,
    rules: Vec<Box<dyn LintRule>>,
}

impl Engine {
    /// An engine over `root` with the default rule registry.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        Engine { root: root.into(), rules: default_rules() }
    }

    /// An engine with an explicit rule set (tests, `--rule` filtering).
    pub fn with_rules(root: impl Into<PathBuf>, rules: Vec<Box<dyn LintRule>>) -> Self {
        Engine { root: root.into(), rules }
    }

    /// The registered rule ids, in registry order.
    pub fn rule_ids(&self) -> Vec<&'static str> {
        self.rules.iter().map(|r| r.id()).collect()
    }

    /// Runs every registered rule over the workspace.
    pub fn run(&self) -> Result<LintReport, EngineError> {
        let sources = self.collect_sources()?;
        if sources.len() <= MIN_SOURCES {
            return Err(EngineError::TooFewSources { found: sources.len() });
        }
        let mut diagnostics = Vec::new();
        for path in &sources {
            let text = fs::read_to_string(path)
                .map_err(|source| EngineError::Io { path: path.clone(), source })?;
            let rel = relative_path(&self.root, path);
            let ctx = FileContext::from_source(rel, text);
            diagnostics.extend(check_context(&ctx, &self.rules));
        }
        diagnostics.sort_by(|a, b| {
            (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule))
        });
        Ok(LintReport { sources: sources.len(), diagnostics })
    }

    /// Runs exactly one rule over the workspace, by id.  Pragma
    /// self-diagnostics are filtered out so callers see only `id`'s
    /// findings — this is what the migrated regression tests use.
    pub fn run_rule(&self, id: &str) -> Result<LintReport, EngineError> {
        if !self.rule_ids().contains(&id) {
            return Err(EngineError::UnknownRule(id.to_string()));
        }
        let mut report = self.run()?;
        report.diagnostics.retain(|d| d.rule == id);
        Ok(report)
    }

    /// Walks [`SCANNED_ROOTS`], collecting every `.rs` file.  Any
    /// unreadable directory or entry is a hard error.
    fn collect_sources(&self) -> Result<Vec<PathBuf>, EngineError> {
        let mut sources = Vec::new();
        for scanned in SCANNED_ROOTS {
            let dir = self.root.join(scanned);
            if !dir.is_dir() {
                // Roots are part of the workspace contract; a missing one
                // means the engine is pointed at the wrong directory.
                return Err(EngineError::Io {
                    path: dir,
                    source: io::Error::new(io::ErrorKind::NotFound, "scanned root missing"),
                });
            }
            walk(&dir, &mut sources)?;
        }
        sources.sort();
        Ok(sources)
    }
}

/// Recursive directory walk.  Unreadable anything → hard error.
fn walk(dir: &Path, sources: &mut Vec<PathBuf>) -> Result<(), EngineError> {
    let entries =
        fs::read_dir(dir).map_err(|source| EngineError::Io { path: dir.to_path_buf(), source })?;
    for entry in entries {
        let entry = entry.map_err(|source| EngineError::Io { path: dir.to_path_buf(), source })?;
        let path = entry.path();
        let kind =
            entry.file_type().map_err(|source| EngineError::Io { path: path.clone(), source })?;
        if kind.is_dir() {
            // Build output may appear under vendored crates when they are
            // built standalone; it is generated, not source.
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            walk(&path, sources)?;
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            sources.push(path);
        }
    }
    Ok(())
}

/// `path` relative to `root`, `/`-separated (diagnostics are stable across
/// platforms).
fn relative_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/")
}

/// Runs `rules` over one prepared context, applies allow pragmas, and
/// emits the pragma self-diagnostics.  Public within the crate so fixture
/// tests can exercise the exact CI semantics on inline sources.
pub fn check_context(ctx: &FileContext, rules: &[Box<dyn LintRule>]) -> Vec<Diagnostic> {
    let mut diagnostics: Vec<Diagnostic> = rules.iter().flat_map(|r| r.check(ctx)).collect();

    // A pragma covers its own line and the line immediately below, so both
    // trailing (`stmt; // lint:allow(..): why`) and preceding placements
    // work.
    diagnostics.retain(|d| {
        !ctx.pragmas
            .iter()
            .any(|p| p.rule_id == d.rule && (p.line == d.line || p.line + 1 == d.line))
    });

    // Pragmas are themselves linted: naming an unknown rule is an error
    // (likely a typo silently allowing nothing), and an empty
    // justification is an error (every exception must say why).
    let known = all_rule_ids();
    for pragma in &ctx.pragmas {
        let (line, col) = ctx.line_col(pragma.offset);
        if !known.contains(&pragma.rule_id.as_str()) {
            diagnostics.push(Diagnostic {
                rule: UNKNOWN_RULE,
                severity: Severity::Error,
                path: ctx.path.clone(),
                line,
                col,
                message: format!(
                    "lint:allow names unknown rule `{}` — known rules: {}",
                    pragma.rule_id,
                    known.join(", ")
                ),
            });
        } else if pragma.justification.is_empty() {
            diagnostics.push(Diagnostic {
                rule: EMPTY_JUSTIFICATION,
                severity: Severity::Error,
                path: ctx.path.clone(),
                line,
                col,
                message: format!(
                    "lint:allow({}) without a justification — write `// lint:allow({}): <why>`",
                    pragma.rule_id, pragma.rule_id
                ),
            });
        }
    }
    diagnostics
}

/// Checks a single in-memory source with the default rules — the fixture
/// entry point used by the crate's tests.
pub fn check_source(path: &str, text: &str) -> Vec<Diagnostic> {
    check_context(&FileContext::from_source(path, text), &default_rules())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_root_is_a_hard_error() {
        let engine = Engine::new("/nonexistent-lint-root");
        match engine.run() {
            Err(EngineError::Io { path, .. }) => {
                assert!(path.starts_with("/nonexistent-lint-root"));
            }
            other => panic!("expected Io error, got {:?}", other.map(|r| r.sources)),
        }
    }

    #[test]
    fn unknown_rule_is_rejected() {
        let engine = Engine::new(".");
        match engine.run_rule("no-such-rule") {
            Err(EngineError::UnknownRule(id)) => assert_eq!(id, "no-such-rule"),
            other => panic!("expected UnknownRule, got {:?}", other.map(|r| r.sources)),
        }
    }

    #[test]
    fn pragma_suppresses_same_and_next_line() {
        let src = "\
use std::thread; // lint:allow(raw-threads): doc example
// lint:allow(raw-threads): below
use std::thread as t;
";
        let diags = check_source("crates/x/src/lib.rs", src);
        assert!(diags.is_empty(), "expected clean, got {diags:?}");
    }

    #[test]
    fn empty_justification_and_unknown_rule_are_findings() {
        let src =
            "// lint:allow(raw-threads)\nuse std::thread;\n// lint:allow(ray-threads): typo\n";
        let diags = check_source("crates/x/src/lib.rs", src);
        let rules: Vec<_> = diags.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&EMPTY_JUSTIFICATION), "got {rules:?}");
        assert!(rules.contains(&UNKNOWN_RULE), "got {rules:?}");
        // The empty-justification pragma still suppresses the finding.
        assert!(!rules.contains(&"raw-threads"), "got {rules:?}");
    }
}
