//! The rule registry: [`LintRule`] plus the workspace's seeded rules.
//!
//! Each rule is a small token-level check over a [`FileContext`].  Rules
//! never see comments or string/char literals unless they explicitly opt
//! in to literal content (only [`StringBandKeys`] does, because the banned
//! pattern *is* a formatting literal).  Scoping — which files a rule
//! applies to — lives in the rule itself, next to the invariant it guards;
//! the catalog with rationale per rule is `docs/LINTS.md`.

use crate::context::FileContext;
use crate::diag::{Diagnostic, Severity};
use crate::lexer::{float_value, number_is_float, TokenKind};

/// One workspace invariant, checked per file.
pub trait LintRule {
    /// Stable id: the pragma target and the `[rule]` tag in output.
    fn id(&self) -> &'static str;

    /// One-line description for `--list-rules` and the JSON report.
    fn description(&self) -> &'static str;

    /// Severity of this rule's findings.
    fn severity(&self) -> Severity {
        Severity::Error
    }

    /// Runs the rule over one file.
    fn check(&self, file: &FileContext) -> Vec<Diagnostic>;
}

/// The seeded registry, in catalog order.
pub fn default_rules() -> Vec<Box<dyn LintRule>> {
    vec![
        Box::new(RawThreads),
        Box::new(StringBandKeys),
        Box::new(UnsafeScope),
        Box::new(ServePanicPath),
        Box::new(WallclockInReplay),
        Box::new(FloatEq),
    ]
}

/// The ids of every registered rule (pragma validation checks against this).
pub fn all_rule_ids() -> Vec<&'static str> {
    default_rules().iter().map(|r| r.id()).collect()
}

fn diag(
    rule: &'static str,
    severity: Severity,
    file: &FileContext,
    offset: usize,
    message: String,
) -> Diagnostic {
    let (line, col) = file.line_col(offset);
    Diagnostic { rule, severity, path: file.path.clone(), line, col, message }
}

/// `raw-threads`: no `std::thread` primitives outside `crates/runtime`.
///
/// Every parallel site must route through `lake_runtime::run_scope` /
/// `spawn_service`; ad-hoc pools escape the executor's ordering, panic and
/// diagnostics guarantees.  Alias-resolved, so `use std::thread as t;
/// t::spawn(..)` fires too.
pub struct RawThreads;

impl LintRule for RawThreads {
    fn id(&self) -> &'static str {
        "raw-threads"
    }

    fn description(&self) -> &'static str {
        "no std::thread primitives outside crates/runtime"
    }

    fn check(&self, file: &FileContext) -> Vec<Diagnostic> {
        if file.path.starts_with("crates/runtime/") {
            return Vec::new();
        }
        file.paths
            .iter()
            .filter(|p| p.starts_with(&["std", "thread"]))
            .map(|p| {
                let written = p.written.join("::");
                let resolved = p.resolved.join("::");
                let via = if written == resolved {
                    String::new()
                } else {
                    format!(" (written `{written}`)")
                };
                diag(
                    self.id(),
                    self.severity(),
                    file,
                    p.offset,
                    format!(
                        "raw thread primitive `{resolved}`{via} outside crates/runtime — \
                         route through lake_runtime::run_scope / spawn_service"
                    ),
                )
            })
            .collect()
    }
}

/// `string-band-keys`: the planner hot path must never build `String` band
/// keys.  The packed-u64 representation (`packed_band_key`) exists so the
/// per-vector `Vec<String>` churn cannot come back; `SimHasher::band_keys`
/// stays available for diagnostics elsewhere, but the planning files may
/// not call it, nor format the `sh{band}:{bucket}` key shape themselves.
pub struct StringBandKeys;

/// The files on the planning hot path: candidate planning, block solving
/// and the ANN index they drive.
const PLANNER_HOT_PATH: [&str; 3] =
    ["crates/core/src/blocking.rs", "crates/core/src/value_match.rs", "crates/embed/src/ann.rs"];

impl LintRule for StringBandKeys {
    fn id(&self) -> &'static str {
        "string-band-keys"
    }

    fn description(&self) -> &'static str {
        "no String band keys (.band_keys / sh{band}: formatting) on the planner hot path"
    }

    fn check(&self, file: &FileContext) -> Vec<Diagnostic> {
        if !PLANNER_HOT_PATH.contains(&file.path.as_str()) {
            return Vec::new();
        }
        let mut out = Vec::new();
        for i in 0..file.sig_len() {
            if sig_text(file, i) == Some(".")
                && sig_is_ident(file, i + 1, "band_keys")
                && sig_text(file, i + 2) == Some("(")
            {
                let token = file.sig_token(i + 1).expect("checked above");
                out.push(diag(
                    self.id(),
                    self.severity(),
                    file,
                    token.start,
                    "`.band_keys(..)` call on the planner hot path — use packed_band_key / \
                     signature shifts instead"
                        .to_string(),
                ));
            }
        }
        // The one rule that inspects literal content: the banned pattern is
        // itself a format string.  Comments stay immune.
        for token in &file.tokens {
            if matches!(token.kind, TokenKind::Str | TokenKind::RawStr)
                && file.text_of(token).contains("sh{")
            {
                out.push(diag(
                    self.id(),
                    self.severity(),
                    file,
                    token.start,
                    "`sh{band}:{bucket}` band-key formatting on the planner hot path — use \
                     packed_band_key instead"
                        .to_string(),
                ));
            }
        }
        out
    }
}

/// `unsafe-scope`: the single scoped `unsafe` lives in
/// `crates/embed/src/kernel.rs` (CPU intrinsics have no safe form); the
/// workspace-wide `unsafe_code = "deny"` lint covers the compiler side,
/// this rule keeps the *exception list* from growing silently.
pub struct UnsafeScope;

/// The one file allowed to contain `unsafe` (SIMD intrinsics).
const UNSAFE_ALLOWED: &str = "crates/embed/src/kernel.rs";

impl LintRule for UnsafeScope {
    fn id(&self) -> &'static str {
        "unsafe-scope"
    }

    fn description(&self) -> &'static str {
        "no `unsafe` outside crates/embed/src/kernel.rs"
    }

    fn check(&self, file: &FileContext) -> Vec<Diagnostic> {
        if file.path == UNSAFE_ALLOWED {
            return Vec::new();
        }
        file.significant()
            .filter(|t| t.kind == TokenKind::Ident && file.text_of(t) == "unsafe")
            .map(|t| {
                diag(
                    self.id(),
                    self.severity(),
                    file,
                    t.start,
                    format!(
                        "`unsafe` outside {UNSAFE_ALLOWED} — the workspace has exactly one \
                             scoped unsafe region (SIMD intrinsics)"
                    ),
                )
            })
            .collect()
    }
}

/// `serve-panic-path`: no `unwrap`/`expect`/`panic!` in `lake-serve`
/// request-handling modules.  A panic in a reader kills the connection
/// with no response and shrinks the reader pool; degraded requests must
/// become `500` bodies instead.  Test modules are exempt.
pub struct ServePanicPath;

/// The request-handling modules: framing, routing, shard admission, wire
/// rendering.  `client.rs` (test client) and `policy.rs` (startup
/// validation, runs before any request exists) are deliberately out.
const SERVE_REQUEST_PATH: [&str; 4] = [
    "crates/serve/src/http.rs",
    "crates/serve/src/server.rs",
    "crates/serve/src/shard.rs",
    "crates/serve/src/wire.rs",
];

impl LintRule for ServePanicPath {
    fn id(&self) -> &'static str {
        "serve-panic-path"
    }

    fn description(&self) -> &'static str {
        "no unwrap/expect/panic! in lake-serve request-handling modules"
    }

    fn check(&self, file: &FileContext) -> Vec<Diagnostic> {
        if !SERVE_REQUEST_PATH.contains(&file.path.as_str()) {
            return Vec::new();
        }
        let mut out = Vec::new();
        for i in 0..file.sig_len() {
            let Some(token) = file.sig_token(i) else { break };
            if file.in_test_code(token.start) {
                continue;
            }
            let method_call = sig_text(file, i) == Some(".")
                && file.sig_token(i + 1).is_some_and(|t| {
                    t.kind == TokenKind::Ident && matches!(file.text_of(t), "unwrap" | "expect")
                })
                && sig_text(file, i + 2) == Some("(");
            if method_call {
                let callee = file.sig_token(i + 1).expect("checked above");
                out.push(diag(
                    self.id(),
                    self.severity(),
                    file,
                    callee.start,
                    format!(
                        "`.{}()` in a request-handling module — degrade to a 500 response \
                         (or lint:allow with a proof it is unreachable)",
                        file.text_of(callee)
                    ),
                ));
            }
            let is_panic = token.kind == TokenKind::Ident
                && file.text_of(token) == "panic"
                && sig_text(file, i + 1) == Some("!");
            if is_panic {
                out.push(diag(
                    self.id(),
                    self.severity(),
                    file,
                    token.start,
                    "`panic!` in a request-handling module — degrade to a 500 response".to_string(),
                ));
            }
        }
        out
    }
}

/// `wallclock-in-replay`: no `Instant::now` / `SystemTime::now` in
/// deterministic-replay code.  Recovery replays the WAL and incremental
/// sessions replay appends; anything wall-clock-derived in those paths
/// would make a recovered lake differ from the live one.
/// `lake-metrics::timing` (observability) is outside the scope by
/// construction.
pub struct WallclockInReplay;

impl WallclockInReplay {
    fn in_scope(path: &str) -> bool {
        path.starts_with("crates/store/src/") || path == "crates/core/src/session.rs"
    }
}

impl LintRule for WallclockInReplay {
    fn id(&self) -> &'static str {
        "wallclock-in-replay"
    }

    fn description(&self) -> &'static str {
        "no Instant::now/SystemTime::now in deterministic-replay code (store, session)"
    }

    fn check(&self, file: &FileContext) -> Vec<Diagnostic> {
        if !Self::in_scope(&file.path) {
            return Vec::new();
        }
        file.paths
            .iter()
            .filter(|p| !file.in_test_code(p.offset))
            .filter(|p| p.contains_pair("Instant", "now") || p.contains_pair("SystemTime", "now"))
            .map(|p| {
                diag(
                    self.id(),
                    self.severity(),
                    file,
                    p.offset,
                    format!(
                        "wall clock (`{}`) in deterministic-replay code — replayed state must \
                         not depend on when replay runs",
                        p.written.join("::")
                    ),
                )
            })
            .collect()
    }
}

/// `float-eq`: no bare `==` / `!=` against float literals outside the
/// designated epsilon module (`crates/embed/src/vector.rs`, home of
/// `DISTANCE_EPSILON` and the `approx_eq` helpers).  Comparisons
/// against literal zero are exempt — `x == 0.0` is an exact guard (zero is
/// exactly representable and the usual divide-by-norm check), while
/// `x == 0.944` is a rounding bug waiting to fire.  Test code is exempt
/// (asserting exact fixture values is legitimate).
pub struct FloatEq;

/// The designated epsilon module: owns `DISTANCE_EPSILON` and the
/// `approx_eq` helpers, and is the one place allowed to write the raw
/// comparisons those helpers are built from.
const EPSILON_MODULE: &str = "crates/embed/src/vector.rs";

impl LintRule for FloatEq {
    fn id(&self) -> &'static str {
        "float-eq"
    }

    fn description(&self) -> &'static str {
        "no bare ==/!= against non-zero float literals outside the epsilon module"
    }

    fn check(&self, file: &FileContext) -> Vec<Diagnostic> {
        if file.path == EPSILON_MODULE || file.is_test_file() {
            return Vec::new();
        }
        let mut out = Vec::new();
        for i in 0..file.sig_len() {
            let Some(op_len) = self.comparison_at(file, i) else { continue };
            let op = file.sig_token(i).expect("comparison_at checked");
            if file.in_test_code(op.start) {
                continue;
            }
            let before = i.checked_sub(1).and_then(|j| self.float_literal(file, j, false));
            let after = self.float_literal(file, i + op_len, true);
            if let Some(text) = before.or(after) {
                out.push(diag(
                    self.id(),
                    self.severity(),
                    file,
                    op.start,
                    format!(
                        "bare float comparison against `{text}` — use \
                         lake_embed::approx_eq (DISTANCE_EPSILON) instead"
                    ),
                ));
            }
        }
        out
    }
}

impl FloatEq {
    /// If significant tokens `i..` form `==` or `!=`, the operator's token
    /// count (always 2); `None` otherwise.
    fn comparison_at(&self, file: &FileContext, i: usize) -> Option<usize> {
        let a = file.sig_token(i)?;
        let b = file.sig_token(i + 1)?;
        if a.kind != TokenKind::Punct || b.kind != TokenKind::Punct || a.end != b.start {
            return None;
        }
        let (at, bt) = (file.text_of(a), file.text_of(b));
        if bt != "=" || (at != "=" && at != "!") {
            return None;
        }
        // Reject `=` pairs that are the tail of a longer operator (`<=`,
        // `+=`, …): the preceding punct must not be glued on.
        if at == "=" {
            if let Some(prev) = i.checked_sub(1).and_then(|j| file.sig_token(j)) {
                let glued = prev.kind == TokenKind::Punct && prev.end == a.start;
                if glued && "<>=!+-*/%&|^".contains(file.text_of(prev)) {
                    return None;
                }
            }
        }
        Some(2)
    }

    /// A non-zero float literal at significant index `j` (looking through a
    /// unary minus when scanning forward).
    fn float_literal(&self, file: &FileContext, j: usize, forward: bool) -> Option<String> {
        let mut j = j;
        if forward && file.sig_token(j).is_some_and(|t| file.text_of(t) == "-") {
            j += 1;
        }
        let token = file.sig_token(j)?;
        if token.kind != TokenKind::Number {
            return None;
        }
        let text = file.text_of(token);
        if !number_is_float(text) || float_value(text) == Some(0.0) {
            return None;
        }
        Some(text.to_string())
    }
}

fn sig_text(file: &FileContext, i: usize) -> Option<&str> {
    file.sig_token(i).map(|t| file.text_of(t))
}

fn sig_is_ident(file: &FileContext, i: usize, want: &str) -> bool {
    file.sig_token(i).is_some_and(|t| t.kind == TokenKind::Ident && file.text_of(t) == want)
}
