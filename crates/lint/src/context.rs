//! Per-file analysis context handed to every rule.
//!
//! A [`FileContext`] is built once per source file (or once per fixture
//! string in tests) and bundles everything a rule may ask: the lossless
//! token stream, line/column mapping, `use`-alias resolution, the byte
//! ranges of `#[cfg(test)]` / `#[test]` code, and the file's
//! `// lint:allow(…)` pragmas.

use crate::lexer::{lex, Token, TokenKind};
use crate::resolve::{analyze, PathOccurrence, UseBinding};

/// An allow pragma: `// lint:allow(<rule-id>): <justification>`.
///
/// A pragma suppresses diagnostics of `rule_id` on its own line and on the
/// line immediately below, so both trailing and preceding placements work:
///
/// ```text
/// foo.unwrap(); // lint:allow(serve-panic-path): reason …
/// // lint:allow(serve-panic-path): reason …
/// foo.unwrap();
/// ```
///
/// An *empty* justification is itself a diagnostic
/// ([`crate::engine::EMPTY_JUSTIFICATION`]): every exception must say why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pragma {
    /// The rule being allowed.
    pub rule_id: String,
    /// The text after the closing `):`, trimmed.  Empty when missing.
    pub justification: String,
    /// 1-based line the pragma comment sits on.
    pub line: u32,
    /// Byte offset of the pragma inside the comment (for diagnostics).
    pub offset: usize,
}

/// Everything rules can see about one file.
#[derive(Debug)]
pub struct FileContext {
    /// Workspace-relative path with `/` separators (e.g.
    /// `crates/serve/src/shard.rs`).
    pub path: String,
    /// The raw source text.
    pub text: String,
    /// Lossless token stream (see [`crate::lexer`]).
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of the significant (non-trivia) tokens.
    sig: Vec<usize>,
    /// Byte offsets where each line starts.
    line_starts: Vec<usize>,
    /// `use` bindings (imported name → full path).
    pub bindings: Vec<UseBinding>,
    /// Every `a::b::…` chain, alias-normalised.
    pub paths: Vec<PathOccurrence>,
    /// Byte ranges of `#[cfg(test)]` modules and `#[test]` functions.
    test_ranges: Vec<(usize, usize)>,
    /// Allow pragmas, in file order.
    pub pragmas: Vec<Pragma>,
}

impl FileContext {
    /// Builds the context for one file.  `path` should be workspace-relative
    /// with `/` separators — rules scope on it.
    pub fn from_source(path: impl Into<String>, text: impl Into<String>) -> Self {
        let path = path.into();
        let text = text.into();
        let tokens = lex(&text);
        let sig: Vec<usize> =
            tokens.iter().enumerate().filter(|(_, t)| t.is_significant()).map(|(i, _)| i).collect();
        let mut line_starts = vec![0usize];
        line_starts
            .extend(text.bytes().enumerate().filter(|(_, b)| *b == b'\n').map(|(i, _)| i + 1));
        let (bindings, paths) = analyze(&text, &tokens, &sig);
        let test_ranges = find_test_ranges(&text, &tokens, &sig);
        let pragmas = parse_pragmas(&text, &tokens, &line_starts);
        FileContext { path, text, tokens, sig, line_starts, bindings, paths, test_ranges, pragmas }
    }

    /// 1-based `(line, column)` of a byte offset (column counts bytes).
    pub fn line_col(&self, offset: usize) -> (u32, u32) {
        let line = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        ((line + 1) as u32, (offset - self.line_starts[line] + 1) as u32)
    }

    /// The significant tokens, in order.
    pub fn significant(&self) -> impl Iterator<Item = &Token> {
        self.sig.iter().map(|&i| &self.tokens[i])
    }

    /// The `i`-th significant token, if any.
    pub fn sig_token(&self, i: usize) -> Option<&Token> {
        self.sig.get(i).map(|&ti| &self.tokens[ti])
    }

    /// Number of significant tokens.
    pub fn sig_len(&self) -> usize {
        self.sig.len()
    }

    /// The token's text.
    pub fn text_of(&self, token: &Token) -> &str {
        token.text(&self.text)
    }

    /// Whether `offset` falls inside `#[cfg(test)]` / `#[test]` code.
    pub fn in_test_code(&self, offset: usize) -> bool {
        self.test_ranges.iter().any(|&(start, end)| offset >= start && offset < end)
    }

    /// Whether the whole file is test code by location: directly under a
    /// `tests/` directory (integration tests, fixtures).
    pub fn is_test_file(&self) -> bool {
        self.path.starts_with("tests/") || self.path.contains("/tests/")
    }
}

/// Finds the byte ranges of test-only code: a `#[cfg(test)]` attribute
/// followed (possibly after more attributes) by an item with a braced body,
/// and `#[test]` functions.
fn find_test_ranges(source: &str, tokens: &[Token], sig: &[usize]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let text = |i: usize| tokens[sig[i]].text(source);
    let kind = |i: usize| tokens[sig[i]].kind;
    let mut i = 0;
    while i + 3 < sig.len() {
        // `#[cfg(test)]` → # [ cfg ( test ) ]   or  `#[test]` → # [ test ]
        let is_attr_start = kind(i) == TokenKind::Punct
            && text(i) == "#"
            && kind(i + 1) == TokenKind::Punct
            && text(i + 1) == "[";
        if !is_attr_start {
            i += 1;
            continue;
        }
        let cfg_test = i + 6 < sig.len()
            && text(i + 2) == "cfg"
            && text(i + 3) == "("
            && text(i + 4) == "test"
            && text(i + 5) == ")"
            && text(i + 6) == "]";
        let plain_test = text(i + 2) == "test" && text(i + 3) == "]";
        if !cfg_test && !plain_test {
            i += 1;
            continue;
        }
        let mut j = i + if cfg_test { 7 } else { 4 };
        // Skip any further attributes between the test attribute and the item.
        while j + 1 < sig.len() && text(j) == "#" && text(j + 1) == "[" {
            let mut depth = 0usize;
            j += 1;
            while j < sig.len() {
                match text(j) {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        // Find the item's braced body (stop at `;` — `mod name;` has none).
        let body_open = loop {
            let Some(&ti) = sig.get(j) else { break None };
            let t = tokens[ti].text(source);
            if t == "{" {
                break Some(j);
            }
            if t == ";" {
                break None;
            }
            j += 1;
        };
        let Some(open) = body_open else {
            i = j;
            continue;
        };
        // Match braces to the end of the body.
        let mut depth = 0usize;
        let mut k = open;
        let mut end = source.len();
        while k < sig.len() {
            match text(k) {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        end = tokens[sig[k]].end;
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        ranges.push((tokens[sig[i]].start, end));
        i = k + 1;
    }
    ranges
}

/// Extracts `lint:allow(<rule>): <justification>` pragmas from line
/// comments.
fn parse_pragmas(source: &str, tokens: &[Token], line_starts: &[usize]) -> Vec<Pragma> {
    const MARKER: &str = "lint:allow(";
    let mut pragmas = Vec::new();
    for token in tokens {
        if token.kind != TokenKind::LineComment {
            continue;
        }
        let comment = token.text(source);
        // A pragma is the comment's whole purpose: the comment must *start*
        // with the marker (`// lint:allow(..): why`).  This keeps prose
        // that merely mentions the syntax — doc comments, this very
        // comment — from being parsed as a pragma.
        let body = comment.strip_prefix("//").unwrap_or(comment);
        if !body.trim_start().starts_with(MARKER) {
            continue;
        }
        let pos = comment.find(MARKER).expect("starts_with checked above");
        let after = &comment[pos + MARKER.len()..];
        let Some(close) = after.find(')') else { continue };
        let rule_id = after[..close].trim().to_string();
        let rest = &after[close + 1..];
        let justification = rest.strip_prefix(':').unwrap_or(rest).trim().to_string();
        let offset = token.start + pos;
        let line = match line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        pragmas.push(Pragma { rule_id, justification, line: (line + 1) as u32, offset });
    }
    pragmas
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_is_one_based() {
        let ctx = FileContext::from_source("x.rs", "ab\ncd\n");
        assert_eq!(ctx.line_col(0), (1, 1));
        assert_eq!(ctx.line_col(1), (1, 2));
        assert_eq!(ctx.line_col(3), (2, 1));
        assert_eq!(ctx.line_col(4), (2, 2));
    }

    #[test]
    fn cfg_test_modules_are_test_ranges() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let ctx = FileContext::from_source("x.rs", src);
        let t_pos = src.find("fn t").expect("present");
        let live_pos = src.find("fn live").expect("present");
        let after_pos = src.find("fn after").expect("present");
        assert!(ctx.in_test_code(t_pos));
        assert!(!ctx.in_test_code(live_pos));
        assert!(!ctx.in_test_code(after_pos));
    }

    #[test]
    fn test_attribute_functions_are_test_ranges() {
        let src = "#[test]\n#[should_panic]\nfn boom() { panic!(\"x\") }\nfn live() {}\n";
        let ctx = FileContext::from_source("x.rs", src);
        assert!(ctx.in_test_code(src.find("panic!").expect("present")));
        assert!(!ctx.in_test_code(src.find("fn live").expect("present")));
    }

    #[test]
    fn pragmas_parse_with_and_without_justification() {
        let src = "// lint:allow(raw-threads): the runtime owns this\nx();\n// lint:allow(float-eq)\ny();\n";
        let ctx = FileContext::from_source("x.rs", src);
        assert_eq!(ctx.pragmas.len(), 2);
        assert_eq!(ctx.pragmas[0].rule_id, "raw-threads");
        assert_eq!(ctx.pragmas[0].justification, "the runtime owns this");
        assert_eq!(ctx.pragmas[0].line, 1);
        assert_eq!(ctx.pragmas[1].rule_id, "float-eq");
        assert_eq!(ctx.pragmas[1].justification, "");
        assert_eq!(ctx.pragmas[1].line, 3);
    }

    #[test]
    fn pragma_in_a_string_is_not_a_pragma() {
        let src = "let s = \"// lint:allow(raw-threads): nope\";\n";
        let ctx = FileContext::from_source("x.rs", src);
        assert!(ctx.pragmas.is_empty());
    }
}
