//! Diagnostics: what a rule reports and how it renders.

use std::fmt;

/// How bad a finding is.  CI fails on any [`Error`](Severity::Error).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory: reported, never fails the run.
    Warning,
    /// Gate: the CLI exits 1 when at least one is present.
    Error,
}

impl Severity {
    /// Lowercase wire/display name.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One finding, pointing at the exact token that violates a rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule id (e.g. `raw-threads`); pragma targets use this.
    pub rule: &'static str,
    /// Severity of the finding.
    pub severity: Severity,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based byte column of the offending token.
    pub col: u32,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    /// `path:line:col: severity[rule]: message` — the clickable single-line
    /// form the CLI prints.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}[{}]: {}",
            self.path,
            self.line,
            self.col,
            self.severity.name(),
            self.rule,
            self.message
        )
    }
}

impl Diagnostic {
    /// Renders the diagnostic as a JSON object (hand-rolled — the linter is
    /// dependency-free by design, see the crate docs).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"rule\":{},\"severity\":{},\"path\":{},\"line\":{},\"col\":{},\"message\":{}}}",
            json_string(self.rule),
            json_string(self.severity.name()),
            json_string(&self.path),
            self.line,
            self.col,
            json_string(&self.message)
        )
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Diagnostic {
        Diagnostic {
            rule: "raw-threads",
            severity: Severity::Error,
            path: "crates/x/src/lib.rs".into(),
            line: 3,
            col: 7,
            message: "raw `std::thread` use".into(),
        }
    }

    #[test]
    fn display_is_clickable() {
        assert_eq!(
            sample().to_string(),
            "crates/x/src/lib.rs:3:7: error[raw-threads]: raw `std::thread` use"
        );
    }

    #[test]
    fn json_escapes() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        let json = sample().to_json();
        assert!(json.contains("\"rule\":\"raw-threads\""));
        assert!(json.contains("\"line\":3"));
    }
}
