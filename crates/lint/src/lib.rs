//! lake-lint: the workspace invariant checker.
//!
//! The workspace carries invariants the Rust compiler cannot see: threads
//! must route through `lake-runtime`, the planner hot path must never
//! rebuild `String` band keys, `lake-serve` request paths must not panic,
//! replay code must not read the wall clock.  Before this crate they were
//! guarded by grep loops inside integration tests — evadable by a rename
//! (`use std::thread as t;`), blind to comments vs. code, and silently
//! skipping unreadable files.
//!
//! lake-lint replaces the greps with a real (dependency-free) analysis
//! pipeline:
//!
//! * [`lexer`] — a lossless Rust lexer: every byte of the input belongs to
//!   exactly one token, so rules can tell a call in code from the same
//!   text in a comment or string literal, and report exact `line:col`
//!   spans.
//! * [`resolve`] — per-file `use`-alias resolution, so `use std::thread as
//!   t; t::spawn(..)` is seen as `std::thread::spawn`.
//! * [`rules`] — the [`LintRule`] registry with the six
//!   seeded rules (catalog: `docs/LINTS.md`).
//! * [`engine`] — the workspace walk (hard errors on unreadable input, a
//!   sanity floor on file count), pragma application
//!   (`// lint:allow(<rule>): <why>`), and report assembly.
//! * [`diag`] — diagnostics with `path:line:col` spans, human and JSON
//!   rendering.
//!
//! The CLI (`cargo run -p lake-lint`) gates CI; the old regression tests
//! are now thin wrappers over [`engine::Engine::run_rule`].
//!
//! The crate is deliberately **dependency-free** (std only): it lints the
//! vendored dependencies too, so it must not create a cycle by depending
//! on them.

pub mod context;
pub mod diag;
pub mod engine;
pub mod lexer;
pub mod resolve;
pub mod rules;

pub use context::{FileContext, Pragma};
pub use diag::{Diagnostic, Severity};
pub use engine::{
    check_context, check_source, Engine, EngineError, LintReport, EMPTY_JUSTIFICATION, MIN_SOURCES,
    SCANNED_ROOTS, UNKNOWN_RULE,
};
pub use rules::{all_rule_ids, default_rules, LintRule};
