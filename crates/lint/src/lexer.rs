//! A hand-rolled, lossless Rust lexer.
//!
//! The whole point of `lake-lint` over the grep tests it replaced is that
//! rules see *code*: a forbidden pattern inside a line comment, a nested
//! block comment, a raw string `r#"…"#` or a char literal must never fire.
//! The lexer therefore classifies every byte of the source into exactly one
//! token — comments and literals included — and rules work on the token
//! stream instead of the raw text.
//!
//! Losslessness is a hard invariant: concatenating the byte ranges of the
//! emitted tokens reproduces the input exactly (asserted by
//! [`lex`] in debug builds and by the fixture tests).  Unterminated
//! constructs (a block comment or string running to EOF) are tolerated —
//! the remainder becomes one token — so the lexer never fails; a file the
//! compiler would reject still lints deterministically.

/// What a [`Token`] is.  Granularity is chosen for rule-writing, not for
/// parsing: keywords are just [`Ident`](TokenKind::Ident)s, and punctuation
/// is emitted one character at a time (rules that care about `::` or `==`
/// check byte adjacency of neighbouring `Punct` tokens).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Spaces, tabs, newlines.
    Whitespace,
    /// `// …` including doc comments `///` and `//!` (to end of line).
    LineComment,
    /// `/* … */`, nested per Rust rules.
    BlockComment,
    /// `#!/usr/bin/env …` on the very first line (not `#![…]`).
    Shebang,
    /// Identifiers and keywords, including raw identifiers `r#ident`.
    Ident,
    /// `'label` / `'a` (no closing quote).
    Lifetime,
    /// `'x'`, `'\n'`, `'\u{1F600}'`.
    Char,
    /// `b'x'`.
    Byte,
    /// `"…"` with escapes.
    Str,
    /// `r"…"`, `r#"…"#` with any number of hashes.
    RawStr,
    /// `b"…"`.
    ByteStr,
    /// `br"…"`, `br#"…"#`.
    RawByteStr,
    /// Integer or float literal, prefix/suffix included (`0xFF`, `1_000u64`,
    /// `2.5e-3f32`).
    Number,
    /// A single punctuation character.
    Punct,
    /// Anything else (stray non-ASCII outside an identifier, `\r` alone…).
    Unknown,
}

/// One lexed token: a kind plus the byte range it covers in the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Byte offset of the first byte, inclusive.
    pub start: usize,
    /// Byte offset one past the last byte, exclusive.
    pub end: usize,
}

impl Token {
    /// The token's text within `source` (the string it was lexed from).
    pub fn text<'s>(&self, source: &'s str) -> &'s str {
        &source[self.start..self.end]
    }

    /// Whether the token is code rather than trivia: not whitespace, not a
    /// comment, not a shebang.
    pub fn is_significant(&self) -> bool {
        !matches!(
            self.kind,
            TokenKind::Whitespace
                | TokenKind::LineComment
                | TokenKind::BlockComment
                | TokenKind::Shebang
        )
    }
}

/// Lexes `source` completely.  Never fails; see the module docs for how
/// malformed input degrades.
pub fn lex(source: &str) -> Vec<Token> {
    let mut lexer = Lexer { src: source, pos: 0 };
    let mut tokens = Vec::new();
    while lexer.pos < lexer.src.len() {
        let start = lexer.pos;
        let kind = lexer.next_kind(start == 0);
        debug_assert!(lexer.pos > start, "lexer made no progress at byte {start}");
        tokens.push(Token { kind, start, end: lexer.pos });
    }
    debug_assert!(
        tokens.iter().all(|t| source.get(t.start..t.end).is_some())
            && tokens.windows(2).all(|w| w[0].end == w[1].start)
            && tokens.first().is_none_or(|t| t.start == 0)
            && tokens.last().is_none_or(|t| t.end == source.len()),
        "lexer lost bytes"
    );
    tokens
}

struct Lexer<'s> {
    src: &'s str,
    pos: usize,
}

impl Lexer<'_> {
    fn bytes(&self) -> &[u8] {
        self.src.as_bytes()
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes().get(self.pos + ahead).copied()
    }

    /// Advances past the (UTF-8) character at the current position.
    fn bump_char(&mut self) {
        let mut next = self.pos + 1;
        while next < self.src.len() && !self.src.is_char_boundary(next) {
            next += 1;
        }
        self.pos = next;
    }

    fn next_kind(&mut self, at_file_start: bool) -> TokenKind {
        let b = self.peek(0).expect("next_kind called at EOF");
        match b {
            b'#' if at_file_start && self.peek(1) == Some(b'!') && self.peek(2) != Some(b'[') => {
                self.consume_until_newline();
                TokenKind::Shebang
            }
            b'/' if self.peek(1) == Some(b'/') => {
                self.consume_until_newline();
                TokenKind::LineComment
            }
            b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
            b'r' => self.raw_or_ident(),
            b'b' => self.byte_prefixed_or_ident(),
            b'\'' => self.lifetime_or_char(),
            b'"' => {
                self.quoted_string();
                TokenKind::Str
            }
            b'0'..=b'9' => self.number(),
            _ if is_ident_start(b) => {
                self.consume_ident();
                TokenKind::Ident
            }
            _ if b.is_ascii_whitespace() => {
                while self.peek(0).is_some_and(|b| b.is_ascii_whitespace()) {
                    self.pos += 1;
                }
                TokenKind::Whitespace
            }
            _ if b.is_ascii() => {
                self.pos += 1;
                TokenKind::Punct
            }
            _ => {
                // A non-ASCII character: identifier if it starts one
                // (Rust allows Unicode identifiers), otherwise unknown.
                let ch = self.src[self.pos..].chars().next().expect("checked non-empty");
                self.bump_char();
                if ch.is_alphabetic() {
                    self.consume_ident();
                    TokenKind::Ident
                } else {
                    TokenKind::Unknown
                }
            }
        }
    }

    fn consume_until_newline(&mut self) {
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.pos += 1;
        }
    }

    fn consume_ident(&mut self) {
        while let Some(b) = self.peek(0) {
            if is_ident_continue(b) {
                self.pos += 1;
            } else if !b.is_ascii() {
                let ch = self.src[self.pos..].chars().next().expect("checked non-empty");
                if ch.is_alphanumeric() {
                    self.bump_char();
                } else {
                    break;
                }
            } else {
                break;
            }
        }
    }

    fn block_comment(&mut self) -> TokenKind {
        self.pos += 2; // /*
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (Some(_), _) => self.pos += 1,
                (None, _) => break, // unterminated: comment runs to EOF
            }
        }
        TokenKind::BlockComment
    }

    /// At `r`: raw string `r"…"` / `r#"…"#`, raw identifier `r#ident`, or a
    /// plain identifier starting with `r`.
    fn raw_or_ident(&mut self) -> TokenKind {
        let mut hashes = 0;
        while self.peek(1 + hashes) == Some(b'#') {
            hashes += 1;
        }
        match self.peek(1 + hashes) {
            Some(b'"') => {
                self.pos += 1;
                self.raw_string_body(hashes);
                TokenKind::RawStr
            }
            Some(b) if hashes == 1 && is_ident_start(b) => {
                self.pos += 2; // r#
                self.consume_ident();
                TokenKind::Ident
            }
            _ => {
                self.consume_ident();
                TokenKind::Ident
            }
        }
    }

    /// At `b`: `b'x'`, `b"…"`, `br#"…"#`, or an identifier starting with `b`.
    fn byte_prefixed_or_ident(&mut self) -> TokenKind {
        match self.peek(1) {
            Some(b'\'') => {
                self.pos += 1;
                self.char_body();
                TokenKind::Byte
            }
            Some(b'"') => {
                self.pos += 1;
                self.quoted_string();
                TokenKind::ByteStr
            }
            Some(b'r') => {
                let mut hashes = 0;
                while self.peek(2 + hashes) == Some(b'#') {
                    hashes += 1;
                }
                if self.peek(2 + hashes) == Some(b'"') {
                    self.pos += 2;
                    self.raw_string_body(hashes);
                    TokenKind::RawByteStr
                } else {
                    self.consume_ident();
                    TokenKind::Ident
                }
            }
            _ => {
                self.consume_ident();
                TokenKind::Ident
            }
        }
    }

    /// At the `#`s (if any) preceding the opening quote of a raw string:
    /// consumes `#…#"…"#…#`.
    fn raw_string_body(&mut self, hashes: usize) {
        self.pos += hashes + 1; // #…#"
        loop {
            match self.peek(0) {
                None => return, // unterminated
                Some(b'"') => {
                    let closed = (0..hashes).all(|i| self.peek(1 + i) == Some(b'#'));
                    if closed {
                        self.pos += 1 + hashes;
                        return;
                    }
                    self.pos += 1;
                }
                Some(_) => self.bump_char(),
            }
        }
    }

    /// At the opening `"`: consumes a (cooked) string with escapes.
    fn quoted_string(&mut self) {
        self.pos += 1;
        loop {
            match self.peek(0) {
                None => return, // unterminated
                Some(b'"') => {
                    self.pos += 1;
                    return;
                }
                Some(b'\\') => {
                    self.pos += 1;
                    if self.peek(0).is_some() {
                        self.bump_char();
                    }
                }
                Some(_) => self.bump_char(),
            }
        }
    }

    /// At `'`: a lifetime (`'a`, `'static`) or a char literal (`'x'`,
    /// `'\n'`).  Disambiguation mirrors rustc: an identifier after the
    /// quote is a char literal only if a closing quote follows it.
    fn lifetime_or_char(&mut self) -> TokenKind {
        match self.peek(1) {
            Some(b'\\') => {
                self.pos += 1;
                self.char_body();
                TokenKind::Char
            }
            Some(b) if is_ident_start(b) => {
                let mut len = 1;
                while self.peek(1 + len).is_some_and(is_ident_continue) {
                    len += 1;
                }
                if self.peek(1 + len) == Some(b'\'') {
                    self.pos += 2 + len; // 'ident'
                    TokenKind::Char
                } else {
                    self.pos += 1 + len; // 'ident
                    TokenKind::Lifetime
                }
            }
            Some(b'\'') => {
                // `''` — not valid Rust; consume both quotes as one token.
                self.pos += 2;
                TokenKind::Char
            }
            Some(_) => {
                self.pos += 1;
                self.char_body();
                TokenKind::Char
            }
            None => {
                self.pos += 1;
                TokenKind::Unknown
            }
        }
    }

    /// At the opening `'` of a char/byte literal: consumes through the
    /// closing quote (bounded, so a stray quote cannot swallow the file).
    fn char_body(&mut self) {
        self.pos += 1;
        match self.peek(0) {
            Some(b'\\') => {
                self.pos += 1;
                // The escape body: `\n`, `\x41`, `\u{…}`.
                if self.peek(0) == Some(b'u') && self.peek(1) == Some(b'{') {
                    self.pos += 2;
                    while self.peek(0).is_some_and(|b| b != b'}' && b != b'\'') {
                        self.pos += 1;
                    }
                    if self.peek(0) == Some(b'}') {
                        self.pos += 1;
                    }
                } else if self.peek(0).is_some() {
                    self.bump_char();
                    // Hex escapes (`\x41`) carry trailing digits.
                    while self.peek(0).is_some_and(|b| b.is_ascii_hexdigit()) {
                        self.pos += 1;
                    }
                }
            }
            Some(_) => self.bump_char(),
            None => return,
        }
        if self.peek(0) == Some(b'\'') {
            self.pos += 1;
        }
    }

    /// At a digit: integer or float, prefixes, underscores, exponent and
    /// type suffix included.
    fn number(&mut self) -> TokenKind {
        if self.peek(0) == Some(b'0')
            && matches!(self.peek(1), Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B'))
        {
            self.pos += 2;
            while self.peek(0).is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_') {
                self.pos += 1;
            }
            return TokenKind::Number;
        }
        self.consume_digits();
        // Fractional part: `1.5` yes; `1..2` (range) and `1.foo()` (method
        // call on a literal) no; a trailing `1.` yes.
        if self.peek(0) == Some(b'.') {
            match self.peek(1) {
                Some(b'0'..=b'9') => {
                    self.pos += 1;
                    self.consume_digits();
                }
                Some(b) if b == b'.' || is_ident_start(b) => {}
                _ => self.pos += 1, // trailing `1.`
            }
        }
        // Exponent: `1e9`, `2.5E-3`.
        if matches!(self.peek(0), Some(b'e' | b'E')) {
            let sign = usize::from(matches!(self.peek(1), Some(b'+' | b'-')));
            if self.peek(1 + sign).is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1 + sign;
                self.consume_digits();
            }
        }
        // Type suffix: `u64`, `f32`, `usize`…
        while self.peek(0).is_some_and(is_ident_continue) {
            self.pos += 1;
        }
        TokenKind::Number
    }

    fn consume_digits(&mut self) {
        while self.peek(0).is_some_and(|b| b.is_ascii_digit() || b == b'_') {
            self.pos += 1;
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Whether a [`TokenKind::Number`] literal is a *float* literal: a decimal
/// point, a decimal exponent, or an `f32`/`f64` suffix (hex/octal/binary
/// literals are never floats).
pub fn number_is_float(text: &str) -> bool {
    let bytes = text.as_bytes();
    if bytes.len() >= 2
        && bytes[0] == b'0'
        && matches!(bytes[1], b'x' | b'X' | b'o' | b'O' | b'b' | b'B')
    {
        return false;
    }
    text.contains('.')
        || text.ends_with("f32")
        || text.ends_with("f64")
        || text.bytes().any(|b| matches!(b, b'e' | b'E'))
}

/// The numeric value of a float literal, when it parses after stripping
/// underscores and any `f32`/`f64` suffix.  Used by the `float-eq` rule to
/// exempt comparisons against exact zero.
pub fn float_value(text: &str) -> Option<f64> {
    let cleaned: String = text.chars().filter(|c| *c != '_').collect();
    let cleaned =
        cleaned.strip_suffix("f32").or_else(|| cleaned.strip_suffix("f64")).unwrap_or(&cleaned);
    cleaned.parse::<f64>().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(source: &str) -> Vec<(TokenKind, &str)> {
        lex(source).into_iter().map(|t| (t.kind, t.text(source))).collect()
    }

    fn significant(source: &str) -> Vec<(TokenKind, &str)> {
        kinds(source).into_iter().filter(|(k, _)| !matches!(k, TokenKind::Whitespace)).collect()
    }

    #[test]
    fn lexing_is_lossless() {
        let source = r##"
            #![allow(dead_code)]
            /* outer /* nested */ still comment */
            fn main() { // trailing
                let s = r#"raw "quoted" body"#;
                let b = b"bytes";
                let c = 'x'; let nl = '\n'; let u = '\u{1F600}';
                let l: &'static str = "lit";
                let n = 1_000.5e-3f64 + 0xFF + 1..2;
            }
        "##;
        let tokens = lex(source);
        let rebuilt: String = tokens.iter().map(|t| t.text(source)).collect();
        assert_eq!(rebuilt, source);
    }

    #[test]
    fn comments_nest_and_end() {
        let toks = significant("/* a /* b */ c */ fn");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].0, TokenKind::BlockComment);
        assert_eq!(toks[1], (TokenKind::Ident, "fn"));
    }

    #[test]
    fn raw_strings_swallow_quotes_and_hashes() {
        let src = r###"let s = r#"contains "quotes" and // not a comment"#;"###;
        let toks = kinds(src);
        let raw = toks.iter().find(|(k, _)| *k == TokenKind::RawStr).expect("raw string lexed");
        assert!(raw.1.contains("not a comment"));
        assert!(!toks.iter().any(|(k, _)| *k == TokenKind::LineComment));
    }

    #[test]
    fn lifetimes_and_chars_disambiguate() {
        let toks = significant("'a 'static 'x' '\\n' b'z'");
        let expect = [
            (TokenKind::Lifetime, "'a"),
            (TokenKind::Lifetime, "'static"),
            (TokenKind::Char, "'x'"),
            (TokenKind::Char, "'\\n'"),
            (TokenKind::Byte, "b'z'"),
        ];
        assert_eq!(toks, expect);
    }

    #[test]
    fn shebang_only_at_file_start() {
        let toks = kinds("#!/usr/bin/env rust\nfn x() {}");
        assert_eq!(toks[0].0, TokenKind::Shebang);
        let toks = kinds("#![allow(x)]");
        assert_eq!(toks[0], (TokenKind::Punct, "#"));
    }

    #[test]
    fn numbers_classify_floats() {
        for float in ["1.5", "2.", "1e9", "2.5E-3", "1_000.0", "3f32", "0.0f64"] {
            assert!(number_is_float(float), "{float} should be a float literal");
        }
        for int in ["17", "0xFF", "1_000u64", "0b101", "0o17", "0xE1"] {
            assert!(!number_is_float(int), "{int} should not be a float literal");
        }
        assert_eq!(float_value("0.0"), Some(0.0));
        assert_eq!(float_value("1_0.5f32"), Some(10.5));
    }

    #[test]
    fn range_and_method_dots_are_not_fractions() {
        let toks = significant("1..2");
        assert_eq!(toks[0], (TokenKind::Number, "1"));
        assert_eq!(toks[1], (TokenKind::Punct, "."));
        let toks = significant("1.max(2)");
        assert_eq!(toks[0], (TokenKind::Number, "1"));
        assert_eq!(toks[1], (TokenKind::Punct, "."));
        assert_eq!(toks[2], (TokenKind::Ident, "max"));
    }

    #[test]
    fn raw_identifiers_are_identifiers() {
        let toks = significant("r#type r#match normal");
        assert!(toks.iter().all(|(k, _)| *k == TokenKind::Ident));
        assert_eq!(toks[0].1, "r#type");
    }
}
