//! The lake-lint CLI.
//!
//! ```text
//! cargo run -q -p lake-lint                  # human output, exit 1 on errors
//! cargo run -q -p lake-lint -- --format json # machine output (CI artifact)
//! cargo run -q -p lake-lint -- --rule float-eq
//! cargo run -q -p lake-lint -- --list-rules
//! ```
//!
//! Exit codes: `0` clean, `1` at least one error-severity finding, `2` the
//! run itself failed (unreadable input, broken walk, bad arguments).

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

use lake_lint::{default_rules, diag::json_string, Engine, LintReport, Severity};

struct Options {
    root: Option<PathBuf>,
    format: Format,
    rule: Option<String>,
    list_rules: bool,
}

#[derive(PartialEq)]
enum Format {
    Human,
    Json,
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("lake-lint: {message}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    if options.list_rules {
        for rule in default_rules() {
            println!("{:<22} {}", rule.id(), rule.description());
        }
        return ExitCode::SUCCESS;
    }

    let root = match options.root.clone().map_or_else(discover_root, Ok) {
        Ok(root) => root,
        Err(message) => {
            eprintln!("lake-lint: {message}");
            return ExitCode::from(2);
        }
    };

    let engine = Engine::new(&root);
    let result = match &options.rule {
        Some(id) => engine.run_rule(id),
        None => engine.run(),
    };
    let report = match result {
        Ok(report) => report,
        Err(error) => {
            eprintln!("lake-lint: {error}");
            return ExitCode::from(2);
        }
    };

    match options.format {
        Format::Human => print_human(&report),
        Format::Json => print_json(&root, &engine, &report),
    }

    if report.error_count() > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

const USAGE: &str = "\
usage: lake-lint [--root <dir>] [--format human|json] [--rule <id>] [--list-rules]
  --root <dir>     workspace root (default: walk up from cwd to [workspace])
  --format <fmt>   output format: human (default) or json
  --rule <id>      run a single rule instead of the full registry
  --list-rules     print the rule registry and exit";

fn parse_args() -> Result<Options, String> {
    let mut options = Options { root: None, format: Format::Human, rule: None, list_rules: false };
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let value = args.next().ok_or("--root needs a directory argument")?;
                options.root = Some(PathBuf::from(value));
            }
            "--format" => {
                let value = args.next().ok_or("--format needs an argument")?;
                options.format = match value.as_str() {
                    "human" => Format::Human,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--rule" => {
                options.rule = Some(args.next().ok_or("--rule needs a rule id argument")?);
            }
            "--list-rules" => options.list_rules = true,
            "--help" | "-h" => return Err("help requested".to_string()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(options)
}

/// Walks up from the current directory to the first `Cargo.toml` that
/// declares a `[workspace]` — so the binary works from any crate dir.
fn discover_root() -> Result<PathBuf, String> {
    let mut dir = env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace Cargo.toml found above the current directory — pass --root"
                .to_string());
        }
    }
}

fn print_human(report: &LintReport) {
    for diagnostic in &report.diagnostics {
        println!("{diagnostic}");
    }
    let errors = report.error_count();
    let warnings = report.diagnostics.len() - errors;
    if report.is_clean() {
        println!("lake-lint: clean — {} sources analysed", report.sources);
    } else {
        println!(
            "lake-lint: {errors} error(s), {warnings} warning(s) across {} sources",
            report.sources
        );
    }
}

fn print_json(root: &std::path::Path, engine: &Engine, report: &LintReport) {
    let rules: Vec<String> = engine.rule_ids().iter().map(|id| json_string(id)).collect();
    let findings: Vec<String> = report.diagnostics.iter().map(|d| d.to_json()).collect();
    let errors = report.error_count();
    let warnings = report.diagnostics.iter().filter(|d| d.severity == Severity::Warning).count();
    println!(
        "{{\n  \"root\": {},\n  \"sources\": {},\n  \"rules\": [{}],\n  \"errors\": {},\n  \
         \"warnings\": {},\n  \"findings\": [\n    {}\n  ]\n}}",
        json_string(&root.display().to_string()),
        report.sources,
        rules.join(", "),
        errors,
        warnings,
        findings.join(",\n    ")
    );
}
