//! Per-file `use`-alias resolution.
//!
//! Path-based rules must not be evadable by renaming: `use std::thread as
//! t; t::spawn(...)` is exactly as much of a raw thread primitive as
//! `std::thread::spawn(...)`.  This module walks the significant token
//! stream, parses every `use` declaration (groups, nesting, `as` renames,
//! `self` re-exports) into *bindings* — imported name → full path — and
//! then extracts every path *chain* (`a::b::c`) from the file, normalising
//! each chain's head through the binding table.
//!
//! Resolution is deliberately file-local and one level deep: a lint that
//! needed whole-program name resolution would be a compiler, not a linter.
//! The trade-off is documented per rule in `docs/LINTS.md`.

use crate::lexer::{Token, TokenKind};

/// One name a `use` declaration brings into scope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseBinding {
    /// The in-scope name (the alias after `as`, or the last path segment).
    pub name: String,
    /// The full imported path, e.g. `["std", "thread", "spawn"]`.
    pub path: Vec<String>,
    /// Byte offset of the binding's defining token (for diagnostics).
    pub offset: usize,
}

/// A `seg::seg::…` chain as it appears in the source, with its normalised
/// form after expanding the leading segment through the file's bindings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathOccurrence {
    /// The segments exactly as written.
    pub written: Vec<String>,
    /// The segments after alias expansion (identical to `written` when the
    /// head is not an imported name).
    pub resolved: Vec<String>,
    /// Byte offset of the first segment.
    pub offset: usize,
}

impl PathOccurrence {
    /// Whether the resolved path starts with `prefix`.
    pub fn starts_with(&self, prefix: &[&str]) -> bool {
        self.resolved.len() >= prefix.len()
            && self.resolved.iter().zip(prefix).all(|(seg, want)| seg == want)
    }

    /// Whether the resolved path contains `a` immediately followed by `b`
    /// (e.g. `Instant`, `now` matches both `Instant::now` and
    /// `std::time::Instant::now`).
    pub fn contains_pair(&self, a: &str, b: &str) -> bool {
        self.resolved.windows(2).any(|w| w[0] == a && w[1] == b)
    }
}

/// Keywords that introduce a *definition* of the following identifier; a
/// chain must not start right after one (`fn spawn(...)` defines `spawn`,
/// it does not call an imported `spawn`; `use … as t` defines `t`).
const DEFINERS: [&str; 8] = ["fn", "mod", "struct", "enum", "trait", "type", "let", "as"];

/// Parses all `use` bindings and extracts all path chains from a token
/// stream.  `sig` must hold the indices of significant tokens in `tokens`.
pub fn analyze(
    source: &str,
    tokens: &[Token],
    sig: &[usize],
) -> (Vec<UseBinding>, Vec<PathOccurrence>) {
    let bindings = parse_bindings(source, tokens, sig);
    let chains = extract_chains(source, tokens, sig, &bindings);
    (bindings, chains)
}

fn parse_bindings(source: &str, tokens: &[Token], sig: &[usize]) -> Vec<UseBinding> {
    let mut bindings = Vec::new();
    let mut i = 0;
    while i < sig.len() {
        let tok = tokens[sig[i]];
        if tok.kind == TokenKind::Ident && tok.text(source) == "use" {
            i = parse_use_decl(source, tokens, sig, i + 1, &mut bindings);
        } else {
            i += 1;
        }
    }
    bindings
}

/// Parses one `use` declaration starting at significant index `start`
/// (just past the `use` keyword); returns the index past the closing `;`.
fn parse_use_decl(
    source: &str,
    tokens: &[Token],
    sig: &[usize],
    start: usize,
    bindings: &mut Vec<UseBinding>,
) -> usize {
    let mut i = start;
    parse_use_tree(source, tokens, sig, &mut i, Vec::new(), bindings);
    // Consume through the terminating `;` (tolerating malformed input).
    while i < sig.len() {
        let tok = tokens[sig[i]];
        i += 1;
        if tok.kind == TokenKind::Punct && tok.text(source) == ";" {
            break;
        }
    }
    i
}

/// Recursive descent over a use tree: `prefix::seg::…`, `prefix::{a, b}`,
/// `prefix::*`, `… as alias`.  Appends completed bindings.
fn parse_use_tree(
    source: &str,
    tokens: &[Token],
    sig: &[usize],
    i: &mut usize,
    mut prefix: Vec<String>,
    bindings: &mut Vec<UseBinding>,
) {
    let mut last_offset = 0;
    loop {
        let Some(&ti) = sig.get(*i) else { return };
        let tok = tokens[ti];
        let text = tok.text(source);
        match tok.kind {
            TokenKind::Ident if text == "as" => {
                // `path as alias`
                *i += 1;
                if let Some(&ai) = sig.get(*i) {
                    let alias = tokens[ai];
                    if alias.kind == TokenKind::Ident {
                        bindings.push(UseBinding {
                            name: alias.text(source).to_string(),
                            path: prefix.clone(),
                            offset: alias.start,
                        });
                        *i += 1;
                    }
                }
                return;
            }
            TokenKind::Ident if text == "self" && !prefix.is_empty() => {
                // `parent::{self, …}` binds the parent's own name.
                bindings.push(UseBinding {
                    name: prefix.last().expect("non-empty prefix").clone(),
                    path: prefix.clone(),
                    offset: tok.start,
                });
                *i += 1;
            }
            TokenKind::Ident => {
                prefix.push(text.to_string());
                last_offset = tok.start;
                *i += 1;
            }
            TokenKind::Punct => match text {
                ":" => *i += 1, // each `:` of a `::` separator
                "{" => {
                    *i += 1;
                    loop {
                        parse_use_tree(source, tokens, sig, i, prefix.clone(), bindings);
                        let Some(&ni) = sig.get(*i) else { return };
                        let next = tokens[ni].text(source);
                        if next == "," {
                            *i += 1;
                        } else {
                            if next == "}" {
                                *i += 1;
                            }
                            break;
                        }
                    }
                    return;
                }
                "*" => {
                    // Glob: individual names are unresolvable, but the
                    // prefix itself was still a written path chain, which
                    // `extract_chains` reports independently.
                    *i += 1;
                    return;
                }
                "," | "}" | ";" => {
                    // End of this tree: bind the final segment by name.
                    if !prefix.is_empty() {
                        bindings.push(UseBinding {
                            name: prefix.last().expect("non-empty prefix").clone(),
                            path: prefix,
                            offset: last_offset,
                        });
                    }
                    return;
                }
                _ => *i += 1, // `pub(crate) use`, attributes… skip
            },
            _ => *i += 1,
        }
    }
}

fn extract_chains(
    source: &str,
    tokens: &[Token],
    sig: &[usize],
    bindings: &[UseBinding],
) -> Vec<PathOccurrence> {
    let mut chains = Vec::new();
    let mut i = 0;
    while i < sig.len() {
        let tok = tokens[sig[i]];
        if tok.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        // A chain must start fresh: not a field/method name after `.`, not
        // the continuation of a longer chain after `::`, and not the name
        // being *defined* by `fn`/`mod`/`let`/….
        if let Some(prev) = i.checked_sub(1).map(|p| tokens[sig[p]]) {
            let prev_text = prev.text(source);
            let dot = prev.kind == TokenKind::Punct && prev_text == ".";
            let sep = prev.kind == TokenKind::Punct
                && prev_text == ":"
                && i >= 2
                && is_path_sep(source, tokens[sig[i - 2]], prev);
            let defines = prev.kind == TokenKind::Ident && DEFINERS.contains(&prev_text);
            if dot || sep || defines {
                i += 1;
                continue;
            }
        }
        let offset = tok.start;
        let mut written = vec![tok.text(source).to_string()];
        let mut j = i + 1;
        while let Some((&c1, &c2)) = sig.get(j).zip(sig.get(j + 1)) {
            if !is_path_sep(source, tokens[c1], tokens[c2]) {
                break;
            }
            let Some(&ni) = sig.get(j + 2) else { break };
            let next = tokens[ni];
            if next.kind != TokenKind::Ident {
                break;
            }
            written.push(next.text(source).to_string());
            j += 3;
        }
        let resolved = resolve(&written, bindings);
        chains.push(PathOccurrence { written, resolved, offset });
        i = j;
    }
    chains
}

/// Whether two consecutive tokens form a `::` path separator: both `:`
/// puncts, byte-adjacent.
fn is_path_sep(source: &str, a: Token, b: Token) -> bool {
    a.kind == TokenKind::Punct
        && b.kind == TokenKind::Punct
        && a.text(source) == ":"
        && b.text(source) == ":"
        && a.end == b.start
}

/// Expands the head segment of `written` through the binding table.
fn resolve(written: &[String], bindings: &[UseBinding]) -> Vec<String> {
    let Some(head) = written.first() else { return Vec::new() };
    // Last binding wins, matching shadowing semantics closely enough.
    for binding in bindings.iter().rev() {
        if &binding.name == head {
            let mut resolved = binding.path.clone();
            resolved.extend(written[1..].iter().cloned());
            return resolved;
        }
    }
    written.to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn analyze_source(source: &str) -> (Vec<UseBinding>, Vec<PathOccurrence>) {
        let tokens = lex(source);
        let sig: Vec<usize> =
            tokens.iter().enumerate().filter(|(_, t)| t.is_significant()).map(|(i, _)| i).collect();
        analyze(source, &tokens, &sig)
    }

    fn binding(bindings: &[UseBinding], name: &str) -> Vec<String> {
        bindings.iter().rev().find(|b| b.name == name).map(|b| b.path.clone()).unwrap_or_default()
    }

    #[test]
    fn plain_and_aliased_imports_bind() {
        let (bindings, _) = analyze_source("use std::thread;\nuse std::thread as t;");
        assert_eq!(binding(&bindings, "thread"), ["std", "thread"]);
        assert_eq!(binding(&bindings, "t"), ["std", "thread"]);
    }

    #[test]
    fn groups_nest_and_self_binds_the_parent() {
        let (bindings, _) =
            analyze_source("use std::{thread::{self, spawn as go}, time::Instant};");
        assert_eq!(binding(&bindings, "thread"), ["std", "thread"]);
        assert_eq!(binding(&bindings, "go"), ["std", "thread", "spawn"]);
        assert_eq!(binding(&bindings, "Instant"), ["std", "time", "Instant"]);
    }

    #[test]
    fn chains_resolve_through_aliases() {
        let (_, chains) = analyze_source("use std::thread as t;\nfn main() { t::spawn(|| {}); }");
        assert!(chains.iter().any(|c| c.resolved == ["std", "thread", "spawn"]));
    }

    #[test]
    fn field_access_and_definitions_do_not_start_chains() {
        let (_, chains) =
            analyze_source("use std::thread;\nfn thread() {}\nfn f(x: X) { x.thread; }");
        // The only `std::thread`-resolved chain is inside the use decl.
        let hits: Vec<_> = chains.iter().filter(|c| c.starts_with(&["std", "thread"])).collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].written, ["std", "thread"]);
    }

    #[test]
    fn spaced_colons_are_not_separators() {
        let (_, chains) = analyze_source("fn f(a: A) { b(a: :c) }");
        assert!(chains.iter().all(|c| c.written.len() == 1));
    }

    #[test]
    fn pair_matching_sees_type_and_method() {
        let (_, chains) =
            analyze_source("use std::time::Instant;\nfn f() { let t = Instant::now(); }");
        assert!(chains.iter().any(|c| c.contains_pair("Instant", "now")));
        let (_, chains) = analyze_source("fn f() { std::time::Instant::now(); }");
        assert!(chains.iter().any(|c| c.contains_pair("Instant", "now")));
    }
}
