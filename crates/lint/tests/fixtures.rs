//! Fixture tests: inline sources through the exact pipeline CI runs
//! ([`lake_lint::check_source`] = lex → resolve → rules → pragmas).
//!
//! Fixtures are deliberately *inline strings*, never `.rs` files on disk:
//! the engine scans everything under `crates/`, so an on-disk fixture
//! containing a violation would fail the real CI gate it exists to test.

use lake_lint::{check_source, lexer, Diagnostic, EMPTY_JUSTIFICATION, UNKNOWN_RULE};

/// Path that puts a fixture in scope for `raw-threads` (any non-runtime
/// crate) without tripping file-level test exemptions.
const LIB: &str = "crates/x/src/lib.rs";

fn rules_of(diags: &[Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.rule).collect()
}

// ---------------------------------------------------------------- lexer --

#[test]
fn lexing_is_lossless_on_gnarly_input() {
    let source = r##"#!/usr/bin/env run
//! doc
/* outer /* nested */ still comment */
fn f<'a>(x: &'a str) -> char {
    let _s = "thread::spawn \" escaped";
    let _r = r#"raw "quoted" text"#;
    let _b = b"bytes";
    let _c = 'x';
    let _n = 0xFF_u32 + 1.5e-3 + 1..2;
    'q'
}
"##;
    let tokens = lexer::lex(source);
    let rebuilt: String = tokens.iter().map(|t| t.text(source)).collect();
    assert_eq!(rebuilt, source, "token ranges must tile the input exactly");
    let mut pos = 0;
    for token in &tokens {
        assert_eq!(token.start, pos, "tokens must be contiguous");
        pos = token.end;
    }
    assert_eq!(pos, source.len());
}

// --------------------------------------------------- trivia is invisible --

#[test]
fn comments_do_not_fire_rules() {
    let src = "\
// std::thread::spawn in a line comment
/* std::thread::spawn in a block comment
   /* nested: thread::scope */ still inside */
fn f() {}
";
    assert!(check_source(LIB, src).is_empty());
}

#[test]
fn string_and_char_literals_do_not_fire_path_rules() {
    let src = r##"
fn f() {
    let _a = "std::thread::spawn";
    let _b = r#"use std::thread; t::spawn"#;
    let _c = ':';
    let _d = "unsafe { }";
}
"##;
    // Path in `crates/x`: raw-threads and unsafe-scope both in scope, and
    // neither may fire on literal content.
    assert!(check_source(LIB, src).is_empty());
}

// ------------------------------------------------------ alias resolution --

#[test]
fn direct_use_fires_raw_threads() {
    let src = "use std::thread;\n";
    let diags = check_source(LIB, src);
    assert_eq!(rules_of(&diags), ["raw-threads"]);
}

#[test]
fn alias_evasion_fires_raw_threads() {
    // The case greps could never catch: neither `t::spawn` nor the bare
    // import line contains the full textual pattern at the call site.
    let src = "use std::thread as t;\nfn f() { t::spawn(|| {}); }\n";
    let diags = check_source(LIB, src);
    assert_eq!(diags.len(), 2, "the import and the aliased call: {diags:?}");
    assert!(diags.iter().all(|d| d.rule == "raw-threads"));
    let call = diags.iter().find(|d| d.line == 2).expect("call-site diagnostic");
    assert!(
        call.message.contains("std::thread::spawn") && call.message.contains("t::spawn"),
        "the message should show both written and resolved forms: {}",
        call.message
    );
}

#[test]
fn grouped_self_import_fires_raw_threads() {
    let src = "use std::{thread::{self}, time::Duration};\n";
    let diags = check_source(LIB, src);
    assert!(diags.iter().any(|d| d.rule == "raw-threads"), "got {diags:?}");
}

#[test]
fn runtime_crate_is_exempt_from_raw_threads() {
    let src = "use std::thread;\nfn f() { std::thread::spawn(|| {}); }\n";
    assert!(check_source("crates/runtime/src/executor.rs", src).is_empty());
}

// ---------------------------------------------------------------- spans --

#[test]
fn diagnostics_point_at_the_exact_token() {
    let src = "fn f() {\n    std::thread::spawn(|| {});\n}\n";
    let diags = check_source(LIB, src);
    assert_eq!(diags.len(), 1);
    // `std` starts at line 2, column 5 (1-based, after 4 spaces).
    assert_eq!((diags[0].line, diags[0].col), (2, 5));
    assert_eq!(
        diags[0].to_string().split(": ").next().expect("span prefix"),
        "crates/x/src/lib.rs:2:5"
    );
}

// -------------------------------------------------------------- pragmas --

#[test]
fn pragma_with_justification_suppresses_on_both_lines() {
    let trailing = "use std::thread; // lint:allow(raw-threads): doc example, never compiled\n";
    assert!(check_source(LIB, trailing).is_empty());
    let preceding = "// lint:allow(raw-threads): doc example, never compiled\nuse std::thread;\n";
    assert!(check_source(LIB, preceding).is_empty());
}

#[test]
fn pragma_does_not_reach_two_lines_down() {
    let src = "// lint:allow(raw-threads): too far away\n\nuse std::thread;\n";
    assert_eq!(rules_of(&check_source(LIB, src)), ["raw-threads"]);
}

#[test]
fn empty_justification_is_its_own_finding() {
    let src = "use std::thread; // lint:allow(raw-threads)\n";
    let diags = check_source(LIB, src);
    // Suppression still applies (the author's intent is clear), but the
    // missing justification is an error so CI fails anyway.
    assert_eq!(rules_of(&diags), [EMPTY_JUSTIFICATION]);
}

#[test]
fn unknown_rule_in_pragma_is_a_finding() {
    let src = "fn f() {} // lint:allow(raw-thread): typo'd id\n";
    let diags = check_source(LIB, src);
    assert_eq!(rules_of(&diags), [UNKNOWN_RULE]);
    assert!(diags[0].message.contains("raw-thread"));
}

// -------------------------------------------------------- scoping rules --

#[test]
fn band_keys_fire_only_on_hot_path_files() {
    let src = "fn f(h: H) { let _k = h.band_keys(7); }\n";
    assert_eq!(rules_of(&check_source("crates/core/src/blocking.rs", src)), ["string-band-keys"]);
    assert!(check_source("crates/core/src/lib.rs", src).is_empty());

    let fmt = "fn f(b: u32) -> String { format!(\"sh{b}:{b}\") }\n";
    assert_eq!(rules_of(&check_source("crates/embed/src/ann.rs", fmt)), ["string-band-keys"]);
}

#[test]
fn unsafe_fires_outside_the_kernel_only() {
    let src = "fn f() { let _ = 1; }\nunsafe fn g() {}\n";
    assert_eq!(rules_of(&check_source(LIB, src)), ["unsafe-scope"]);
    assert!(check_source("crates/embed/src/kernel.rs", src).is_empty());
}

#[test]
fn serve_panic_path_fires_in_request_modules_but_not_their_tests() {
    let src = "\
fn live(x: Option<u32>) -> u32 { x.unwrap() }
#[cfg(test)]
mod tests {
    fn t(x: Option<u32>) -> u32 { x.expect(\"test code may\") }
}
";
    let diags = check_source("crates/serve/src/http.rs", src);
    assert_eq!(rules_of(&diags), ["serve-panic-path"], "only the live unwrap: {diags:?}");
    assert_eq!(diags[0].line, 1);
    // The same source outside the serve request modules is fine.
    assert!(check_source("crates/core/src/lib.rs", src).is_empty());
}

#[test]
fn wallclock_fires_in_replay_code_only() {
    let src = "use std::time::Instant;\nfn f() { let _t = Instant::now(); }\n";
    let diags = check_source("crates/store/src/recovery.rs", src);
    assert_eq!(rules_of(&diags), ["wallclock-in-replay"]);
    assert!(check_source("crates/metrics/src/timing.rs", src).is_empty());
}

#[test]
fn float_eq_flags_nonzero_literals_and_exempts_zero_guards() {
    let nonzero = "fn f(x: f32) -> bool { x == 0.944 }\n";
    assert_eq!(rules_of(&check_source(LIB, nonzero)), ["float-eq"]);

    let negated = "fn f(x: f32) -> bool { x != -1.5 }\n";
    assert_eq!(rules_of(&check_source(LIB, negated)), ["float-eq"]);

    // Zero is exactly representable: the idiomatic divide-by-norm guard.
    let zero = "fn f(n: f32) -> bool { n == 0.0 }\n";
    assert!(check_source(LIB, zero).is_empty());

    // Integer comparisons and compound operators are not float equality.
    let ints = "fn f(x: usize) -> bool { let y = x <= 2; x == 3 && y }\n";
    assert!(check_source(LIB, ints).is_empty());

    // The epsilon module itself may write raw comparisons.
    assert!(check_source("crates/embed/src/vector.rs", nonzero).is_empty());

    // Test files assert exact fixture values legitimately.
    assert!(check_source("tests/some_test.rs", nonzero).is_empty());
}
