//! Kuhn–Munkres (Hungarian) algorithm with dual potentials.
//!
//! An independent exact implementation used to cross-check the shortest
//! augmenting path solver in tests and exposed through
//! [`AssignmentAlgorithm::Hungarian`](crate::AssignmentAlgorithm::Hungarian)
//! for the ablation benches.  Forbidden pairs (`f64::INFINITY`) are replaced
//! by a large finite penalty so the algorithm always completes; pairs that
//! received the penalty are removed from the returned assignment.

use crate::matrix::CostMatrix;
use crate::Assignment;

/// Solves the assignment problem with the O(n³) Hungarian algorithm.
pub fn hungarian(matrix: &CostMatrix) -> Assignment {
    if matrix.is_empty() {
        return Assignment { pairs: Vec::new(), total_cost: 0.0 };
    }

    // The potentials formulation below wants rows <= cols; transpose otherwise.
    let transposed = matrix.rows() > matrix.cols();
    let work;
    let m: &CostMatrix = if transposed {
        work = matrix.transpose();
        &work
    } else {
        matrix
    };

    let n = m.rows();
    let w = m.cols();

    // Penalty for forbidden pairs: larger than any achievable assignment cost
    // so a forbidden pair is only used when a row has no feasible column.
    let penalty = (m.max_finite() + 1.0) * (n as f64 + 1.0);
    let cost = |r: usize, c: usize| -> f64 {
        let v = m.get(r, c);
        if v.is_finite() {
            v
        } else {
            penalty
        }
    };

    // 1-indexed arrays in the classic formulation.
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; w + 1];
    let mut p = vec![0usize; w + 1]; // p[j] = row matched to column j (0 = none)
    let mut way = vec![0usize; w + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![f64::INFINITY; w + 1];
        let mut used = vec![false; w + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0usize;
            for j in 1..=w {
                if !used[j] {
                    let cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=w {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Augment along the alternating path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut pairs = Vec::with_capacity(n);
    for (j, &assigned_row) in p.iter().enumerate().skip(1) {
        if assigned_row != 0 {
            let row = assigned_row - 1;
            let col = j - 1;
            // Drop pairs that only exist because of the forbidden-pair penalty.
            if m.get(row, col).is_finite() {
                let pair = if transposed { (col, row) } else { (row, col) };
                pairs.push(pair);
            }
        }
    }
    Assignment::from_pairs(matrix, pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sap::shortest_augmenting_path;

    fn cost(rows: Vec<Vec<f64>>) -> CostMatrix {
        CostMatrix::from_rows(rows).unwrap()
    }

    #[test]
    fn matches_known_optimum() {
        let m = cost(vec![vec![4.0, 1.0, 3.0], vec![2.0, 0.0, 5.0], vec![3.0, 2.0, 2.0]]);
        let a = hungarian(&m);
        assert_eq!(a.len(), 3);
        assert!((a.total_cost - 5.0).abs() < 1e-9);
    }

    #[test]
    fn rectangular_matrices_both_orientations() {
        let wide = cost(vec![vec![3.0, 1.0, 2.0], vec![2.0, 4.0, 6.0]]);
        let a = hungarian(&wide);
        assert_eq!(a.len(), 2);
        assert!((a.total_cost - 3.0).abs() < 1e-9);

        let tall = wide.transpose();
        let b = hungarian(&tall);
        assert_eq!(b.len(), 2);
        assert!((b.total_cost - 3.0).abs() < 1e-9);
    }

    #[test]
    fn forbidden_pairs_dropped_from_result() {
        let inf = f64::INFINITY;
        let m = cost(vec![vec![inf, 2.0], vec![inf, 1.0]]);
        let a = hungarian(&m);
        assert_eq!(a.len(), 1);
        assert!(a.total_cost.is_finite());
    }

    #[test]
    fn agrees_with_sap_on_deterministic_grid() {
        // A structured (non-random) family of matrices exercised at several
        // sizes; optimal values must agree between the two exact solvers.
        for n in 1..=8usize {
            for k in 1..=8usize {
                let m = CostMatrix::from_fn(n, k, |r, c| {
                    (((r * 7 + c * 13) % 11) as f64) + 0.25 * ((r + 2 * c) % 5) as f64
                });
                let h = hungarian(&m);
                let s = shortest_augmenting_path(&m);
                assert_eq!(h.len(), n.min(k));
                assert_eq!(s.len(), n.min(k));
                assert!(
                    (h.total_cost - s.total_cost).abs() < 1e-9,
                    "disagreement at {n}x{k}: hungarian={} sap={}",
                    h.total_cost,
                    s.total_cost
                );
            }
        }
    }

    #[test]
    fn empty_and_single() {
        assert!(hungarian(&CostMatrix::from_rows(vec![]).unwrap()).is_empty());
        let single = cost(vec![vec![2.0]]);
        assert_eq!(hungarian(&single).pairs, vec![(0, 0)]);
    }
}
