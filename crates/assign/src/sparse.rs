//! Sparse cost matrices and a sparse-aware shortest-augmenting-path solver.
//!
//! The blocked value matcher knows, per block, exactly which (row, col)
//! cells are candidates — every other cell carries one shared *masked* cost
//! (the big-M `PRUNED_COST` of the matcher).  Materialising that as a dense
//! [`CostMatrix`] costs O(rows × cols) memory and `from_fn` closure calls per
//! block even when only a handful of cells are candidates.
//! [`SparseCostMatrix`] stores the candidate cells alone (CSR layout) plus
//! the masked cost, and [`sparse_shortest_augmenting_path`] solves it with
//! results **bit-identical** to running [`shortest_augmenting_path`] on the
//! equivalent dense matrix ([`to_dense`](SparseCostMatrix::to_dense)).
//!
//! Bit-identicality is the load-bearing guarantee, not an optimisation nicety:
//! the escalation-equivalence harness asserts that blocked (sparse-solved)
//! match groups equal the exhaustive (dense-solved) groups, ties included.  A
//! "forbidden-edge" sparse solver would *not* satisfy it — under a finite
//! big-M, an augmenting path may displace a row onto a masked cell so a
//! cheaper competitor takes its candidate column, which infinite-cost edges
//! cannot express.  The sparse solver therefore replays the dense algorithm's
//! exact arithmetic: each row's candidate costs are scattered into a dense
//! per-column buffer primed with the masked cost, the Dijkstra scan reads the
//! buffer exactly like the dense solver reads its matrix row, and the buffer
//! is un-scattered afterwards.  Identical float operations in identical order
//! give identical duals, identical tie-breaks and identical pairs; the win is
//! skipping the O(rows × cols) matrix build and its memory, not changing the
//! search.
//!
//! [`shortest_augmenting_path`]: crate::shortest_augmenting_path

use std::fmt;

use crate::matrix::CostMatrix;
use crate::Assignment;

/// A `rows × cols` cost matrix stored as candidate cells (CSR) plus one
/// shared masked cost for every other cell.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseCostMatrix {
    rows: usize,
    cols: usize,
    masked_cost: f64,
    /// CSR row pointers: row `r`'s entries live at `row_ptr[r]..row_ptr[r+1]`.
    row_ptr: Vec<usize>,
    /// Column index of each entry, ascending within a row.
    col_idx: Vec<usize>,
    /// Cost of each entry, aligned with `col_idx`.
    costs: Vec<f64>,
}

/// Errors building a [`SparseCostMatrix`].
#[derive(Debug, Clone, PartialEq)]
pub enum SparseCostError {
    /// An entry's coordinates fall outside the matrix shape.
    OutOfBounds { row: usize, col: usize },
    /// Entries are not in ascending row-major order, or a cell repeats.
    Unsorted { index: usize },
    /// An entry cost — or the masked cost — is NaN.
    NaNCost { row: usize, col: usize },
}

impl fmt::Display for SparseCostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseCostError::OutOfBounds { row, col } => {
                write!(f, "sparse cost entry ({row}, {col}) is outside the matrix")
            }
            SparseCostError::Unsorted { index } => {
                write!(f, "sparse cost entries must be sorted row-major and unique (entry {index})")
            }
            SparseCostError::NaNCost { row, col } => {
                write!(f, "sparse cost at ({row}, {col}) must not be NaN")
            }
        }
    }
}

impl std::error::Error for SparseCostError {}

impl SparseCostMatrix {
    /// Builds a sparse matrix from `(row, col, cost)` candidate entries.
    /// Entries must be in strictly ascending row-major order (the planner's
    /// canonical pair order); every non-entry cell costs `masked_cost`.
    pub fn from_entries(
        rows: usize,
        cols: usize,
        masked_cost: f64,
        entries: &[(usize, usize, f64)],
    ) -> Result<Self, SparseCostError> {
        if masked_cost.is_nan() {
            return Err(SparseCostError::NaNCost { row: usize::MAX, col: usize::MAX });
        }
        let mut row_ptr = vec![0usize; rows + 1];
        let mut col_idx = Vec::with_capacity(entries.len());
        let mut costs = Vec::with_capacity(entries.len());
        let mut previous: Option<(usize, usize)> = None;
        for (index, &(row, col, cost)) in entries.iter().enumerate() {
            if row >= rows || col >= cols {
                return Err(SparseCostError::OutOfBounds { row, col });
            }
            if cost.is_nan() {
                return Err(SparseCostError::NaNCost { row, col });
            }
            if previous.is_some_and(|p| p >= (row, col)) {
                return Err(SparseCostError::Unsorted { index });
            }
            previous = Some((row, col));
            row_ptr[row + 1] += 1;
            col_idx.push(col);
            costs.push(cost);
        }
        for r in 1..row_ptr.len() {
            row_ptr[r] += row_ptr[r - 1];
        }
        Ok(SparseCostMatrix { rows, cols, masked_cost, row_ptr, col_idx, costs })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of candidate (explicitly stored) cells.
    pub fn candidate_cells(&self) -> usize {
        self.col_idx.len()
    }

    /// The cost of every cell that is not a candidate entry.
    pub fn masked_cost(&self) -> f64 {
        self.masked_cost
    }

    /// `true` when the matrix has no cells at all.
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// The cost at `(row, col)`: the entry's cost if the cell is a
    /// candidate, the masked cost otherwise.
    ///
    /// # Panics
    /// Panics when the indices are out of range.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "sparse cost matrix index out of range");
        let (cols, costs) = self.row_entries(row);
        match cols.binary_search(&col) {
            Ok(k) => costs[k],
            Err(_) => self.masked_cost,
        }
    }

    /// Row `row`'s candidate entries as `(column indices, costs)` slices,
    /// column-ascending.
    ///
    /// # Panics
    /// Panics when `row` is out of range.
    pub fn row_entries(&self, row: usize) -> (&[usize], &[f64]) {
        assert!(row < self.rows, "sparse cost matrix row out of range");
        let span = self.row_ptr[row]..self.row_ptr[row + 1];
        (&self.col_idx[span.clone()], &self.costs[span])
    }

    /// Transposes the matrix in O(entries + rows + cols); the masked cost is
    /// shared, so values are preserved exactly.
    pub fn transpose(&self) -> SparseCostMatrix {
        let nnz = self.col_idx.len();
        let mut row_ptr = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            row_ptr[c + 1] += 1;
        }
        for c in 1..row_ptr.len() {
            row_ptr[c] += row_ptr[c - 1];
        }
        let mut cursor = row_ptr.clone();
        let mut col_idx = vec![0usize; nnz];
        let mut costs = vec![0f64; nnz];
        for r in 0..self.rows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[k];
                col_idx[cursor[c]] = r;
                costs[cursor[c]] = self.costs[k];
                cursor[c] += 1;
            }
        }
        SparseCostMatrix {
            rows: self.cols,
            cols: self.rows,
            masked_cost: self.masked_cost,
            row_ptr,
            col_idx,
            costs,
        }
    }

    /// The equivalent dense matrix — the reference object the sparse solver
    /// is bit-identical against (tests and cross-checks only; building it is
    /// exactly the cost the sparse path exists to avoid).
    pub fn to_dense(&self) -> CostMatrix {
        CostMatrix::from_fn(self.rows, self.cols, |r, c| self.get(r, c))
    }
}

/// Solves the rectangular assignment problem over a sparse cost matrix,
/// minimising total cost — bit-identical to
/// [`shortest_augmenting_path`](crate::shortest_augmenting_path) over
/// [`to_dense`](SparseCostMatrix::to_dense) (see the [module docs](self) for
/// why identity, not mere cost-equivalence, is the contract).
pub fn sparse_shortest_augmenting_path(matrix: &SparseCostMatrix) -> Assignment {
    if matrix.is_empty() {
        return Assignment { pairs: Vec::new(), total_cost: 0.0 };
    }

    // The core routine assumes rows <= cols; transpose otherwise.
    let transposed = matrix.rows() > matrix.cols();
    let work;
    let m: &SparseCostMatrix = if transposed {
        work = matrix.transpose();
        &work
    } else {
        matrix
    };

    let nr = m.rows();
    let nc = m.cols();

    let mut u = vec![0.0f64; nr];
    let mut v = vec![0.0f64; nc];
    let mut shortest_path_costs = vec![f64::INFINITY; nc];
    let mut path = vec![usize::MAX; nc];
    let mut col4row = vec![usize::MAX; nr];
    let mut row4col = vec![usize::MAX; nc];
    let mut sr = vec![false; nr];
    let mut sc = vec![false; nc];
    // The scatter buffer: primed with the masked cost, row `i`'s candidate
    // costs are written in before its scan and reverted after, so the scan
    // body reads exactly what the dense solver's `m.get(i, j)` would return.
    let mut row_cost = vec![m.masked_cost(); nc];

    'rows: for cur_row in 0..nr {
        let mut min_val = 0.0f64;
        let mut i = cur_row;
        // Columns not yet scanned in this augmentation.
        let mut remaining: Vec<usize> = (0..nc).rev().collect();
        sr.iter_mut().for_each(|x| *x = false);
        sc.iter_mut().for_each(|x| *x = false);
        shortest_path_costs.iter_mut().for_each(|x| *x = f64::INFINITY);

        let mut sink = usize::MAX;
        while sink == usize::MAX {
            sr[i] = true;
            let (cols_i, costs_i) = m.row_entries(i);
            for (k, &j) in cols_i.iter().enumerate() {
                row_cost[j] = costs_i[k];
            }
            let mut index = usize::MAX;
            let mut lowest = f64::INFINITY;
            for (it, &j) in remaining.iter().enumerate() {
                let r = min_val + row_cost[j] - u[i] - v[j];
                if r < shortest_path_costs[j] {
                    path[j] = i;
                    shortest_path_costs[j] = r;
                }
                // Prefer unmatched columns on ties so augmentation terminates
                // as early as possible.
                if shortest_path_costs[j] < lowest
                    || (shortest_path_costs[j] == lowest && row4col[j] == usize::MAX)
                {
                    lowest = shortest_path_costs[j];
                    index = it;
                }
            }
            for &j in cols_i {
                row_cost[j] = m.masked_cost();
            }

            min_val = lowest;
            if !min_val.is_finite() {
                // No augmenting path with finite cost: this row stays
                // unmatched.  Skip it without touching the duals.
                continue 'rows;
            }
            let j = remaining[index];
            if row4col[j] == usize::MAX {
                sink = j;
            } else {
                i = row4col[j];
            }
            sc[j] = true;
            remaining.swap_remove(index);
        }

        // Update dual variables.
        u[cur_row] += min_val;
        for r in 0..nr {
            if sr[r] && r != cur_row {
                u[r] += min_val - shortest_path_costs[col4row[r]];
            }
        }
        for c in 0..nc {
            if sc[c] {
                v[c] -= min_val - shortest_path_costs[c];
            }
        }

        // Augment along the found path.
        let mut j = sink;
        loop {
            let i = path[j];
            row4col[j] = i;
            std::mem::swap(&mut col4row[i], &mut j);
            if i == cur_row {
                break;
            }
        }
    }

    let mut pairs = Vec::with_capacity(nr);
    for (r, &c) in col4row.iter().enumerate() {
        if c != usize::MAX {
            let (row, col) = if transposed { (c, r) } else { (r, c) };
            pairs.push((row, col));
        }
    }
    Assignment::from_pairs_with(|r, c| matrix.get(r, c), pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shortest_augmenting_path;

    const MASK: f64 = 1.0e6;

    fn assert_bit_identical(sparse: &SparseCostMatrix) {
        let dense_solution = shortest_augmenting_path(&sparse.to_dense());
        let sparse_solution = sparse_shortest_augmenting_path(sparse);
        assert_eq!(sparse_solution.pairs, dense_solution.pairs);
        assert_eq!(
            sparse_solution.total_cost.to_bits(),
            dense_solution.total_cost.to_bits(),
            "sparse {} vs dense {}",
            sparse_solution.total_cost,
            dense_solution.total_cost
        );
    }

    #[test]
    fn empty_matrix_matches_nothing() {
        for (rows, cols) in [(0usize, 0usize), (0, 4), (4, 0)] {
            let m = SparseCostMatrix::from_entries(rows, cols, MASK, &[]).unwrap();
            assert!(m.is_empty());
            let a = sparse_shortest_augmenting_path(&m);
            assert!(a.is_empty());
            assert_eq!(a.total_cost, 0.0);
        }
    }

    #[test]
    fn one_by_n_picks_the_cheapest_candidate() {
        let m = SparseCostMatrix::from_entries(1, 5, MASK, &[(0, 1, 0.4), (0, 3, 0.2)]).unwrap();
        let a = sparse_shortest_augmenting_path(&m);
        assert_eq!(a.pairs, vec![(0, 3)]);
        assert_eq!(a.total_cost, 0.2);
        assert_bit_identical(&m);
        // The tall twin goes through the transpose path.
        assert_bit_identical(&m.transpose());
    }

    #[test]
    fn all_cells_above_threshold_thresholds_to_nothing() {
        let m = SparseCostMatrix::from_entries(2, 2, MASK, &[(0, 0, 0.9), (1, 1, 0.8)]).unwrap();
        let a = sparse_shortest_augmenting_path(&m);
        assert_eq!(a.pairs, vec![(0, 0), (1, 1)]);
        let t = a.threshold_with(|r, c| m.get(r, c), 0.7);
        assert!(t.is_empty());
        assert_eq!(t.total_cost, 0.0);
    }

    #[test]
    fn masked_displacement_matches_the_dense_big_m_semantics() {
        // Both rows are candidates only for column 0; column 1 is masked for
        // everyone.  Under a finite big-M the dense solver still matches both
        // rows (one of them onto the masked column), so the *cheaper* row
        // keeps the candidate column.  A forbidden-edge solver would instead
        // keep whichever row augmented first — this case is why the sparse
        // solver replays the dense arithmetic.
        let m = SparseCostMatrix::from_entries(2, 2, MASK, &[(0, 0, 0.6), (1, 0, 0.2)]).unwrap();
        let a = sparse_shortest_augmenting_path(&m);
        assert_bit_identical(&m);
        let kept = a.threshold_with(|r, c| m.get(r, c), 0.7);
        assert_eq!(kept.pairs, vec![(1, 0)], "the cheaper candidate must win column 0");
    }

    #[test]
    fn rectangular_cases_are_bit_identical_to_dense() {
        let wide = SparseCostMatrix::from_entries(
            2,
            4,
            MASK,
            &[(0, 1, 1.0), (0, 2, 0.5), (1, 2, 0.25), (1, 3, 2.0)],
        )
        .unwrap();
        assert_bit_identical(&wide);
        assert_bit_identical(&wide.transpose());
        // Negative and tied costs exercise the tie-break path.
        let tied = SparseCostMatrix::from_entries(
            3,
            3,
            MASK,
            &[(0, 0, 0.5), (0, 1, 0.5), (1, 0, 0.5), (1, 1, 0.5), (2, 2, -1.0)],
        )
        .unwrap();
        assert_bit_identical(&tied);
    }

    #[test]
    fn accessors_and_dense_round_trip() {
        let m = SparseCostMatrix::from_entries(2, 3, MASK, &[(0, 2, 0.1), (1, 0, 0.2)]).unwrap();
        assert_eq!((m.rows(), m.cols(), m.candidate_cells()), (2, 3, 2));
        assert_eq!(m.masked_cost(), MASK);
        assert_eq!(m.get(0, 2), 0.1);
        assert_eq!(m.get(0, 0), MASK);
        assert_eq!(m.row_entries(1), (&[0usize][..], &[0.2f64][..]));
        let dense = m.to_dense();
        let transposed = m.transpose();
        for r in 0..2 {
            for c in 0..3 {
                assert_eq!(m.get(r, c), dense.get(r, c));
                assert_eq!(m.get(r, c), transposed.get(c, r));
            }
        }
    }

    #[test]
    fn from_entries_rejects_bad_input() {
        assert_eq!(
            SparseCostMatrix::from_entries(2, 2, MASK, &[(0, 2, 0.1)]),
            Err(SparseCostError::OutOfBounds { row: 0, col: 2 })
        );
        assert_eq!(
            SparseCostMatrix::from_entries(2, 2, MASK, &[(1, 0, 0.1), (0, 0, 0.2)]),
            Err(SparseCostError::Unsorted { index: 1 })
        );
        assert_eq!(
            SparseCostMatrix::from_entries(2, 2, MASK, &[(0, 0, 0.1), (0, 0, 0.2)]),
            Err(SparseCostError::Unsorted { index: 1 })
        );
        assert_eq!(
            SparseCostMatrix::from_entries(2, 2, MASK, &[(0, 0, f64::NAN)]),
            Err(SparseCostError::NaNCost { row: 0, col: 0 })
        );
        assert!(SparseCostMatrix::from_entries(2, 2, f64::NAN, &[]).is_err());
    }
}
