//! Greedy approximate assignment, used as an ablation baseline.
//!
//! Repeatedly picks the globally cheapest remaining `(row, column)` pair.
//! Runs in `O(nm log nm)` and is typically close to optimal on the
//! well-separated cost matrices produced by good embeddings, but can lose on
//! ambiguous ones — which is exactly what the ablation bench demonstrates.

use crate::matrix::CostMatrix;
use crate::Assignment;

/// Solves the assignment problem greedily (approximate).
pub fn greedy(matrix: &CostMatrix) -> Assignment {
    if matrix.is_empty() {
        return Assignment { pairs: Vec::new(), total_cost: 0.0 };
    }
    let mut entries: Vec<(f64, usize, usize)> = Vec::with_capacity(matrix.rows() * matrix.cols());
    for r in 0..matrix.rows() {
        for c in 0..matrix.cols() {
            let v = matrix.get(r, c);
            if v.is_finite() {
                entries.push((v, r, c));
            }
        }
    }
    // Sort by cost, breaking ties by indices for determinism.
    entries.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.1.cmp(&b.1))
            .then(a.2.cmp(&b.2))
    });

    let mut row_used = vec![false; matrix.rows()];
    let mut col_used = vec![false; matrix.cols()];
    let mut pairs = Vec::new();
    let target = matrix.rows().min(matrix.cols());
    for (_, r, c) in entries {
        if pairs.len() == target {
            break;
        }
        if !row_used[r] && !col_used[c] {
            row_used[r] = true;
            col_used[c] = true;
            pairs.push((r, c));
        }
    }
    Assignment::from_pairs(matrix, pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sap::shortest_augmenting_path;

    fn cost(rows: Vec<Vec<f64>>) -> CostMatrix {
        CostMatrix::from_rows(rows).unwrap()
    }

    #[test]
    fn greedy_finds_obvious_matching() {
        let m = cost(vec![vec![0.1, 0.9], vec![0.9, 0.1]]);
        let a = greedy(&m);
        assert_eq!(a.pairs, vec![(0, 0), (1, 1)]);
        assert!((a.total_cost - 0.2).abs() < 1e-12);
    }

    #[test]
    fn greedy_can_be_suboptimal() {
        // Greedy grabs the 1.0 cell first and is then forced into 8.0:
        // total 9.0, while the optimum is 2.0 + 3.0 = 5.0.
        let m = cost(vec![vec![1.0, 2.0], vec![3.0, 8.0]]);
        let g = greedy(&m);
        let opt = shortest_augmenting_path(&m);
        assert!((g.total_cost - 9.0).abs() < 1e-12);
        assert!((opt.total_cost - 5.0).abs() < 1e-12);
        assert!(g.total_cost >= opt.total_cost);
    }

    #[test]
    fn greedy_never_beats_exact() {
        for n in 1..=6usize {
            let m = CostMatrix::from_fn(n, n + 1, |r, c| ((r * 5 + c * 3) % 7) as f64 + 0.5);
            let g = greedy(&m);
            let opt = shortest_augmenting_path(&m);
            assert!(g.total_cost + 1e-9 >= opt.total_cost);
            assert_eq!(g.len(), n);
        }
    }

    #[test]
    fn skips_forbidden_entries() {
        let inf = f64::INFINITY;
        let m = cost(vec![vec![inf, inf], vec![inf, 1.0]]);
        let a = greedy(&m);
        assert_eq!(a.pairs, vec![(1, 1)]);
    }

    #[test]
    fn empty_matrix() {
        assert!(greedy(&CostMatrix::from_rows(vec![]).unwrap()).is_empty());
    }
}
