//! # lake-assign
//!
//! Linear sum assignment solvers for bipartite value matching.
//!
//! The fuzzy value matcher of the paper matches the values of two aligned
//! columns by solving a *rectangular linear sum assignment problem* over the
//! matrix of cosine distances (the paper uses scipy's
//! `linear_sum_assignment`, itself an implementation of the shortest
//! augmenting path algorithm of Crouse 2016).  This crate provides:
//!
//! * [`shortest_augmenting_path`] — exact solver for rectangular matrices,
//!   the default used by the pipeline (scipy-equivalent);
//! * [`mod@hungarian`] — classic Kuhn–Munkres with dual potentials, kept as an
//!   independent exact implementation used to cross-check the first in tests
//!   and exposed for ablation benches;
//! * [`mod@greedy`] — a cheap approximate baseline used by the ablation study;
//! * [`Assignment`] — the solver output, plus helpers for thresholded
//!   matching (discard assigned pairs whose cost exceeds θ).

pub mod greedy;
pub mod hungarian;
pub mod matrix;
pub mod sap;
pub mod sparse;

pub use greedy::greedy;
pub use hungarian::hungarian;
pub use matrix::CostMatrix;
pub use sap::shortest_augmenting_path;
pub use sparse::{sparse_shortest_augmenting_path, SparseCostError, SparseCostMatrix};

/// Which algorithm to use when solving an assignment problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AssignmentAlgorithm {
    /// Exact, rectangular shortest augmenting path (scipy-equivalent).
    #[default]
    ShortestAugmentingPath,
    /// Exact Kuhn–Munkres (Hungarian) algorithm.
    Hungarian,
    /// Greedy minimum-cost matching (approximate, ablation baseline).
    Greedy,
}

/// The result of solving an assignment problem: a set of (row, column) pairs,
/// each row and column used at most once.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// Matched `(row, column)` index pairs, sorted by row.
    pub pairs: Vec<(usize, usize)>,
    /// Sum of the costs of the matched pairs.
    pub total_cost: f64,
}

impl Assignment {
    /// Builds an assignment from pairs, computing the total cost from the
    /// matrix.
    pub fn from_pairs(matrix: &CostMatrix, pairs: Vec<(usize, usize)>) -> Self {
        Assignment::from_pairs_with(|r, c| matrix.get(r, c), pairs)
    }

    /// Builds an assignment from pairs with an arbitrary cost lookup.  The
    /// pairs are sorted and the costs summed in sorted order — the same
    /// accumulation order as [`from_pairs`](Assignment::from_pairs), so sparse
    /// and dense callers produce bit-identical totals.
    pub fn from_pairs_with(
        cost: impl Fn(usize, usize) -> f64,
        mut pairs: Vec<(usize, usize)>,
    ) -> Self {
        pairs.sort_unstable();
        let total_cost = pairs.iter().map(|&(r, c)| cost(r, c)).sum();
        Assignment { pairs, total_cost }
    }

    /// Number of matched pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// `true` when nothing was matched.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Keeps only pairs whose cost is strictly below `threshold`, recomputing
    /// the total cost.  This realises the paper's rule that assignments whose
    /// distance is at or above θ are discarded and their values left
    /// unmatched.
    pub fn threshold(&self, matrix: &CostMatrix, threshold: f64) -> Assignment {
        self.threshold_with(|r, c| matrix.get(r, c), threshold)
    }

    /// [`threshold`](Assignment::threshold) with an arbitrary cost lookup,
    /// for sparse matrices and other non-dense cost sources.
    pub fn threshold_with(&self, cost: impl Fn(usize, usize) -> f64, threshold: f64) -> Assignment {
        let pairs: Vec<(usize, usize)> =
            self.pairs.iter().copied().filter(|&(r, c)| cost(r, c) < threshold).collect();
        Assignment::from_pairs_with(cost, pairs)
    }

    /// The column matched to `row`, if any.
    pub fn column_for(&self, row: usize) -> Option<usize> {
        self.pairs.iter().find(|&&(r, _)| r == row).map(|&(_, c)| c)
    }
}

/// Solves the assignment problem on `matrix` with the chosen algorithm.
///
/// Every row is matched to a distinct column whenever `rows <= cols`
/// (and vice versa); the exact algorithms minimise the total cost.
pub fn solve(matrix: &CostMatrix, algorithm: AssignmentAlgorithm) -> Assignment {
    match algorithm {
        AssignmentAlgorithm::ShortestAugmentingPath => shortest_augmenting_path(matrix),
        AssignmentAlgorithm::Hungarian => hungarian(matrix),
        AssignmentAlgorithm::Greedy => greedy(matrix),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_dispatches_to_all_algorithms() {
        let m = CostMatrix::from_rows(vec![vec![1.0, 2.0], vec![2.0, 1.0]]).unwrap();
        for alg in [
            AssignmentAlgorithm::ShortestAugmentingPath,
            AssignmentAlgorithm::Hungarian,
            AssignmentAlgorithm::Greedy,
        ] {
            let a = solve(&m, alg);
            assert_eq!(a.len(), 2);
            assert!((a.total_cost - 2.0).abs() < 1e-9, "{alg:?} gave {}", a.total_cost);
        }
    }

    #[test]
    fn threshold_drops_expensive_pairs() {
        let m = CostMatrix::from_rows(vec![vec![0.1, 0.9], vec![0.9, 0.8]]).unwrap();
        let a = solve(&m, AssignmentAlgorithm::ShortestAugmentingPath);
        assert_eq!(a.len(), 2);
        let t = a.threshold(&m, 0.7);
        assert_eq!(t.len(), 1);
        assert_eq!(t.pairs, vec![(0, 0)]);
        assert!((t.total_cost - 0.1).abs() < 1e-9);
    }

    #[test]
    fn column_for_lookup() {
        let m = CostMatrix::from_rows(vec![vec![5.0, 1.0], vec![1.0, 5.0]]).unwrap();
        let a = solve(&m, AssignmentAlgorithm::Hungarian);
        assert_eq!(a.column_for(0), Some(1));
        assert_eq!(a.column_for(1), Some(0));
        assert_eq!(a.column_for(7), None);
    }

    #[test]
    fn default_algorithm_is_sap() {
        assert_eq!(AssignmentAlgorithm::default(), AssignmentAlgorithm::ShortestAugmentingPath);
    }
}
