//! Dense rectangular cost matrices.

use std::fmt;

/// A dense `rows x cols` matrix of non-negative finite costs, stored row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct CostMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// Errors building a cost matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CostMatrixError {
    /// Row lengths differ.
    Ragged,
    /// A cost was NaN.
    NaNCost,
}

impl fmt::Display for CostMatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostMatrixError::Ragged => write!(f, "rows of a cost matrix must have equal length"),
            CostMatrixError::NaNCost => write!(f, "cost matrix entries must not be NaN"),
        }
    }
}

impl std::error::Error for CostMatrixError {}

impl CostMatrix {
    /// Builds a matrix from nested vectors.  Fails on ragged rows or NaNs.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Result<Self, CostMatrixError> {
        let nrows = rows.len();
        let ncols = rows.first().map(|r| r.len()).unwrap_or(0);
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in &rows {
            if row.len() != ncols {
                return Err(CostMatrixError::Ragged);
            }
            for &v in row {
                if v.is_nan() {
                    return Err(CostMatrixError::NaNCost);
                }
                data.push(v);
            }
        }
        Ok(CostMatrix { rows: nrows, cols: ncols, data })
    }

    /// Builds a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                let v = f(r, c);
                data.push(if v.is_nan() { f64::INFINITY } else { v });
            }
        }
        CostMatrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` when the matrix has no entries.
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// The cost at `(row, col)`.
    ///
    /// # Panics
    /// Panics when the indices are out of range.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "cost matrix index out of range");
        self.data[row * self.cols + col]
    }

    /// Transposes the matrix.
    pub fn transpose(&self) -> CostMatrix {
        let mut data = vec![0.0; self.data.len()];
        for r in 0..self.rows {
            for c in 0..self.cols {
                data[c * self.rows + r] = self.get(r, c);
            }
        }
        CostMatrix { rows: self.cols, cols: self.rows, data }
    }

    /// One row as a slice.
    pub fn row(&self, row: usize) -> &[f64] {
        assert!(row < self.rows, "row index out of range");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// The largest finite cost in the matrix (0.0 for empty matrices).
    pub fn max_finite(&self) -> f64 {
        self.data.iter().copied().filter(|v| v.is_finite()).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_access() {
        let m = CostMatrix::from_rows(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert!(!m.is_empty());
    }

    #[test]
    fn rejects_ragged_and_nan() {
        assert_eq!(
            CostMatrix::from_rows(vec![vec![1.0], vec![1.0, 2.0]]),
            Err(CostMatrixError::Ragged)
        );
        assert_eq!(CostMatrix::from_rows(vec![vec![f64::NAN]]), Err(CostMatrixError::NaNCost));
    }

    #[test]
    fn from_fn_and_transpose() {
        let m = CostMatrix::from_fn(2, 3, |r, c| (r * 10 + c) as f64);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        for r in 0..2 {
            for c in 0..3 {
                assert_eq!(m.get(r, c), t.get(c, r));
            }
        }
    }

    #[test]
    fn from_fn_replaces_nan_with_infinity() {
        let m = CostMatrix::from_fn(1, 1, |_, _| f64::NAN);
        assert!(m.get(0, 0).is_infinite());
    }

    #[test]
    fn max_finite_ignores_infinities() {
        let m = CostMatrix::from_rows(vec![vec![1.0, f64::INFINITY], vec![3.0, 2.0]]).unwrap();
        assert_eq!(m.max_finite(), 3.0);
        let empty = CostMatrix::from_rows(vec![]).unwrap();
        assert!(empty.is_empty());
        assert_eq!(empty.max_finite(), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_panics_out_of_range() {
        let m = CostMatrix::from_rows(vec![vec![1.0]]).unwrap();
        m.get(1, 0);
    }
}
