//! Rectangular linear sum assignment via shortest augmenting paths.
//!
//! This follows the algorithm described by Crouse (2016), "On implementing 2D
//! rectangular assignment algorithms" — the same algorithm behind scipy's
//! `linear_sum_assignment`, which the paper uses for bipartite value matching.
//! It maintains dual potentials `u`/`v` and, for each row, runs a Dijkstra-like
//! search for the shortest augmenting path in the reduced-cost graph.
//!
//! Complexity: `O(n^2 m)` for an `n x m` matrix with `n <= m`; exact optimum.
//! Entries of `f64::INFINITY` mark forbidden pairs; a row whose every entry is
//! forbidden simply stays unmatched (scipy would error instead — leaving the
//! value unmatched is the behaviour the fuzzy matcher wants).

use crate::matrix::CostMatrix;
use crate::Assignment;

/// Solves the rectangular assignment problem, minimising total cost.
pub fn shortest_augmenting_path(matrix: &CostMatrix) -> Assignment {
    if matrix.is_empty() {
        return Assignment { pairs: Vec::new(), total_cost: 0.0 };
    }

    // The core routine assumes rows <= cols; transpose otherwise.
    let transposed = matrix.rows() > matrix.cols();
    let work;
    let m: &CostMatrix = if transposed {
        work = matrix.transpose();
        &work
    } else {
        matrix
    };

    let nr = m.rows();
    let nc = m.cols();

    let mut u = vec![0.0f64; nr];
    let mut v = vec![0.0f64; nc];
    let mut shortest_path_costs = vec![f64::INFINITY; nc];
    let mut path = vec![usize::MAX; nc];
    let mut col4row = vec![usize::MAX; nr];
    let mut row4col = vec![usize::MAX; nc];
    let mut sr = vec![false; nr];
    let mut sc = vec![false; nc];

    'rows: for cur_row in 0..nr {
        let mut min_val = 0.0f64;
        let mut i = cur_row;
        // Columns not yet scanned in this augmentation.
        let mut remaining: Vec<usize> = (0..nc).rev().collect();
        sr.iter_mut().for_each(|x| *x = false);
        sc.iter_mut().for_each(|x| *x = false);
        shortest_path_costs.iter_mut().for_each(|x| *x = f64::INFINITY);

        let mut sink = usize::MAX;
        while sink == usize::MAX {
            sr[i] = true;
            let mut index = usize::MAX;
            let mut lowest = f64::INFINITY;
            for (it, &j) in remaining.iter().enumerate() {
                let r = min_val + m.get(i, j) - u[i] - v[j];
                if r < shortest_path_costs[j] {
                    path[j] = i;
                    shortest_path_costs[j] = r;
                }
                // Prefer unmatched columns on ties so augmentation terminates
                // as early as possible.
                if shortest_path_costs[j] < lowest
                    || (shortest_path_costs[j] == lowest && row4col[j] == usize::MAX)
                {
                    lowest = shortest_path_costs[j];
                    index = it;
                }
            }

            min_val = lowest;
            if !min_val.is_finite() {
                // No augmenting path with finite cost: this row stays
                // unmatched.  Skip it without touching the duals.
                continue 'rows;
            }
            let j = remaining[index];
            if row4col[j] == usize::MAX {
                sink = j;
            } else {
                i = row4col[j];
            }
            sc[j] = true;
            remaining.swap_remove(index);
        }

        // Update dual variables.
        u[cur_row] += min_val;
        for r in 0..nr {
            if sr[r] && r != cur_row {
                u[r] += min_val - shortest_path_costs[col4row[r]];
            }
        }
        for c in 0..nc {
            if sc[c] {
                v[c] -= min_val - shortest_path_costs[c];
            }
        }

        // Augment along the found path.
        let mut j = sink;
        loop {
            let i = path[j];
            row4col[j] = i;
            std::mem::swap(&mut col4row[i], &mut j);
            if i == cur_row {
                break;
            }
        }
    }

    let mut pairs = Vec::with_capacity(nr);
    for (r, &c) in col4row.iter().enumerate() {
        if c != usize::MAX {
            let (row, col) = if transposed { (c, r) } else { (r, c) };
            pairs.push((row, col));
        }
    }
    Assignment::from_pairs(matrix, pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost(rows: Vec<Vec<f64>>) -> CostMatrix {
        CostMatrix::from_rows(rows).unwrap()
    }

    #[test]
    fn solves_square_case() {
        // Classic example: optimum is 5 (0->1, 1->0, 2->2).
        let m = cost(vec![vec![4.0, 1.0, 3.0], vec![2.0, 0.0, 5.0], vec![3.0, 2.0, 2.0]]);
        let a = shortest_augmenting_path(&m);
        assert_eq!(a.len(), 3);
        assert!((a.total_cost - 5.0).abs() < 1e-9, "got {}", a.total_cost);
    }

    #[test]
    fn solves_rectangular_wide() {
        let m = cost(vec![vec![10.0, 1.0, 10.0, 10.0], vec![10.0, 10.0, 1.0, 10.0]]);
        let a = shortest_augmenting_path(&m);
        assert_eq!(a.pairs, vec![(0, 1), (1, 2)]);
        assert!((a.total_cost - 2.0).abs() < 1e-9);
    }

    #[test]
    fn solves_rectangular_tall() {
        let m = cost(vec![vec![10.0, 1.0], vec![2.0, 10.0], vec![0.5, 0.6]]);
        let a = shortest_augmenting_path(&m);
        // Only two columns exist, so exactly two rows are matched.
        assert_eq!(a.len(), 2);
        // Optimal picks rows {0,2} or {1,2}: cost 1.0 + 0.5 = 1.5 is best.
        assert!((a.total_cost - 1.5).abs() < 1e-9, "got {}", a.total_cost);
    }

    #[test]
    fn respects_forbidden_pairs() {
        let inf = f64::INFINITY;
        let m = cost(vec![vec![inf, 2.0], vec![inf, 1.0]]);
        let a = shortest_augmenting_path(&m);
        // Both rows want column 1; only one can have it, the other row has
        // no feasible column left and stays unmatched.
        assert_eq!(a.len(), 1);
        assert!(a.total_cost.is_finite());
    }

    #[test]
    fn fully_forbidden_matrix_matches_nothing() {
        let inf = f64::INFINITY;
        let m = cost(vec![vec![inf, inf], vec![inf, inf]]);
        let a = shortest_augmenting_path(&m);
        assert!(a.is_empty());
        assert_eq!(a.total_cost, 0.0);
    }

    #[test]
    fn empty_matrix() {
        let m = CostMatrix::from_rows(vec![]).unwrap();
        let a = shortest_augmenting_path(&m);
        assert!(a.is_empty());
    }

    #[test]
    fn single_cell() {
        let m = cost(vec![vec![3.5]]);
        let a = shortest_augmenting_path(&m);
        assert_eq!(a.pairs, vec![(0, 0)]);
        assert!((a.total_cost - 3.5).abs() < 1e-12);
    }

    #[test]
    fn identity_preference_on_zero_diagonal() {
        let n = 6;
        let m = CostMatrix::from_fn(n, n, |r, c| if r == c { 0.0 } else { 1.0 });
        let a = shortest_augmenting_path(&m);
        assert_eq!(a.len(), n);
        assert!((a.total_cost - 0.0).abs() < 1e-12);
        for (r, c) in a.pairs {
            assert_eq!(r, c);
        }
    }

    #[test]
    fn handles_negative_costs() {
        let m = cost(vec![vec![-1.0, 0.0], vec![0.0, -2.0]]);
        let a = shortest_augmenting_path(&m);
        assert!((a.total_cost + 3.0).abs() < 1e-9);
    }
}
