//! Property-based pinning of the sparse solver against the dense big-M
//! solver: over random shapes and random candidate masks, the sparse
//! shortest-augmenting-path solver must return the **same pairs** and a
//! **bit-identical total cost** as the dense solver on the materialised
//! matrix.  Tie-breaks included — the blocked planner's output feeds an
//! equivalence harness that compares match groups exactly, so "equally
//! optimal but different" is a failure here, not a pass.

use lake_assign::{shortest_augmenting_path, sparse_shortest_augmenting_path, SparseCostMatrix};
use proptest::prelude::*;

const MASKED_COST: f64 = 1.0e6;

/// A random shape plus a random candidate mask with quantised costs.  Costs
/// are multiples of 1/16 so exact ties arise often and the tie-break paths
/// get real coverage.
fn sparse_strategy() -> impl Strategy<Value = SparseCostMatrix> {
    (1usize..=7, 1usize..=7)
        .prop_flat_map(|(rows, cols)| {
            let cells = rows * cols;
            (
                Just(rows),
                Just(cols),
                prop::collection::vec(any::<bool>(), cells),
                prop::collection::vec(0u8..32, cells),
            )
        })
        .prop_map(|(rows, cols, mask, costs)| {
            let entries: Vec<(usize, usize, f64)> = (0..rows * cols)
                .filter(|&i| mask[i])
                .map(|i| (i / cols, i % cols, f64::from(costs[i]) / 16.0))
                .collect();
            SparseCostMatrix::from_entries(rows, cols, MASKED_COST, &entries)
                .expect("entries are generated in row-major order")
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Sparse SAP ≡ dense SAP on the materialised matrix: same pairs, same
    /// total cost to the bit.
    #[test]
    fn sparse_sap_is_bit_identical_to_dense(sparse in sparse_strategy()) {
        let dense = sparse.to_dense();
        let sparse_solution = sparse_shortest_augmenting_path(&sparse);
        let dense_solution = shortest_augmenting_path(&dense);
        prop_assert_eq!(&sparse_solution.pairs, &dense_solution.pairs);
        prop_assert_eq!(
            sparse_solution.total_cost.to_bits(),
            dense_solution.total_cost.to_bits(),
            "sparse {} vs dense {}",
            sparse_solution.total_cost,
            dense_solution.total_cost
        );
    }

    /// Thresholding through the sparse cost lookup matches thresholding
    /// through the dense matrix — the matcher discards pairs at or above θ
    /// after solving, so this step must agree too.
    #[test]
    fn sparse_threshold_matches_dense(sparse in sparse_strategy(), threshold in 0u8..40) {
        let theta = f64::from(threshold) / 16.0;
        let dense = sparse.to_dense();
        let sparse_kept =
            sparse_shortest_augmenting_path(&sparse).threshold_with(|r, c| sparse.get(r, c), theta);
        let dense_kept = shortest_augmenting_path(&dense).threshold(&dense, theta);
        prop_assert_eq!(&sparse_kept.pairs, &dense_kept.pairs);
        prop_assert_eq!(sparse_kept.total_cost.to_bits(), dense_kept.total_cost.to_bits());
    }

    /// Every stored cell agrees between the sparse matrix, its dense
    /// materialisation, and its double transpose.
    #[test]
    fn sparse_accessors_agree_with_dense(sparse in sparse_strategy()) {
        let dense = sparse.to_dense();
        let round_trip = sparse.transpose().transpose();
        for r in 0..sparse.rows() {
            for c in 0..sparse.cols() {
                prop_assert_eq!(sparse.get(r, c).to_bits(), dense.get(r, c).to_bits());
                prop_assert_eq!(sparse.get(r, c).to_bits(), round_trip.get(r, c).to_bits());
            }
        }
    }
}
