//! Property-based tests for the assignment solvers: both exact solvers agree
//! with each other and with a brute-force enumeration on small instances, and
//! the greedy baseline is never better than the exact optimum.

use lake_assign::{greedy, hungarian, shortest_augmenting_path, CostMatrix};
use proptest::prelude::*;

/// Brute force: try every injective assignment of rows to columns (rows <= 6).
fn brute_force_optimum(matrix: &CostMatrix) -> f64 {
    let rows = matrix.rows();
    let cols = matrix.cols();
    let k = rows.min(cols);
    let mut best = f64::INFINITY;
    let mut columns: Vec<usize> = (0..cols).collect();
    permute(&mut columns, 0, k, &mut |perm| {
        let mut total = 0.0;
        for (r, &c) in perm.iter().take(k).enumerate() {
            // When rows > cols the transposed problem is solved by symmetry;
            // restrict the strategy instead.
            total += matrix.get(r, c);
        }
        if total < best {
            best = total;
        }
    });
    best
}

/// Enumerates permutations of the first `k` positions of `items`.
fn permute(items: &mut Vec<usize>, start: usize, k: usize, visit: &mut impl FnMut(&[usize])) {
    if start == k {
        visit(items);
        return;
    }
    for i in start..items.len() {
        items.swap(start, i);
        permute(items, start + 1, k, visit);
        items.swap(start, i);
    }
}

fn matrix_strategy() -> impl Strategy<Value = CostMatrix> {
    (1usize..=5, 1usize..=5).prop_flat_map(|(rows, cols)| {
        prop::collection::vec(prop::collection::vec(0u16..1000, cols), rows).prop_map(|data| {
            CostMatrix::from_rows(
                data.into_iter()
                    .map(|row| row.into_iter().map(|v| v as f64 / 10.0).collect())
                    .collect(),
            )
            .expect("well-formed matrix")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// The two exact solvers find the same optimal cost, equal to brute force
    /// (brute force enumerates row→column injections, so restrict to
    /// rows <= cols; the solvers themselves handle both orientations).
    #[test]
    fn exact_solvers_match_brute_force(matrix in matrix_strategy()) {
        prop_assume!(matrix.rows() <= matrix.cols());
        let sap = shortest_augmenting_path(&matrix);
        let hung = hungarian(&matrix);
        let brute = brute_force_optimum(&matrix);
        prop_assert!((sap.total_cost - brute).abs() < 1e-6, "sap {} != brute {}", sap.total_cost, brute);
        prop_assert!((hung.total_cost - brute).abs() < 1e-6, "hungarian {} != brute {}", hung.total_cost, brute);
        prop_assert_eq!(sap.len(), matrix.rows().min(matrix.cols()));
        prop_assert_eq!(hung.len(), matrix.rows().min(matrix.cols()));
    }

    /// Greedy is a valid matching and never beats the exact optimum.
    #[test]
    fn greedy_is_valid_and_not_better_than_exact(matrix in matrix_strategy()) {
        let exact = shortest_augmenting_path(&matrix);
        let approx = greedy(&matrix);
        prop_assert!(approx.total_cost + 1e-9 >= exact.total_cost);
        prop_assert_eq!(approx.len(), matrix.rows().min(matrix.cols()));
        // No row or column is used twice.
        let mut rows_seen = std::collections::HashSet::new();
        let mut cols_seen = std::collections::HashSet::new();
        for (r, c) in &approx.pairs {
            prop_assert!(rows_seen.insert(*r));
            prop_assert!(cols_seen.insert(*c));
        }
    }

    /// Solutions are invariant under transposition.
    #[test]
    fn transposition_invariance(matrix in matrix_strategy()) {
        let direct = shortest_augmenting_path(&matrix);
        let transposed = shortest_augmenting_path(&matrix.transpose());
        prop_assert!((direct.total_cost - transposed.total_cost).abs() < 1e-6);
    }
}
