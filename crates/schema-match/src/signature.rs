//! Column signatures: fixed-dimension representations of whole columns.

use lake_embed::{Embedder, Vector};
use lake_table::{Table, Value};
use lake_text::normalize;

/// A column's signature: the mean embedding of (a sample of) its distinct
/// values plus light metadata used as tie-breakers.
#[derive(Debug, Clone)]
pub struct ColumnSignature {
    /// Mean embedding of the sampled distinct values (zero vector for empty
    /// columns).
    pub centroid: Vector,
    /// Normalised header (may be empty).
    pub header: String,
    /// Number of distinct non-null values observed.
    pub distinct_values: usize,
    /// Fraction of cells that are null.
    pub null_fraction: f64,
    /// Fraction of sampled values that parse as numbers.
    pub numeric_fraction: f64,
}

impl ColumnSignature {
    /// Builds the signature of column `column` of `table`, embedding at most
    /// `sample_limit` distinct values.
    pub fn build(
        table: &Table,
        column: usize,
        embedder: &dyn Embedder,
        sample_limit: usize,
    ) -> ColumnSignature {
        let distinct = table.distinct_values(column).unwrap_or_default();
        let null_fraction = table.null_fraction(column).unwrap_or(0.0);
        let header = normalize(&table.schema().columns()[column].name);

        let sample: Vec<&Value> = distinct.iter().take(sample_limit.max(1)).collect();
        let numeric =
            sample.iter().filter(|v| matches!(v, Value::Int(_) | Value::Float(_))).count();
        let numeric_fraction =
            if sample.is_empty() { 0.0 } else { numeric as f64 / sample.len() as f64 };

        let vectors: Vec<Vector> = sample.iter().map(|v| embedder.embed(&v.render())).collect();
        let centroid =
            Vector::mean(vectors.iter()).unwrap_or_else(|| Vector::zeros(embedder.dim()));

        ColumnSignature {
            centroid,
            header,
            distinct_values: distinct.len(),
            null_fraction,
            numeric_fraction,
        }
    }

    /// Similarity between two column signatures in `[0, 1]`: cosine
    /// similarity of the centroids, boosted slightly by an exact header match
    /// and penalised when one column is numeric and the other is not.
    pub fn similarity(&self, other: &ColumnSignature) -> f64 {
        let mut sim = ((self.centroid.cosine_similarity(&other.centroid) + 1.0) / 2.0) as f64;
        if !self.header.is_empty() && self.header == other.header {
            sim = (sim + 0.15).min(1.0);
        }
        let numeric_gap = (self.numeric_fraction - other.numeric_fraction).abs();
        if numeric_gap > 0.5 {
            sim *= 0.6;
        }
        sim.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lake_embed::HashingNgramEmbedder;
    use lake_table::TableBuilder;

    fn table() -> Table {
        TableBuilder::new("T", ["City", "Population"])
            .row(["Berlin", "3600000"])
            .row(["Toronto", "2900000"])
            .row(["", "100"])
            .build()
            .unwrap()
    }

    #[test]
    fn signature_captures_basic_statistics() {
        let t = table();
        let e = HashingNgramEmbedder::new();
        let city = ColumnSignature::build(&t, 0, &e, 100);
        assert_eq!(city.distinct_values, 2);
        assert!((city.null_fraction - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(city.header, "city");
        assert!(city.numeric_fraction < 0.5);

        let pop = ColumnSignature::build(&t, 1, &e, 100);
        assert!(pop.numeric_fraction > 0.9);
    }

    #[test]
    fn similar_columns_score_higher_than_dissimilar() {
        let e = HashingNgramEmbedder::new();
        let t1 = TableBuilder::new("A", ["place"])
            .row(["Berlin"])
            .row(["Toronto"])
            .row(["Barcelona"])
            .build()
            .unwrap();
        let t2 = TableBuilder::new("B", ["location"])
            .row(["Berlin"])
            .row(["Boston"])
            .row(["Barcelona"])
            .build()
            .unwrap();
        let t3 = TableBuilder::new("C", ["amount"])
            .row(["100"])
            .row(["250"])
            .row(["317"])
            .build()
            .unwrap();

        let s1 = ColumnSignature::build(&t1, 0, &e, 100);
        let s2 = ColumnSignature::build(&t2, 0, &e, 100);
        let s3 = ColumnSignature::build(&t3, 0, &e, 100);

        assert!(s1.similarity(&s2) > s1.similarity(&s3));
        assert!(s1.similarity(&s2) > 0.5);
    }

    #[test]
    fn header_match_boosts_similarity() {
        let e = HashingNgramEmbedder::new();
        let t1 = TableBuilder::new("A", ["City"]).row(["Berlin"]).build().unwrap();
        let t2 = TableBuilder::new("B", ["City"]).row(["Lagos"]).build().unwrap();
        let t3 = TableBuilder::new("C", ["Thing"]).row(["Lagos"]).build().unwrap();
        let s1 = ColumnSignature::build(&t1, 0, &e, 10);
        let s2 = ColumnSignature::build(&t2, 0, &e, 10);
        let s3 = ColumnSignature::build(&t3, 0, &e, 10);
        assert!(s1.similarity(&s2) > s1.similarity(&s3));
    }

    #[test]
    fn empty_column_has_zero_centroid() {
        let e = HashingNgramEmbedder::new();
        let t = TableBuilder::new("A", ["x"]).row([""]).build().unwrap();
        let s = ColumnSignature::build(&t, 0, &e, 10);
        assert!(s.centroid.is_zero());
        assert_eq!(s.distinct_values, 0);
    }
}
