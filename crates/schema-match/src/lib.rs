//! # lake-schema-match
//!
//! Column alignment (holistic schema matching) for integration sets.
//!
//! Before values can be matched and tuples integrated, the system has to
//! decide which columns of the input tables line up (ALITE's first step).
//! Data lake tables cannot be aligned by headers alone — headers are missing
//! or unreliable — so columns are represented by *signatures* built from the
//! embeddings of their values and clustered holistically under the constraint
//! that a cluster never contains two columns of the same table.
//!
//! The output type, [`Alignment`], is exactly what the Fuzzy Full Disjunction
//! pipeline (`fuzzy-fd-core`) consumes; a header-equality baseline
//! ([`align_by_headers`]) is provided for benchmark data whose headers are
//! trustworthy by construction.

pub mod cluster;
pub mod signature;

pub use cluster::{align_columns, AlignmentOptions};
pub use signature::ColumnSignature;

use lake_table::{ColumnRef, Table};

/// A set of aligned column groups.  Each group holds at most one column per
/// table; columns absent from every group are treated as unaligned
/// (they become singleton columns of the integrated schema).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Alignment {
    groups: Vec<Vec<ColumnRef>>,
}

impl Alignment {
    /// Creates an alignment from explicit groups.
    ///
    /// # Panics
    /// Panics if a group contains two columns of the same table.
    pub fn new(groups: Vec<Vec<ColumnRef>>) -> Self {
        for group in &groups {
            let mut tables: Vec<usize> = group.iter().map(|c| c.table).collect();
            tables.sort_unstable();
            let before = tables.len();
            tables.dedup();
            assert_eq!(before, tables.len(), "alignment group contains two columns of one table");
        }
        Alignment { groups }
    }

    /// The aligned groups.
    pub fn groups(&self) -> &[Vec<ColumnRef>] {
        &self.groups
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// `true` when no columns are aligned.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Groups that span more than one table (the ones that actually drive
    /// integration).
    pub fn multi_table_groups(&self) -> impl Iterator<Item = &Vec<ColumnRef>> {
        self.groups.iter().filter(|g| g.len() > 1)
    }
}

/// Aligns columns by case-insensitive header equality.  Reliable only when
/// headers are consistent (e.g. generated benchmarks, the Figure 1 example).
pub fn align_by_headers(tables: &[Table]) -> Alignment {
    let mut groups: Vec<(String, Vec<ColumnRef>)> = Vec::new();
    for (t_idx, table) in tables.iter().enumerate() {
        for (c_idx, col) in table.schema().columns().iter().enumerate() {
            let key = col.name.trim().to_lowercase();
            if key.is_empty() {
                continue;
            }
            let slot = groups
                .iter_mut()
                .find(|(k, refs)| *k == key && !refs.iter().any(|r| r.table == t_idx));
            match slot {
                Some((_, refs)) => refs.push(ColumnRef::new(t_idx, c_idx)),
                None => groups.push((key, vec![ColumnRef::new(t_idx, c_idx)])),
            }
        }
    }
    Alignment::new(groups.into_iter().map(|(_, refs)| refs).filter(|refs| refs.len() > 1).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lake_table::TableBuilder;

    #[test]
    fn header_alignment_groups_matching_names() {
        let tables = vec![
            TableBuilder::new("T1", ["City", "Country"]).row(["a", "b"]).build().unwrap(),
            TableBuilder::new("T2", ["country", "city", "Rate"])
                .row(["c", "d", "e"])
                .build()
                .unwrap(),
        ];
        let alignment = align_by_headers(&tables);
        assert_eq!(alignment.len(), 2);
        assert_eq!(alignment.multi_table_groups().count(), 2);
    }

    #[test]
    fn unique_headers_produce_no_groups() {
        let tables = vec![
            TableBuilder::new("T1", ["a"]).row(["1"]).build().unwrap(),
            TableBuilder::new("T2", ["b"]).row(["2"]).build().unwrap(),
        ];
        assert!(align_by_headers(&tables).is_empty());
    }

    #[test]
    #[should_panic(expected = "two columns of one table")]
    fn invalid_group_rejected() {
        Alignment::new(vec![vec![ColumnRef::new(0, 0), ColumnRef::new(0, 1)]]);
    }
}
