//! Holistic agglomerative clustering of column signatures.
//!
//! All columns of all tables in an integration set are clustered at once
//! (rather than table-pair by table-pair), subject to the constraint that a
//! cluster contains at most one column per table — the holistic matching
//! strategy ALITE adopts from Su et al. (2006).

use lake_embed::Embedder;
use lake_table::{ColumnRef, Table};

use crate::signature::ColumnSignature;
use crate::Alignment;

/// Parameters of the holistic clustering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlignmentOptions {
    /// Minimum signature similarity for two clusters to be merged.
    pub similarity_threshold: f64,
    /// Maximum number of distinct values embedded per column.
    pub sample_limit: usize,
}

impl Default for AlignmentOptions {
    fn default() -> Self {
        AlignmentOptions { similarity_threshold: 0.62, sample_limit: 64 }
    }
}

/// Aligns the columns of an integration set by holistic agglomerative
/// clustering over value-embedding signatures.
pub fn align_columns(
    tables: &[Table],
    embedder: &dyn Embedder,
    options: AlignmentOptions,
) -> Alignment {
    // Build one signature per column.
    let mut refs: Vec<ColumnRef> = Vec::new();
    let mut signatures: Vec<ColumnSignature> = Vec::new();
    for (t_idx, table) in tables.iter().enumerate() {
        for c_idx in 0..table.num_columns() {
            refs.push(ColumnRef::new(t_idx, c_idx));
            signatures.push(ColumnSignature::build(table, c_idx, embedder, options.sample_limit));
        }
    }

    // Each column starts as its own cluster.
    let mut clusters: Vec<Vec<usize>> = (0..refs.len()).map(|i| vec![i]).collect();

    loop {
        // Find the best mergeable cluster pair.
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..clusters.len() {
            for j in (i + 1)..clusters.len() {
                if tables_conflict(&clusters[i], &clusters[j], &refs) {
                    continue;
                }
                let sim = cluster_similarity(&clusters[i], &clusters[j], &signatures);
                if sim >= options.similarity_threshold
                    && best.map(|(_, _, s)| sim > s).unwrap_or(true)
                {
                    best = Some((i, j, sim));
                }
            }
        }
        match best {
            Some((i, j, _)) => {
                let merged = clusters.remove(j);
                clusters[i].extend(merged);
            }
            None => break,
        }
    }

    let groups: Vec<Vec<ColumnRef>> = clusters
        .into_iter()
        .filter(|c| c.len() > 1)
        .map(|c| {
            let mut group: Vec<ColumnRef> = c.into_iter().map(|i| refs[i]).collect();
            group.sort();
            group
        })
        .collect();
    Alignment::new(groups)
}

/// Average-linkage similarity between two clusters of column signatures.
fn cluster_similarity(a: &[usize], b: &[usize], signatures: &[ColumnSignature]) -> f64 {
    let mut total = 0.0;
    let mut count = 0usize;
    for &i in a {
        for &j in b {
            total += signatures[i].similarity(&signatures[j]);
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

/// Whether merging two clusters would put two columns of the same table into
/// one group.
fn tables_conflict(a: &[usize], b: &[usize], refs: &[ColumnRef]) -> bool {
    for &i in a {
        for &j in b {
            if refs[i].table == refs[j].table {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use lake_embed::{EmbeddingModel, HashingNgramEmbedder};
    use lake_table::TableBuilder;

    fn covid_tables() -> Vec<Table> {
        vec![
            TableBuilder::new("T1", ["place", "nation"])
                .row(["Berlin", "Germany"])
                .row(["Toronto", "Canada"])
                .row(["Barcelona", "Spain"])
                .row(["Boston", "United States"])
                .build()
                .unwrap(),
            TableBuilder::new("T2", ["city", "country", "rate"])
                .row(["Berlin", "Germany", "63"])
                .row(["Boston", "United States", "62"])
                .row(["Toronto", "Canada", "83"])
                .row(["Barcelona", "Spain", "82"])
                .build()
                .unwrap(),
        ]
    }

    #[test]
    fn aligns_columns_with_overlapping_values_despite_different_headers() {
        let tables = covid_tables();
        let embedder = HashingNgramEmbedder::new();
        let alignment = align_columns(&tables, &embedder, AlignmentOptions::default());
        // place/city and nation/country should each form a group; rate stays out.
        assert_eq!(alignment.len(), 2, "{alignment:?}");
        for group in alignment.groups() {
            assert_eq!(group.len(), 2);
        }
        // Check the actual pairing: T1 col0 with T2 col0, T1 col1 with T2 col1.
        let has = |a: (usize, usize), b: (usize, usize)| {
            alignment.groups().iter().any(|g| {
                g.contains(&ColumnRef::new(a.0, a.1)) && g.contains(&ColumnRef::new(b.0, b.1))
            })
        };
        assert!(has((0, 0), (1, 0)), "city columns should align: {alignment:?}");
        assert!(has((0, 1), (1, 1)), "country columns should align: {alignment:?}");
    }

    #[test]
    fn never_groups_two_columns_of_one_table() {
        let tables = vec![
            TableBuilder::new("T1", ["a", "b"])
                .row(["Berlin", "Berlin"])
                .row(["Toronto", "Toronto"])
                .build()
                .unwrap(),
            TableBuilder::new("T2", ["c"]).row(["Berlin"]).row(["Toronto"]).build().unwrap(),
        ];
        let embedder = HashingNgramEmbedder::new();
        let alignment = align_columns(&tables, &embedder, AlignmentOptions::default());
        for group in alignment.groups() {
            let mut tbl: Vec<usize> = group.iter().map(|c| c.table).collect();
            tbl.sort_unstable();
            tbl.dedup();
            assert_eq!(tbl.len(), group.len());
        }
    }

    #[test]
    fn unreachable_threshold_yields_no_alignment() {
        let tables = covid_tables();
        let embedder = HashingNgramEmbedder::new();
        let alignment = align_columns(
            &tables,
            &embedder,
            AlignmentOptions { similarity_threshold: 1.01, sample_limit: 64 },
        );
        assert!(alignment.is_empty());
    }

    #[test]
    fn works_with_simulated_lm_embedders() {
        let tables = covid_tables();
        let embedder = EmbeddingModel::Mistral.build();
        let alignment = align_columns(&tables, embedder.as_ref(), AlignmentOptions::default());
        assert!(alignment.len() >= 2);
    }
}
