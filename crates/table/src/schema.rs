//! Schemas and column metadata.
//!
//! A [`Schema`] is an ordered list of [`ColumnMeta`].  Column names are kept
//! for display and for the header-based alignment baseline, but the
//! integration pipeline never assumes they are trustworthy — data lake tables
//! routinely have missing or misleading headers.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::error::{TableError, TableResult};
use crate::value::Value;

/// Coarse data type of a column, inferred from its values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// All present values are text (or the column is empty).
    Text,
    /// All present values are integers.
    Int,
    /// Present values are integers and/or floats.
    Float,
    /// All present values are booleans.
    Bool,
    /// Values of several incompatible types appear.
    Mixed,
}

impl DataType {
    /// The data type of a single value; `None` for nulls, which carry no type
    /// evidence.
    pub fn of(value: &Value) -> Option<DataType> {
        match value {
            Value::Null => None,
            Value::Text(_) => Some(DataType::Text),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }

    /// Merges the type observed so far with the type of one more value.
    pub fn merge(self, value: &Value) -> DataType {
        let Some(observed) = DataType::of(value) else { return self };
        match (self, observed) {
            (a, b) if a == b => a,
            (DataType::Int, DataType::Float) | (DataType::Float, DataType::Int) => DataType::Float,
            _ => DataType::Mixed,
        }
    }

    /// Infers the type of a whole column.  Columns with no present values
    /// default to [`DataType::Text`].
    pub fn infer<'a>(values: impl IntoIterator<Item = &'a Value>) -> DataType {
        let mut ty: Option<DataType> = None;
        for v in values {
            match (ty, DataType::of(v)) {
                (_, None) => {}
                (None, Some(observed)) => ty = Some(observed),
                (Some(current), Some(_)) => ty = Some(current.merge(v)),
            }
        }
        ty.unwrap_or(DataType::Text)
    }
}

/// Metadata for a single column.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnMeta {
    /// Column header.  May be empty or unreliable in data lake tables.
    pub name: String,
    /// Inferred coarse type.
    pub data_type: DataType,
}

impl ColumnMeta {
    /// Creates a text column with the given header.
    pub fn new(name: impl Into<String>) -> Self {
        ColumnMeta { name: name.into(), data_type: DataType::Text }
    }

    /// Creates a column with an explicit type.
    pub fn typed(name: impl Into<String>, data_type: DataType) -> Self {
        ColumnMeta { name: name.into(), data_type }
    }
}

/// An ordered collection of column metadata with unique names.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    columns: Vec<ColumnMeta>,
    #[serde(skip)]
    by_name: HashMap<String, usize>,
}

impl Schema {
    /// Builds a schema from column metadata, rejecting duplicates and empty
    /// schemas.
    pub fn new(columns: Vec<ColumnMeta>) -> TableResult<Self> {
        if columns.is_empty() {
            return Err(TableError::EmptySchema);
        }
        let mut by_name = HashMap::with_capacity(columns.len());
        for (idx, col) in columns.iter().enumerate() {
            if by_name.insert(col.name.clone(), idx).is_some() {
                return Err(TableError::DuplicateColumn(col.name.clone()));
            }
        }
        Ok(Schema { columns, by_name })
    }

    /// Convenience constructor from header names only.
    pub fn from_names<I, S>(names: I) -> TableResult<Self>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Schema::new(names.into_iter().map(|n| ColumnMeta::new(n)).collect())
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// `true` when the schema has no columns (cannot happen for constructed
    /// schemas, but kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Column metadata in declaration order.
    pub fn columns(&self) -> &[ColumnMeta] {
        &self.columns
    }

    /// Column names in declaration order.
    pub fn names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        if let Some(idx) = self.by_name.get(name) {
            return Some(*idx);
        }
        // `by_name` is skipped by serde; fall back to a scan so deserialised
        // schemas still resolve names correctly.
        self.columns.iter().position(|c| c.name == name)
    }

    /// Metadata of the column at `idx`.
    pub fn column(&self, idx: usize) -> TableResult<&ColumnMeta> {
        self.columns
            .get(idx)
            .ok_or(TableError::ColumnIndexOutOfBounds { index: idx, len: self.columns.len() })
    }

    /// Metadata of the column named `name`.
    pub fn column_by_name(&self, name: &str) -> TableResult<&ColumnMeta> {
        let idx = self.index_of(name).ok_or_else(|| TableError::UnknownColumn(name.into()))?;
        self.column(idx)
    }

    /// Updates the inferred data type of the column at `idx`.
    pub fn set_data_type(&mut self, idx: usize, data_type: DataType) -> TableResult<()> {
        let len = self.columns.len();
        let col = self
            .columns
            .get_mut(idx)
            .ok_or(TableError::ColumnIndexOutOfBounds { index: idx, len })?;
        col.data_type = data_type;
        Ok(())
    }

    /// Renames the column at `idx`, keeping the name-index map consistent.
    pub fn rename(&mut self, idx: usize, new_name: impl Into<String>) -> TableResult<()> {
        let new_name = new_name.into();
        let len = self.columns.len();
        if idx >= len {
            return Err(TableError::ColumnIndexOutOfBounds { index: idx, len });
        }
        if let Some(&existing) = self.by_name.get(&new_name) {
            if existing != idx {
                return Err(TableError::DuplicateColumn(new_name));
            }
        }
        let old = self.columns[idx].name.clone();
        self.by_name.remove(&old);
        self.by_name.insert(new_name.clone(), idx);
        self.columns[idx].name = new_name;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_rejects_duplicates_and_empty() {
        assert!(matches!(Schema::from_names(Vec::<String>::new()), Err(TableError::EmptySchema)));
        assert!(matches!(Schema::from_names(["a", "b", "a"]), Err(TableError::DuplicateColumn(_))));
    }

    #[test]
    fn index_lookup_by_name() {
        let schema = Schema::from_names(["City", "Country", "Vac. Rate"]).unwrap();
        assert_eq!(schema.len(), 3);
        assert_eq!(schema.index_of("Country"), Some(1));
        assert_eq!(schema.index_of("Missing"), None);
        assert_eq!(schema.column_by_name("City").unwrap().name, "City");
        assert!(schema.column_by_name("Nope").is_err());
    }

    #[test]
    fn column_index_bounds_checked() {
        let schema = Schema::from_names(["a"]).unwrap();
        assert!(schema.column(0).is_ok());
        assert!(matches!(
            schema.column(5),
            Err(TableError::ColumnIndexOutOfBounds { index: 5, len: 1 })
        ));
    }

    #[test]
    fn rename_updates_lookup() {
        let mut schema = Schema::from_names(["a", "b"]).unwrap();
        schema.rename(0, "alpha").unwrap();
        assert_eq!(schema.index_of("alpha"), Some(0));
        assert_eq!(schema.index_of("a"), None);
        // renaming to an existing other name fails
        assert!(schema.rename(1, "alpha").is_err());
        // renaming to itself is fine
        assert!(schema.rename(1, "b").is_ok());
    }

    #[test]
    fn data_type_inference() {
        let ints = [Value::Int(1), Value::Null, Value::Int(3)];
        assert_eq!(DataType::infer(ints.iter()), DataType::Int);

        let floats = [Value::Int(1), Value::Float(2.5)];
        assert_eq!(DataType::infer(floats.iter()), DataType::Float);

        let text = [Value::text("x"), Value::Null];
        assert_eq!(DataType::infer(text.iter()), DataType::Text);

        let mixed = [Value::text("x"), Value::Int(2)];
        assert_eq!(DataType::infer(mixed.iter()), DataType::Mixed);

        let empty: [Value; 0] = [];
        assert_eq!(DataType::infer(empty.iter()), DataType::Text);

        let bools = [Value::Bool(true), Value::Bool(false)];
        assert_eq!(DataType::infer(bools.iter()), DataType::Bool);
    }

    #[test]
    fn merge_is_monotone_toward_mixed() {
        let ty = DataType::Int.merge(&Value::text("x"));
        assert_eq!(ty, DataType::Mixed);
        assert_eq!(DataType::Mixed.merge(&Value::Int(3)), DataType::Mixed);
        assert_eq!(DataType::Int.merge(&Value::Null), DataType::Int);
    }
}
