//! Typed cell values.
//!
//! Every cell of a table holds a [`Value`].  Values are hashable and totally
//! ordered so they can key hash maps (join indexes, distinct-value counts)
//! and be sorted deterministically for reproducible output.  Floats are
//! compared and hashed through their canonicalised bit pattern so `NaN`
//! cannot break map invariants.

use std::borrow::Cow;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use serde::{Deserialize, Serialize};

/// A single typed cell value.
///
/// `Null` represents a missing value, either because the source table had an
/// empty cell or because the tuple was padded during outer union / Full
/// Disjunction.  The integration operators in `lake-fd` treat `Null` as
/// "unknown": it never joins with anything and is subsumed by any non-null
/// value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// Missing / unknown value (the `⊥` of the paper's Figure 1).
    Null,
    /// Free text.  The most common cell type in data lake tables.
    Text(String),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Returns `true` when the value is missing.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Returns `true` when the value is present (not null).
    pub fn is_present(&self) -> bool {
        !self.is_null()
    }

    /// Builds a text value from anything string-like.
    pub fn text(s: impl Into<String>) -> Self {
        Value::Text(s.into())
    }

    /// Returns the textual content if the value is text.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Returns the integer content if the value is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the float content if the value is a float (or an integer,
    /// widened losslessly where possible).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Returns the boolean content if the value is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Renders the value the way it is matched and embedded: nulls become the
    /// empty string, everything else its display form.
    pub fn render(&self) -> Cow<'_, str> {
        match self {
            Value::Null => Cow::Borrowed(""),
            Value::Text(s) => Cow::Borrowed(s.as_str()),
            Value::Int(i) => Cow::Owned(i.to_string()),
            Value::Float(f) => Cow::Owned(format_float(*f)),
            Value::Bool(b) => Cow::Owned(b.to_string()),
        }
    }

    /// Parses a raw CSV field into the most specific value type.
    ///
    /// Empty strings and a handful of conventional null markers become
    /// [`Value::Null`]; integers and floats are recognised when the whole
    /// field parses; everything else stays text (leading/trailing whitespace
    /// preserved, since some benchmarks treat it as signal).
    pub fn parse(raw: &str) -> Self {
        let trimmed = raw.trim();
        if trimmed.is_empty() {
            return Value::Null;
        }
        let lowered = trimmed.to_ascii_lowercase();
        if matches!(lowered.as_str(), "null" | "nan" | "\\n" | "n/a" | "na" | "none" | "⊥") {
            return Value::Null;
        }
        if let Ok(i) = trimmed.parse::<i64>() {
            return Value::Int(i);
        }
        if let Ok(f) = trimmed.parse::<f64>() {
            if f.is_finite() {
                return Value::Float(f);
            }
        }
        if lowered == "true" {
            return Value::Bool(true);
        }
        if lowered == "false" {
            return Value::Bool(false);
        }
        Value::Text(raw.to_string())
    }

    /// Canonical ordering rank per variant, used by [`Ord`].
    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Text(_) => 4,
        }
    }

    /// Canonicalised bit pattern used to hash/compare floats: collapses all
    /// NaNs to one pattern and `-0.0` to `0.0`.
    fn float_bits(f: f64) -> u64 {
        if f.is_nan() {
            u64::MAX
        } else if f == 0.0 {
            0u64
        } else {
            f.to_bits()
        }
    }
}

/// Formats a float without the noise of `Display` for integral values
/// (`3.0` rather than `3`, but no scientific notation for common magnitudes).
fn format_float(f: f64) -> String {
    if f.fract() == 0.0 && f.abs() < 1e15 {
        format!("{:.1}", f)
    } else {
        format!("{}", f)
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Text(a), Value::Text(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => Value::float_bits(*a) == Value::float_bits(*b),
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.rank().hash(state);
        match self {
            Value::Null => {}
            Value::Text(s) => s.hash(state),
            Value::Int(i) => i.hash(state),
            Value::Float(f) => Value::float_bits(*f).hash(state),
            Value::Bool(b) => b.hash(state),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => Value::float_bits(*a).cmp(&Value::float_bits(*b)),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "⊥"),
            other => write!(f, "{}", other.render()),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(opt: Option<T>) -> Self {
        match opt {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn null_detection() {
        assert!(Value::Null.is_null());
        assert!(!Value::text("x").is_null());
        assert!(Value::text("x").is_present());
    }

    #[test]
    fn parse_recognises_types() {
        assert_eq!(Value::parse("42"), Value::Int(42));
        assert_eq!(Value::parse("-7"), Value::Int(-7));
        assert_eq!(Value::parse("3.5"), Value::Float(3.5));
        assert_eq!(Value::parse("true"), Value::Bool(true));
        assert_eq!(Value::parse("False"), Value::Bool(false));
        assert_eq!(Value::parse("Berlin"), Value::text("Berlin"));
        assert_eq!(Value::parse(""), Value::Null);
        assert_eq!(Value::parse("  "), Value::Null);
        assert_eq!(Value::parse("N/A"), Value::Null);
        assert_eq!(Value::parse("null"), Value::Null);
    }

    #[test]
    fn parse_keeps_mixed_text() {
        assert_eq!(Value::parse("83%"), Value::text("83%"));
        assert_eq!(Value::parse("1.4M"), Value::text("1.4M"));
    }

    #[test]
    fn render_round_trip_for_text() {
        let v = Value::text("New Delhi");
        assert_eq!(v.render(), "New Delhi");
        assert_eq!(Value::Null.render(), "");
    }

    #[test]
    fn float_equality_is_bitwise_canonical() {
        assert_eq!(Value::Float(f64::NAN), Value::Float(f64::NAN));
        assert_eq!(Value::Float(0.0), Value::Float(-0.0));
        assert_ne!(Value::Float(1.0), Value::Float(2.0));
    }

    #[test]
    fn values_usable_as_hash_keys() {
        let mut counts: HashMap<Value, usize> = HashMap::new();
        for v in [
            Value::text("Berlin"),
            Value::text("Berlin"),
            Value::Int(3),
            Value::Float(3.0),
            Value::Null,
        ] {
            *counts.entry(v).or_default() += 1;
        }
        assert_eq!(counts[&Value::text("Berlin")], 2);
        assert_eq!(counts[&Value::Int(3)], 1);
        assert_eq!(counts[&Value::Float(3.0)], 1);
        assert_eq!(counts[&Value::Null], 1);
    }

    #[test]
    fn ordering_is_total_and_stable() {
        let mut vals = [
            Value::text("b"),
            Value::Null,
            Value::Int(10),
            Value::text("a"),
            Value::Bool(true),
            Value::Float(2.5),
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[vals.len() - 1], Value::text("b"));
    }

    #[test]
    fn display_uses_bottom_for_null() {
        assert_eq!(Value::Null.to_string(), "⊥");
        assert_eq!(Value::text("Boston").to_string(), "Boston");
        assert_eq!(Value::Int(263).to_string(), "263");
    }

    #[test]
    fn conversions_from_primitives() {
        assert_eq!(Value::from("x"), Value::text("x"));
        assert_eq!(Value::from(5i64), Value::Int(5));
        assert_eq!(Value::from(2.0f64), Value::Float(2.0));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(Option::<i64>::None), Value::Null);
        assert_eq!(Value::from(Some("y")), Value::text("y"));
    }

    #[test]
    fn int_and_float_are_distinct_values() {
        // Equi-joins must not silently unify 3 and 3.0; fuzzy matching may.
        assert_ne!(Value::Int(3), Value::Float(3.0));
    }
}
