//! # lake-table
//!
//! In-memory table model used throughout the Fuzzy Full Disjunction system.
//!
//! Data lake tables (typically CSV files) are modelled as row-oriented
//! [`Table`]s with a named [`Schema`], typed [`Value`] cells, explicit nulls
//! and per-tuple provenance ([`TupleId`]).  The crate also provides a small,
//! dependency-free CSV reader/writer so benchmark data can be exported and
//! re-imported, plus pretty-printing helpers used by the examples and the
//! experiment harness.
//!
//! The model intentionally mirrors the assumptions of the paper
//! *Fuzzy Integration of Data Lake Tables*:
//!
//! * column headers may be missing or unreliable — the schema stores them but
//!   nothing downstream relies on their correctness;
//! * cells are primarily short strings; numeric cells are typed when they
//!   parse cleanly;
//! * every tuple carries a provenance id so integrated tuples can report the
//!   set of base tuples they merged (the `TIDs` column of Figure 1).

pub mod builder;
pub mod csv;
pub mod error;
pub mod print;
pub mod provenance;
pub mod schema;
pub mod table;
pub mod value;

pub use builder::TableBuilder;
pub use error::{TableError, TableResult};
pub use provenance::{ProvenanceSet, TupleId};
pub use schema::{ColumnMeta, DataType, Schema};
pub use table::{ColumnRef, Row, Table};
pub use value::Value;
