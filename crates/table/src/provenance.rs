//! Tuple provenance.
//!
//! Every base tuple is identified by a [`TupleId`] — the owning table's name
//! plus the tuple's position in it.  Integrated (Full Disjunction) tuples
//! carry a [`ProvenanceSet`]: the set of base tuples merged to produce them.
//! This is the `TIDs` column of the paper's Figure 1 and is what the
//! downstream entity-matching experiment evaluates against.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Identity of a base tuple: `(table name, row index)`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TupleId {
    /// Name of the source table.
    pub table: String,
    /// 0-based row index within the source table.
    pub row: usize,
}

impl TupleId {
    /// Creates a tuple id.
    pub fn new(table: impl Into<String>, row: usize) -> Self {
        TupleId { table: table.into(), row }
    }
}

impl fmt::Display for TupleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.table, self.row)
    }
}

/// A sorted, duplicate-free set of base tuple ids.
///
/// Ordered so that provenance renders deterministically and can be used as a
/// dedup key for integrated tuples.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProvenanceSet {
    ids: BTreeSet<TupleId>,
}

impl ProvenanceSet {
    /// Empty provenance (used for padding tuples before they are attributed).
    pub fn empty() -> Self {
        ProvenanceSet::default()
    }

    /// Provenance of a single base tuple.
    pub fn single(id: TupleId) -> Self {
        let mut ids = BTreeSet::new();
        ids.insert(id);
        ProvenanceSet { ids }
    }

    /// Number of contributing base tuples.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` if no base tuple contributed.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Whether `id` contributed to this tuple.
    pub fn contains(&self, id: &TupleId) -> bool {
        self.ids.contains(id)
    }

    /// Whether every id of `other` is contained in `self`.
    pub fn is_superset(&self, other: &ProvenanceSet) -> bool {
        other.ids.is_subset(&self.ids)
    }

    /// Adds a contributing tuple.
    pub fn insert(&mut self, id: TupleId) {
        self.ids.insert(id);
    }

    /// Union of two provenance sets (the provenance of a merged tuple).
    pub fn union(&self, other: &ProvenanceSet) -> ProvenanceSet {
        ProvenanceSet { ids: self.ids.union(&other.ids).cloned().collect() }
    }

    /// Iterates the contributing tuple ids in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &TupleId> {
        self.ids.iter()
    }

    /// Tables that contributed at least one tuple.
    pub fn tables(&self) -> BTreeSet<&str> {
        self.ids.iter().map(|id| id.table.as_str()).collect()
    }
}

impl fmt::Display for ProvenanceSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, id) in self.ids.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", id)?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<TupleId> for ProvenanceSet {
    fn from_iter<T: IntoIterator<Item = TupleId>>(iter: T) -> Self {
        ProvenanceSet { ids: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_and_union() {
        let a = ProvenanceSet::single(TupleId::new("T1", 0));
        let b = ProvenanceSet::single(TupleId::new("T2", 4));
        let u = a.union(&b);
        assert_eq!(u.len(), 2);
        assert!(u.contains(&TupleId::new("T1", 0)));
        assert!(u.contains(&TupleId::new("T2", 4)));
        assert!(u.is_superset(&a));
        assert!(u.is_superset(&b));
        assert!(!a.is_superset(&u));
    }

    #[test]
    fn union_deduplicates() {
        let a = ProvenanceSet::single(TupleId::new("T1", 0));
        let u = a.union(&a);
        assert_eq!(u.len(), 1);
    }

    #[test]
    fn display_is_sorted_and_braced() {
        let p: ProvenanceSet = [TupleId::new("T2", 1), TupleId::new("T1", 3)].into_iter().collect();
        assert_eq!(p.to_string(), "{T1#3, T2#1}");
    }

    #[test]
    fn tables_lists_contributing_sources() {
        let p: ProvenanceSet =
            [TupleId::new("T1", 0), TupleId::new("T1", 9), TupleId::new("T3", 2)]
                .into_iter()
                .collect();
        let tables: Vec<&str> = p.tables().into_iter().collect();
        assert_eq!(tables, vec!["T1", "T3"]);
    }

    #[test]
    fn empty_provenance() {
        let p = ProvenanceSet::empty();
        assert!(p.is_empty());
        assert_eq!(p.to_string(), "{}");
    }
}
