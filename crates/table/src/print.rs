//! Pretty-printing of tables for examples, the experiment harness and README
//! snippets.

use crate::table::Table;

/// Renders a table as an ASCII grid, truncating long cells to keep the output
/// terminal friendly.
pub fn render(table: &Table) -> String {
    render_with_limit(table, 40, usize::MAX)
}

/// Renders at most `max_rows` rows, truncating cells to `max_cell_width`
/// characters.
pub fn render_with_limit(table: &Table, max_cell_width: usize, max_rows: usize) -> String {
    let headers: Vec<String> =
        table.schema().columns().iter().map(|c| truncate(&c.name, max_cell_width)).collect();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();

    let shown = table.num_rows().min(max_rows);
    let mut body: Vec<Vec<String>> = Vec::with_capacity(shown);
    for row in table.rows().iter().take(shown) {
        let cells: Vec<String> =
            row.iter().map(|v| truncate(&v.to_string(), max_cell_width)).collect();
        for (i, cell) in cells.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
        body.push(cells);
    }

    let mut out = String::new();
    let sep = separator(&widths);
    out.push_str(&sep);
    out.push_str(&format_row(&headers, &widths));
    out.push_str(&sep);
    for cells in &body {
        out.push_str(&format_row(cells, &widths));
    }
    out.push_str(&sep);
    if table.num_rows() > shown {
        out.push_str(&format!("… {} more rows\n", table.num_rows() - shown));
    }
    out
}

fn truncate(s: &str, max: usize) -> String {
    let count = s.chars().count();
    if count <= max {
        s.to_string()
    } else {
        let prefix: String = s.chars().take(max.saturating_sub(1)).collect();
        format!("{prefix}…")
    }
}

fn separator(widths: &[usize]) -> String {
    let mut out = String::from("+");
    for w in widths {
        out.push_str(&"-".repeat(w + 2));
        out.push('+');
    }
    out.push('\n');
    out
}

fn format_row(cells: &[String], widths: &[usize]) -> String {
    let mut out = String::from("|");
    for (cell, w) in cells.iter().zip(widths) {
        let pad = w - cell.chars().count();
        out.push(' ');
        out.push_str(cell);
        out.push_str(&" ".repeat(pad + 1));
        out.push('|');
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TableBuilder;

    #[test]
    fn renders_header_and_rows() {
        let t = TableBuilder::new("t", ["City", "Country"])
            .row(["Berlin", "Germany"])
            .row(["Boston", ""])
            .build()
            .unwrap();
        let text = render(&t);
        assert!(text.contains("City"));
        assert!(text.contains("Berlin"));
        assert!(text.contains("⊥"), "nulls should render as ⊥:\n{text}");
        // grid has 5 lines: sep, header, sep, 2 rows, sep => 6 lines + final newline
        assert!(text.lines().count() >= 6);
    }

    #[test]
    fn truncates_rows_and_cells() {
        let t = TableBuilder::new("t", ["c"])
            .row(["a-very-long-cell-value-that-keeps-going-and-going"])
            .row(["b"])
            .row(["c"])
            .build()
            .unwrap();
        let text = render_with_limit(&t, 10, 2);
        assert!(text.contains("…"));
        assert!(text.contains("1 more rows"));
    }
}
