//! Minimal CSV reader/writer.
//!
//! Implemented from scratch (no external dependency) and limited to what the
//! benchmark pipeline needs: RFC-4180-style quoting, embedded commas, quotes
//! and newlines inside quoted fields, CRLF tolerance.  The first record is
//! always treated as the header row.

use std::fs;
use std::path::Path;

use crate::error::{TableError, TableResult};
use crate::schema::Schema;
use crate::table::{Row, Table};
use crate::value::Value;

/// Parses CSV text into a [`Table`].  The first record provides the column
/// headers; remaining records become rows whose cells are parsed with
/// [`Value::parse`].
pub fn parse_csv(name: impl Into<String>, text: &str) -> TableResult<Table> {
    let records = parse_records(text)?;
    let mut iter = records.into_iter();
    let header = iter.next().ok_or(TableError::Csv {
        line: 1,
        message: "input contains no header record".to_string(),
    })?;
    let schema = Schema::from_names(header.fields)?;
    let mut table = Table::new(name, schema);
    for record in iter {
        let row: Row = record.fields.iter().map(|f| Value::parse(f)).collect();
        if row.len() != table.num_columns() {
            return Err(TableError::Csv {
                line: record.line,
                message: format!(
                    "record has {} fields, header has {}",
                    row.len(),
                    table.num_columns()
                ),
            });
        }
        table.push_row(row)?;
    }
    table.infer_column_types();
    Ok(table)
}

/// Reads a CSV file from disk; the table is named after the file stem.
pub fn read_csv_file(path: impl AsRef<Path>) -> TableResult<Table> {
    let path = path.as_ref();
    let text = fs::read_to_string(path)?;
    let name = path.file_stem().and_then(|s| s.to_str()).unwrap_or("table").to_string();
    parse_csv(name, &text)
}

/// Serialises a table to CSV text (header row first, `⊥`/null as empty field).
pub fn to_csv(table: &Table) -> String {
    let mut out = String::new();
    let names: Vec<String> =
        table.schema().columns().iter().map(|c| escape_field(&c.name)).collect();
    out.push_str(&names.join(","));
    out.push('\n');
    for row in table.rows() {
        let fields: Vec<String> = row.iter().map(|v| escape_field(&v.render())).collect();
        let line = fields.join(",");
        if line.is_empty() {
            // A single null cell would otherwise serialise to a blank line,
            // which readers (including ours) treat as "no record"; an empty
            // quoted field keeps the row observable.
            out.push_str("\"\"");
        } else {
            out.push_str(&line);
        }
        out.push('\n');
    }
    out
}

/// Writes a table to a CSV file.
pub fn write_csv_file(table: &Table, path: impl AsRef<Path>) -> TableResult<()> {
    fs::write(path, to_csv(table))?;
    Ok(())
}

fn escape_field(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') || field.contains('\r') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

struct RawRecord {
    line: usize,
    fields: Vec<String>,
}

/// Splits CSV text into records of raw string fields, honouring quoting.
fn parse_records(text: &str) -> TableResult<Vec<RawRecord>> {
    let mut records = Vec::new();
    let mut fields: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut line = 1usize;
    let mut record_line = 1usize;
    let mut chars = text.chars().peekable();
    // Whether the current record contains any character at all (quotes
    // included); completely blank lines are skipped, but a record written as
    // `""` is a real one-field record.
    let mut record_started = false;

    while let Some(c) = chars.next() {
        if c != '\n' && c != '\r' {
            record_started = true;
        }
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    field.push('\n');
                }
                other => field.push(other),
            }
            continue;
        }
        match c {
            '"' => {
                if field.is_empty() {
                    in_quotes = true;
                } else {
                    // A quote in the middle of an unquoted field is kept
                    // verbatim; real data lake CSVs contain such artefacts.
                    field.push('"');
                }
            }
            ',' => {
                fields.push(std::mem::take(&mut field));
            }
            '\r' => {
                // swallow; handled by the following '\n' if present
            }
            '\n' => {
                fields.push(std::mem::take(&mut field));
                // Skip completely blank lines between records.
                if record_started {
                    records
                        .push(RawRecord { line: record_line, fields: std::mem::take(&mut fields) });
                } else {
                    fields.clear();
                }
                record_started = false;
                line += 1;
                record_line = line;
            }
            other => field.push(other),
        }
    }

    if in_quotes {
        return Err(TableError::Csv { line, message: "unterminated quoted field".to_string() });
    }
    if record_started {
        fields.push(field);
        records.push(RawRecord { line: record_line, fields });
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TableBuilder;

    #[test]
    fn parses_simple_csv() {
        let text = "City,Country\nBerlin,Germany\nToronto,Canada\n";
        let t = parse_csv("covid", text).unwrap();
        assert_eq!(t.name(), "covid");
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.cell(1, 1), Some(&Value::text("Canada")));
    }

    #[test]
    fn parses_quoted_fields_with_commas_and_quotes() {
        let text = "name,quote\n\"Doe, Jane\",\"she said \"\"hi\"\"\"\n";
        let t = parse_csv("q", text).unwrap();
        assert_eq!(t.cell(0, 0), Some(&Value::text("Doe, Jane")));
        assert_eq!(t.cell(0, 1), Some(&Value::text("she said \"hi\"")));
    }

    #[test]
    fn parses_newline_inside_quotes() {
        let text = "a,b\n\"multi\nline\",2\n";
        let t = parse_csv("m", text).unwrap();
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.cell(0, 0), Some(&Value::text("multi\nline")));
        assert_eq!(t.cell(0, 1), Some(&Value::Int(2)));
    }

    #[test]
    fn tolerates_crlf_and_missing_trailing_newline() {
        let text = "a,b\r\n1,2\r\n3,4";
        let t = parse_csv("crlf", text).unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.cell(1, 1), Some(&Value::Int(4)));
    }

    #[test]
    fn empty_fields_become_null() {
        let text = "a,b\n,x\n";
        let t = parse_csv("n", text).unwrap();
        assert_eq!(t.cell(0, 0), Some(&Value::Null));
    }

    #[test]
    fn skips_blank_lines() {
        let text = "a,b\n1,2\n\n3,4\n\n";
        let t = parse_csv("blank", text).unwrap();
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn rejects_ragged_rows_and_unterminated_quotes() {
        assert!(parse_csv("r", "a,b\n1\n").is_err());
        assert!(parse_csv("u", "a,b\n\"oops,2\n").is_err());
        assert!(parse_csv("e", "").is_err());
    }

    #[test]
    fn round_trips_through_to_csv() {
        let t = TableBuilder::new("rt", ["name", "note"])
            .row(["Doe, Jane", "said \"hi\""])
            .row(["Plain", ""])
            .build()
            .unwrap();
        let text = to_csv(&t);
        let back = parse_csv("rt", &text).unwrap();
        assert_eq!(back.num_rows(), 2);
        assert_eq!(back.cell(0, 0), Some(&Value::text("Doe, Jane")));
        assert_eq!(back.cell(0, 1), Some(&Value::text("said \"hi\"")));
        assert_eq!(back.cell(1, 1), Some(&Value::Null));
    }

    #[test]
    fn file_round_trip() {
        let t = TableBuilder::new("disk", ["x", "y"]).row(["1", "a"]).build().unwrap();
        let dir = std::env::temp_dir().join("lake_table_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("disk.csv");
        write_csv_file(&t, &path).unwrap();
        let back = read_csv_file(&path).unwrap();
        assert_eq!(back.name(), "disk");
        assert_eq!(back.cell(0, 0), Some(&Value::Int(1)));
        std::fs::remove_file(path).ok();
    }
}
