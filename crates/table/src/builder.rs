//! Fluent construction of tables, used pervasively in tests, examples and the
//! benchmark generators.

use crate::error::TableResult;
use crate::schema::Schema;
use crate::table::{Row, Table};
use crate::value::Value;

/// Builder for [`Table`]s.
///
/// Rows can be provided as raw strings (parsed with [`Value::parse`], which is
/// how CSV ingestion behaves) or as already-typed [`Value`]s.
///
/// ```
/// use lake_table::TableBuilder;
///
/// let table = TableBuilder::new("cities", ["City", "Country"])
///     .row(["Berlin", "Germany"])
///     .row(["Toronto", "Canada"])
///     .build()
///     .unwrap();
/// assert_eq!(table.num_rows(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct TableBuilder {
    name: String,
    columns: Vec<String>,
    rows: Vec<Row>,
    errors: Vec<String>,
}

impl TableBuilder {
    /// Starts a builder for a table with the given name and column headers.
    pub fn new<I, S>(name: impl Into<String>, columns: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        TableBuilder {
            name: name.into(),
            columns: columns.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
            errors: Vec::new(),
        }
    }

    /// Adds a row of raw string fields; each field is parsed into a typed
    /// value exactly like a CSV cell would be.
    pub fn row<I, S>(mut self, cells: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let row: Row = cells.into_iter().map(|c| Value::parse(c.as_ref())).collect();
        if row.len() != self.columns.len() {
            self.errors.push(format!(
                "row {} has {} cells, expected {}",
                self.rows.len(),
                row.len(),
                self.columns.len()
            ));
        }
        self.rows.push(row);
        self
    }

    /// Adds a row of already-typed values.
    pub fn row_values<I>(mut self, cells: I) -> Self
    where
        I: IntoIterator<Item = Value>,
    {
        let row: Row = cells.into_iter().collect();
        if row.len() != self.columns.len() {
            self.errors.push(format!(
                "row {} has {} cells, expected {}",
                self.rows.len(),
                row.len(),
                self.columns.len()
            ));
        }
        self.rows.push(row);
        self
    }

    /// Finalises the table, inferring column data types.
    pub fn build(self) -> TableResult<Table> {
        let schema = Schema::from_names(self.columns)?;
        let mut table = Table::new(self.name, schema);
        for row in self.rows {
            table.push_row(row)?;
        }
        table.infer_column_types();
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DataType;

    #[test]
    fn builds_typed_table() {
        let t = TableBuilder::new("movies", ["title", "year", "rating"])
            .row(["Heat", "1995", "8.3"])
            .row(["Alien", "1979", "8.5"])
            .build()
            .unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.schema().column(1).unwrap().data_type, DataType::Int);
        assert_eq!(t.schema().column(2).unwrap().data_type, DataType::Float);
        assert_eq!(t.cell(0, 0), Some(&Value::text("Heat")));
        assert_eq!(t.cell(1, 1), Some(&Value::Int(1979)));
    }

    #[test]
    fn row_values_accepts_typed_cells() {
        let t = TableBuilder::new("t", ["a", "b"])
            .row_values([Value::Int(1), Value::Null])
            .build()
            .unwrap();
        assert_eq!(t.cell(0, 1), Some(&Value::Null));
    }

    #[test]
    fn arity_error_surfaces_at_build() {
        let res = TableBuilder::new("t", ["a", "b"]).row(["only-one"]).build();
        assert!(res.is_err());
    }

    #[test]
    fn duplicate_headers_rejected() {
        let res = TableBuilder::new("t", ["a", "a"]).build();
        assert!(res.is_err());
    }
}
