//! The [`Table`] type: a named, schema-carrying collection of rows.

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};

use crate::error::{TableError, TableResult};
use crate::provenance::TupleId;
use crate::schema::{DataType, Schema};
use crate::value::Value;

/// A row is simply an ordered list of cells matching the table's schema.
pub type Row = Vec<Value>;

/// Reference to one column of one table inside an *integration set*
/// (an ordered `&[Table]` slice).  Used by column alignment and by the fuzzy
/// value matcher to name "the j-th column of the i-th table" without copying
/// data around.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ColumnRef {
    /// Index of the table within the integration set.
    pub table: usize,
    /// Index of the column within that table's schema.
    pub column: usize,
}

impl ColumnRef {
    /// Creates a column reference.
    pub fn new(table: usize, column: usize) -> Self {
        ColumnRef { table, column }
    }
}

/// A named, row-oriented table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    name: String,
    schema: Schema,
    rows: Vec<Row>,
}

impl Table {
    /// Creates an empty table with the given name and schema.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Table { name: name.into(), schema, rows: Vec::new() }
    }

    /// Table name (usually the source file stem).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Replaces the table name, returning the modified table.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.schema.len()
    }

    /// `true` when the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// All rows, in insertion order.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Appends a row after validating its arity against the schema.
    pub fn push_row(&mut self, row: Row) -> TableResult<()> {
        if row.len() != self.schema.len() {
            return Err(TableError::ArityMismatch {
                expected: self.schema.len(),
                actual: row.len(),
            });
        }
        self.rows.push(row);
        Ok(())
    }

    /// Appends many rows, stopping at the first arity error.
    pub fn extend_rows<I: IntoIterator<Item = Row>>(&mut self, rows: I) -> TableResult<()> {
        for row in rows {
            self.push_row(row)?;
        }
        Ok(())
    }

    /// The cell at `(row, column)`, if both indices are in range.
    pub fn cell(&self, row: usize, column: usize) -> Option<&Value> {
        self.rows.get(row).and_then(|r| r.get(column))
    }

    /// Mutable access to the cell at `(row, column)`.
    pub fn cell_mut(&mut self, row: usize, column: usize) -> Option<&mut Value> {
        self.rows.get_mut(row).and_then(|r| r.get_mut(column))
    }

    /// Provenance id of the tuple at `row`.
    pub fn tuple_id(&self, row: usize) -> TupleId {
        TupleId::new(self.name.clone(), row)
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> TableResult<usize> {
        self.schema.index_of(name).ok_or_else(|| TableError::UnknownColumn(name.into()))
    }

    /// All values of the column at `column` (including nulls), in row order.
    pub fn column_values(&self, column: usize) -> TableResult<Vec<&Value>> {
        if column >= self.schema.len() {
            return Err(TableError::ColumnIndexOutOfBounds {
                index: column,
                len: self.schema.len(),
            });
        }
        Ok(self.rows.iter().map(|r| &r[column]).collect())
    }

    /// Distinct non-null values of the column at `column`, in first-seen order.
    pub fn distinct_values(&self, column: usize) -> TableResult<Vec<Value>> {
        if column >= self.schema.len() {
            return Err(TableError::ColumnIndexOutOfBounds {
                index: column,
                len: self.schema.len(),
            });
        }
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for row in &self.rows {
            let v = &row[column];
            if v.is_present() && seen.insert(v.clone()) {
                out.push(v.clone());
            }
        }
        Ok(out)
    }

    /// Occurrence counts of non-null values in the column at `column`.
    pub fn value_counts(&self, column: usize) -> TableResult<HashMap<Value, usize>> {
        if column >= self.schema.len() {
            return Err(TableError::ColumnIndexOutOfBounds {
                index: column,
                len: self.schema.len(),
            });
        }
        let mut counts = HashMap::new();
        for row in &self.rows {
            let v = &row[column];
            if v.is_present() {
                *counts.entry(v.clone()).or_insert(0) += 1;
            }
        }
        Ok(counts)
    }

    /// Fraction of null cells in the column at `column` (0.0 for empty tables).
    pub fn null_fraction(&self, column: usize) -> TableResult<f64> {
        let values = self.column_values(column)?;
        if values.is_empty() {
            return Ok(0.0);
        }
        let nulls = values.iter().filter(|v| v.is_null()).count();
        Ok(nulls as f64 / values.len() as f64)
    }

    /// Re-infers all column data types from the current rows and stores them
    /// in the schema.
    pub fn infer_column_types(&mut self) {
        for col in 0..self.schema.len() {
            let ty = DataType::infer(self.rows.iter().map(|r| &r[col]));
            // index is in range by construction
            let _ = self.schema.set_data_type(col, ty);
        }
    }

    /// Returns a new table containing only the listed columns (in the listed
    /// order).  Provenance is positional, so row indices are preserved.
    pub fn project(&self, columns: &[usize]) -> TableResult<Table> {
        let mut metas = Vec::with_capacity(columns.len());
        for &c in columns {
            metas.push(self.schema.column(c)?.clone());
        }
        let schema = Schema::new(metas)?;
        let mut out = Table::new(self.name.clone(), schema);
        for row in &self.rows {
            let projected: Row = columns.iter().map(|&c| row[c].clone()).collect();
            out.push_row(projected)?;
        }
        Ok(out)
    }

    /// Applies a value substitution map to one column, replacing every cell
    /// whose value appears as a key with the mapped value.  This is how the
    /// fuzzy matcher rewrites matched values to their representative before
    /// running the equi-join Full Disjunction.
    pub fn substitute_column(
        &mut self,
        column: usize,
        mapping: &HashMap<Value, Value>,
    ) -> TableResult<usize> {
        if column >= self.schema.len() {
            return Err(TableError::ColumnIndexOutOfBounds {
                index: column,
                len: self.schema.len(),
            });
        }
        let mut replaced = 0;
        for row in &mut self.rows {
            if let Some(new) = mapping.get(&row[column]) {
                if &row[column] != new {
                    row[column] = new.clone();
                    replaced += 1;
                }
            }
        }
        Ok(replaced)
    }

    /// Iterates `(TupleId, &Row)` pairs.
    pub fn iter_with_ids(&self) -> impl Iterator<Item = (TupleId, &Row)> + '_ {
        self.rows.iter().enumerate().map(move |(i, r)| (TupleId::new(self.name.clone(), i), r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TableBuilder;

    fn sample() -> Table {
        TableBuilder::new("T1", ["City", "Country"])
            .row(["Berlinn", "Germany"])
            .row(["Toronto", "Canada"])
            .row(["Barcelona", "Spain"])
            .row(["New Delhi", "India"])
            .build()
            .unwrap()
    }

    #[test]
    fn basic_accessors() {
        let t = sample();
        assert_eq!(t.name(), "T1");
        assert_eq!(t.num_rows(), 4);
        assert_eq!(t.num_columns(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.cell(0, 0), Some(&Value::text("Berlinn")));
        assert_eq!(t.cell(9, 0), None);
        assert_eq!(t.column_index("Country").unwrap(), 1);
        assert!(t.column_index("Nope").is_err());
    }

    #[test]
    fn arity_is_enforced() {
        let mut t = sample();
        let err = t.push_row(vec![Value::text("x")]).unwrap_err();
        assert!(matches!(err, TableError::ArityMismatch { expected: 2, actual: 1 }));
    }

    #[test]
    fn distinct_values_skip_nulls_and_duplicates() {
        let t = TableBuilder::new("T", ["c"])
            .row(["a"])
            .row([""])
            .row(["b"])
            .row(["a"])
            .build()
            .unwrap();
        let distinct = t.distinct_values(0).unwrap();
        assert_eq!(distinct, vec![Value::text("a"), Value::text("b")]);
    }

    #[test]
    fn value_counts_and_null_fraction() {
        let t = TableBuilder::new("T", ["c"])
            .row(["a"])
            .row([""])
            .row(["a"])
            .row(["b"])
            .build()
            .unwrap();
        let counts = t.value_counts(0).unwrap();
        assert_eq!(counts[&Value::text("a")], 2);
        assert_eq!(counts[&Value::text("b")], 1);
        assert!((t.null_fraction(0).unwrap() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn projection_preserves_rows() {
        let t = sample();
        let p = t.project(&[1]).unwrap();
        assert_eq!(p.num_columns(), 1);
        assert_eq!(p.num_rows(), 4);
        assert_eq!(p.cell(1, 0), Some(&Value::text("Canada")));
        assert!(t.project(&[7]).is_err());
    }

    #[test]
    fn substitution_rewrites_matching_cells() {
        let mut t = sample();
        let mut mapping = HashMap::new();
        mapping.insert(Value::text("Berlinn"), Value::text("Berlin"));
        mapping.insert(Value::text("Toronto"), Value::text("Toronto")); // no-op
        let replaced = t.substitute_column(0, &mapping).unwrap();
        assert_eq!(replaced, 1);
        assert_eq!(t.cell(0, 0), Some(&Value::text("Berlin")));
        assert_eq!(t.cell(1, 0), Some(&Value::text("Toronto")));
    }

    #[test]
    fn tuple_ids_follow_row_order() {
        let t = sample();
        assert_eq!(t.tuple_id(2), TupleId::new("T1", 2));
        let ids: Vec<TupleId> = t.iter_with_ids().map(|(id, _)| id).collect();
        assert_eq!(ids.len(), 4);
        assert_eq!(ids[0].row, 0);
        assert_eq!(ids[3].row, 3);
    }

    #[test]
    fn type_inference_updates_schema() {
        let mut t =
            TableBuilder::new("T", ["n", "s"]).row(["1", "x"]).row(["2", "y"]).build().unwrap();
        t.infer_column_types();
        assert_eq!(t.schema().column(0).unwrap().data_type, DataType::Int);
        assert_eq!(t.schema().column(1).unwrap().data_type, DataType::Text);
    }

    #[test]
    fn column_values_out_of_bounds() {
        let t = sample();
        assert!(t.column_values(5).is_err());
        assert!(t.distinct_values(5).is_err());
        assert!(t.value_counts(5).is_err());
    }
}
