//! Error type shared by the table substrate.

use std::fmt;

/// Result alias used across `lake-table`.
pub type TableResult<T> = Result<T, TableError>;

/// Errors raised by table construction, access and (de)serialisation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// A row was added whose arity does not match the schema.
    ArityMismatch {
        /// Number of columns declared by the schema.
        expected: usize,
        /// Number of cells in the offending row.
        actual: usize,
    },
    /// A column was requested that the schema does not contain.
    UnknownColumn(String),
    /// A column index was out of bounds.
    ColumnIndexOutOfBounds {
        /// Requested index.
        index: usize,
        /// Number of columns in the schema.
        len: usize,
    },
    /// Two columns with the same name were declared in one schema.
    DuplicateColumn(String),
    /// A schema with zero columns was declared.
    EmptySchema,
    /// Malformed CSV input.
    Csv {
        /// 1-based line where the problem was detected.
        line: usize,
        /// Human readable description.
        message: String,
    },
    /// An I/O failure while reading or writing CSV files.
    Io(String),
    /// An operator was handed an invalid configuration (e.g. a `NaN`
    /// matching threshold) — reported where the operator is constructed so
    /// the mistake cannot poison comparisons deep inside a run.
    InvalidConfig(String),
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::ArityMismatch { expected, actual } => write!(
                f,
                "row arity mismatch: schema has {expected} columns but row has {actual} cells"
            ),
            TableError::UnknownColumn(name) => write!(f, "unknown column `{name}`"),
            TableError::ColumnIndexOutOfBounds { index, len } => {
                write!(f, "column index {index} out of bounds for schema with {len} columns")
            }
            TableError::DuplicateColumn(name) => {
                write!(f, "duplicate column name `{name}` in schema")
            }
            TableError::EmptySchema => write!(f, "schema must contain at least one column"),
            TableError::Csv { line, message } => write!(f, "CSV error at line {line}: {message}"),
            TableError::Io(msg) => write!(f, "I/O error: {msg}"),
            TableError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for TableError {}

impl From<std::io::Error> for TableError {
    fn from(err: std::io::Error) -> Self {
        TableError::Io(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_descriptive() {
        let err = TableError::ArityMismatch { expected: 3, actual: 2 };
        assert!(err.to_string().contains("3"));
        assert!(err.to_string().contains("2"));

        let err = TableError::UnknownColumn("City".into());
        assert!(err.to_string().contains("City"));

        let err = TableError::Csv { line: 7, message: "unterminated quote".into() };
        assert!(err.to_string().contains("line 7"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing file");
        let err: TableError = io.into();
        assert!(matches!(err, TableError::Io(_)));
    }
}
