//! Property-based tests for the table substrate: CSV round-trips, projection
//! invariants and substitution behaviour on arbitrary generated tables.

use lake_table::{csv, Schema, Table, Value};
use proptest::prelude::*;

/// Text cells that survive CSV round-trips without being re-typed: non-empty
/// alphabetic-ish strings possibly containing the characters that exercise
/// quoting (commas, quotes, spaces).
fn text_cell() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[A-Za-z][A-Za-z ,\"']{0,14}[A-Za-z]")
        .expect("valid regex")
        .prop_filter("must re-parse as text (not a null/bool marker)", |s| {
            matches!(Value::parse(s), Value::Text(_))
        })
}

fn cell() -> impl Strategy<Value = Value> {
    prop_oneof![
        3 => text_cell().prop_map(Value::Text),
        2 => any::<i32>().prop_map(|i| Value::Int(i as i64)),
        1 => Just(Value::Null),
        1 => any::<bool>().prop_map(Value::Bool),
    ]
}

fn table_strategy() -> impl Strategy<Value = Table> {
    (1usize..=4, 0usize..=6).prop_flat_map(|(cols, rows)| {
        let names: Vec<String> = (0..cols).map(|c| format!("col{c}")).collect();
        prop::collection::vec(prop::collection::vec(cell(), cols), rows).prop_map(move |data| {
            let schema = Schema::from_names(names.clone()).expect("unique names");
            let mut table = Table::new("generated", schema);
            for row in data {
                table.push_row(row).expect("arity matches");
            }
            table.infer_column_types();
            table
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// Writing a table to CSV and parsing it back preserves shape and cells.
    #[test]
    fn csv_round_trip_preserves_cells(table in table_strategy()) {
        let text = csv::to_csv(&table);
        let parsed = csv::parse_csv("generated", &text).expect("re-parse generated CSV");
        prop_assert_eq!(parsed.num_rows(), table.num_rows());
        prop_assert_eq!(parsed.num_columns(), table.num_columns());
        for (r, row) in table.rows().iter().enumerate() {
            for (c, original) in row.iter().enumerate() {
                let reparsed = parsed.cell(r, c).expect("cell exists");
                match original {
                    // Booleans re-parse as booleans, text as identical text.
                    Value::Text(s) => prop_assert_eq!(reparsed.as_text(), Some(s.as_str())),
                    Value::Int(i) => prop_assert_eq!(reparsed.as_int(), Some(*i)),
                    Value::Bool(b) => prop_assert_eq!(reparsed.as_bool(), Some(*b)),
                    Value::Null => prop_assert!(reparsed.is_null()),
                    Value::Float(_) => unreachable!("strategy does not generate floats"),
                }
            }
        }
    }

    /// Projection keeps row count and column order.
    #[test]
    fn projection_preserves_rows_and_order(table in table_strategy()) {
        prop_assume!(table.num_columns() >= 2);
        let last = table.num_columns() - 1;
        let projected = table.project(&[last, 0]).expect("valid projection");
        prop_assert_eq!(projected.num_rows(), table.num_rows());
        prop_assert_eq!(projected.num_columns(), 2);
        for (r, row) in table.rows().iter().enumerate() {
            prop_assert_eq!(projected.cell(r, 0), Some(&row[last]));
            prop_assert_eq!(projected.cell(r, 1), Some(&row[0]));
        }
    }

    /// Substituting with an empty mapping never changes anything; substituting
    /// a value for itself reports zero replacements.
    #[test]
    fn substitution_identities(table in table_strategy()) {
        let mut copy = table.clone();
        let empty = std::collections::HashMap::new();
        let replaced = copy.substitute_column(0, &empty).expect("column 0 exists");
        prop_assert_eq!(replaced, 0);
        prop_assert_eq!(&copy, &table);

        let identity: std::collections::HashMap<Value, Value> = table
            .distinct_values(0)
            .expect("column 0 exists")
            .into_iter()
            .map(|v| (v.clone(), v))
            .collect();
        let replaced = copy.substitute_column(0, &identity).expect("column 0 exists");
        prop_assert_eq!(replaced, 0);
        prop_assert_eq!(&copy, &table);
    }
}
