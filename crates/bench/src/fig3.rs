//! Figure 3 — runtime of regular FD (ALITE) vs Fuzzy FD on the IMDB-style
//! benchmark as the number of input tuples grows.

use std::time::Instant;

use fuzzy_fd_core::{regular_full_disjunction, FuzzyFdConfig, FuzzyFullDisjunction};
use lake_benchdata::{generate_imdb_benchmark, ImdbConfig};
use lake_schema_match::align_by_headers;
use serde::Serialize;

/// One point of the Figure 3 curves.
#[derive(Debug, Clone, Serialize)]
pub struct RuntimePoint {
    /// Requested number of input tuples (the X axis of Figure 3).
    pub requested_tuples: usize,
    /// Actual number of generated input tuples.
    pub input_tuples: usize,
    /// Regular (ALITE-style) FD runtime in seconds.
    pub alite_seconds: f64,
    /// Fuzzy FD runtime in seconds (value matching + rewriting + FD).
    pub fuzzy_seconds: f64,
    /// Seconds spent in the value-matching step of Fuzzy FD.
    pub matching_seconds: f64,
    /// Output tuples of regular FD.
    pub alite_output: usize,
    /// Output tuples of Fuzzy FD.
    pub fuzzy_output: usize,
}

impl RuntimePoint {
    /// Relative overhead of Fuzzy FD over regular FD
    /// (`fuzzy / alite - 1`, e.g. `0.05` = 5 % slower).
    pub fn overhead(&self) -> f64 {
        if self.alite_seconds == 0.0 {
            return 0.0;
        }
        self.fuzzy_seconds / self.alite_seconds - 1.0
    }
}

/// Runs the runtime sweep for the given input sizes.
pub fn run(sizes: &[usize], seed: u64) -> Vec<RuntimePoint> {
    sizes
        .iter()
        .map(|&requested| {
            let tables = generate_imdb_benchmark(ImdbConfig { total_tuples: requested, seed });
            let input_tuples: usize = tables.iter().map(|t| t.num_rows()).sum();
            let alignment = align_by_headers(&tables);

            let start = Instant::now();
            let alite = regular_full_disjunction(&tables, &alignment);
            let alite_seconds = start.elapsed().as_secs_f64();

            let fuzzy_fd = FuzzyFullDisjunction::new(FuzzyFdConfig::default());
            let start = Instant::now();
            let outcome = fuzzy_fd.integrate(&tables, &alignment).expect("fuzzy FD");
            let fuzzy_seconds = start.elapsed().as_secs_f64();

            RuntimePoint {
                requested_tuples: requested,
                input_tuples,
                alite_seconds,
                fuzzy_seconds,
                matching_seconds: outcome.report.matching_time.as_secs_f64(),
                alite_output: alite.len(),
                fuzzy_output: outcome.table.len(),
            }
        })
        .collect()
}

/// The input sizes of the paper's Figure 3 (5K … 30K).
pub const PAPER_SIZES: [usize; 6] = [5_000, 10_000, 15_000, 20_000, 25_000, 30_000];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_produces_consistent_points() {
        let points = run(&[400, 800], 3);
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.alite_seconds > 0.0);
            assert!(p.fuzzy_seconds > 0.0);
            assert!(p.input_tuples > 0);
            assert!(p.alite_output > 0);
            // Fuzzy FD may merge residual identifier-like values that equi
            // FD keeps apart, which can either shrink or branch the output
            // (see EXPERIMENTS.md); it must still produce a result.
            assert!(p.fuzzy_output > 0);
        }
        // Bigger inputs do not get cheaper.
        assert!(points[1].input_tuples > points[0].input_tuples);
    }

    #[test]
    fn overhead_is_a_ratio() {
        let p = RuntimePoint {
            requested_tuples: 100,
            input_tuples: 100,
            alite_seconds: 2.0,
            fuzzy_seconds: 2.2,
            matching_seconds: 0.2,
            alite_output: 10,
            fuzzy_output: 10,
        };
        assert!((p.overhead() - 0.1).abs() < 1e-9);
    }
}
