//! Table 1 — value-matching effectiveness of the five embedding models on the
//! Auto-Join-style benchmark.

use fuzzy_fd_core::{match_column_values, FuzzyFdConfig, ValueGroup};
use lake_benchdata::{generate_autojoin_benchmark, AutoJoinConfig, ValueMatchingSet};
use lake_embed::{EmbeddingModel, ALL_MODELS};
use lake_metrics::{PairSet, PrecisionRecall};
use lake_table::Value;
use serde::Serialize;

/// Scores of one embedding model, averaged over all integration sets.
#[derive(Debug, Clone, Serialize)]
pub struct ModelScores {
    /// Model name (Table 1 row label).
    pub model: String,
    /// Macro-averaged precision.
    pub precision: f64,
    /// Macro-averaged recall.
    pub recall: f64,
    /// Macro-averaged F1.
    pub f1: f64,
    /// Number of integration sets evaluated.
    pub sets: usize,
}

/// Evaluates one model on one integration set.
pub fn evaluate_set(set: &ValueMatchingSet, model: EmbeddingModel, theta: f32) -> PrecisionRecall {
    let embedder = model.build();
    let columns: Vec<Vec<Value>> = set
        .columns
        .iter()
        .map(|col| col.iter().map(|s| Value::text(s.clone())).collect())
        .collect();
    let config = FuzzyFdConfig { theta, model, ..FuzzyFdConfig::default() };
    let groups = match_column_values(&columns, embedder.as_ref(), config);
    let predicted = predicted_pairs(&groups);
    predicted.confusion_against(&set.gold).scores()
}

/// Converts value groups to cross-column `(column, value)` pairs.
pub fn predicted_pairs(groups: &[ValueGroup]) -> PairSet<(usize, String)> {
    let mut pairs = PairSet::new();
    for group in groups {
        for ((ca, va), (cb, vb)) in group.cross_column_pairs() {
            pairs.insert((ca, va.render().to_string()), (cb, vb.render().to_string()));
        }
    }
    pairs
}

/// Runs the full Table 1 experiment.
pub fn run(config: AutoJoinConfig, theta: f32) -> Vec<ModelScores> {
    let sets = generate_autojoin_benchmark(config);
    ALL_MODELS
        .iter()
        .map(|&model| {
            let scores: Vec<PrecisionRecall> =
                sets.iter().map(|set| evaluate_set(set, model, theta)).collect();
            let avg = PrecisionRecall::macro_average(&scores)
                .expect("benchmark contains at least one set");
            ModelScores {
                model: model.name().to_string(),
                precision: avg.precision,
                recall: avg.recall,
                f1: avg.f1,
                sets: sets.len(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> AutoJoinConfig {
        AutoJoinConfig { num_sets: 4, values_per_column: 30, ..AutoJoinConfig::default() }
    }

    #[test]
    fn scores_are_sane_and_ordered() {
        let rows = run(tiny(), 0.7);
        assert_eq!(rows.len(), 5);
        for row in &rows {
            assert!(row.precision >= 0.0 && row.precision <= 1.0);
            assert!(row.recall >= 0.0 && row.recall <= 1.0);
            assert!(row.f1 >= 0.0 && row.f1 <= 1.0);
            assert_eq!(row.sets, 4);
        }
        let f1 = |name: &str| rows.iter().find(|r| r.model == name).unwrap().f1;
        // The headline qualitative claim of Table 1: the LLM-tier embedders
        // beat the surface embedder.
        assert!(f1("Mistral") > f1("FastText"), "{rows:#?}");
        assert!(f1("Llama3") > f1("FastText"), "{rows:#?}");
    }

    #[test]
    fn per_set_evaluation_scores_a_known_easy_set() {
        let sets = generate_autojoin_benchmark(tiny());
        let scores = evaluate_set(&sets[0], EmbeddingModel::Mistral, 0.7);
        assert!(scores.f1 > 0.3, "unexpectedly poor: {scores:?}");
    }

    #[test]
    fn predicted_pairs_are_cross_column_only() {
        let groups = vec![ValueGroup {
            members: vec![(0, Value::text("a")), (0, Value::text("b")), (1, Value::text("c"))],
            representative: Value::text("a"),
        }];
        let pairs = predicted_pairs(&groups);
        assert_eq!(pairs.len(), 2); // (0,a)-(1,c) and (0,b)-(1,c) but not (0,a)-(0,b)
    }
}
