//! §3.2 downstream-task experiment — entity matching over the integrated
//! tables produced by regular FD and by Fuzzy FD.

use fuzzy_fd_core::{regular_full_disjunction, FuzzyFdConfig, FuzzyFullDisjunction};
use lake_benchdata::{generate_em_benchmark, EmBenchmark, EmBenchmarkConfig};
use lake_em::{match_entities, EmOptions};
use lake_metrics::PrecisionRecall;
use lake_schema_match::align_by_headers;
use serde::Serialize;

/// Entity-matching effectiveness over one integration method.
#[derive(Debug, Clone, Serialize)]
pub struct DownstreamScores {
    /// Integration method label ("Regular FD (ALITE)" or "Fuzzy FD").
    pub method: String,
    /// Pairwise precision.
    pub precision: f64,
    /// Pairwise recall.
    pub recall: f64,
    /// Pairwise F1.
    pub f1: f64,
    /// Number of integrated tuples the entity matcher saw.
    pub integrated_tuples: usize,
}

/// Result of the downstream experiment: one row per integration method.
#[derive(Debug, Clone, Serialize)]
pub struct DownstreamResult {
    /// Regular (equi-join) FD row.
    pub regular: DownstreamScores,
    /// Fuzzy FD row.
    pub fuzzy: DownstreamScores,
}

/// Runs the experiment on a generated ALITE-EM-style benchmark.
pub fn run(config: EmBenchmarkConfig, em_options: EmOptions) -> DownstreamResult {
    let benchmark = generate_em_benchmark(config);
    run_on(&benchmark, em_options)
}

/// Runs the experiment on an existing benchmark instance.
pub fn run_on(benchmark: &EmBenchmark, em_options: EmOptions) -> DownstreamResult {
    let alignment = align_by_headers(&benchmark.tables);

    let regular_table = regular_full_disjunction(&benchmark.tables, &alignment);
    let regular_scores = score(&regular_table, benchmark, em_options);

    let fuzzy_outcome = FuzzyFullDisjunction::new(FuzzyFdConfig::default())
        .integrate(&benchmark.tables, &alignment)
        .expect("fuzzy FD");
    let fuzzy_scores = score(&fuzzy_outcome.table, benchmark, em_options);

    DownstreamResult {
        regular: DownstreamScores {
            method: "Regular FD (ALITE)".to_string(),
            precision: regular_scores.precision,
            recall: regular_scores.recall,
            f1: regular_scores.f1,
            integrated_tuples: regular_table.len(),
        },
        fuzzy: DownstreamScores {
            method: "Fuzzy FD".to_string(),
            precision: fuzzy_scores.precision,
            recall: fuzzy_scores.recall,
            f1: fuzzy_scores.f1,
            integrated_tuples: fuzzy_outcome.table.len(),
        },
    }
}

fn score(
    table: &lake_fd::IntegratedTable,
    benchmark: &EmBenchmark,
    em_options: EmOptions,
) -> PrecisionRecall {
    let result = match_entities(table, em_options);
    result.evaluate(table, &benchmark.gold)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuzzy_fd_improves_downstream_entity_matching() {
        let config = EmBenchmarkConfig { num_entities: 90, ..EmBenchmarkConfig::default() };
        let result = run(config, EmOptions::default());
        // Sanity: scores are probabilities and the integrated tables shrank
        // relative to the raw tuple count.
        for row in [&result.regular, &result.fuzzy] {
            assert!(row.precision > 0.0 && row.precision <= 1.0);
            assert!(row.recall > 0.0 && row.recall <= 1.0);
            assert!(row.integrated_tuples > 0);
        }
        // The paper's qualitative claim: Fuzzy FD integration yields better
        // downstream entity matching (F1 85 vs 81 in the paper).
        assert!(
            result.fuzzy.f1 > result.regular.f1,
            "fuzzy {:?} should beat regular {:?}",
            result.fuzzy,
            result.regular
        );
        // Fuzzy FD integrates more aggressively: fewer, fuller tuples.
        assert!(result.fuzzy.integrated_tuples <= result.regular.integrated_tuples);
    }
}
